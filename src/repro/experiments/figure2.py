"""Figure 2 — OCS objective value (VO) versus budget.

Panels (a)/(b): VO of Ratio-Greedy, Objective-Greedy and Hybrid-Greedy
as the budget K grows, with road costs drawn from C1 = U{1..10} and
C2 = U{1..5}.  Panels (c)/(d): the VO ratios Ratio/Hybrid and
OBJ/Hybrid.

Expected shapes (verified by the bench): VO is monotone in K; Hybrid
dominates both components; Ratio catches up at large K; the
Ratio-vs-Hybrid gap is wider under the wide cost range C1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.ocs import hybrid_greedy, objective_greedy, ratio_greedy
from repro.experiments.common import (
    ExperimentScale,
    alt_cost_model,
    default_semisyn,
    fit_system,
    format_rows,
    ocs_instance_for,
)

#: The two cost ranges of the paper.
COST_RANGES: Dict[str, Tuple[int, int]] = {"C1": (1, 10), "C2": (1, 5)}

_SOLVERS = {
    "Ratio": ratio_greedy,
    "OBJ": objective_greedy,
    "Hybrid": hybrid_greedy,
}


@dataclass(frozen=True)
class Figure2Point:
    """One (cost-range, budget, algorithm) measurement."""

    cost_range: str
    budget: int
    algorithm: str
    objective: float
    n_selected: int


def run(
    scale: ExperimentScale = ExperimentScale.PAPER,
    theta: float = 0.92,
) -> List[Figure2Point]:
    """Sweep VO over budgets for all three algorithms and both cost ranges."""
    data = default_semisyn(scale)
    system = fit_system("semisyn", scale)
    points: List[Figure2Point] = []
    for range_name, (low, high) in COST_RANGES.items():
        cost_model = alt_cost_model(data, low, high)
        for budget in data.budgets:
            instance = ocs_instance_for(
                data, system, budget, theta=theta, cost_model=cost_model
            )
            for algo_name, solver in _SOLVERS.items():
                result = solver(instance)
                points.append(
                    Figure2Point(
                        cost_range=range_name,
                        budget=int(budget),
                        algorithm=algo_name,
                        objective=result.objective,
                        n_selected=len(result.selected),
                    )
                )
    return points


def ratios_to_hybrid(points: List[Figure2Point]) -> List[Tuple[str, int, str, float]]:
    """Panels (c)/(d): VO ratios of Ratio and OBJ against Hybrid."""
    hybrid: Dict[Tuple[str, int], float] = {
        (p.cost_range, p.budget): p.objective
        for p in points
        if p.algorithm == "Hybrid"
    }
    out: List[Tuple[str, int, str, float]] = []
    for p in points:
        if p.algorithm == "Hybrid":
            continue
        base = hybrid[(p.cost_range, p.budget)]
        ratio = p.objective / base if base > 0 else 1.0
        out.append((p.cost_range, p.budget, p.algorithm, ratio))
    return out


def format_table(points: List[Figure2Point]) -> str:
    """Render VO and the VO ratios."""
    header = ["costs", "K", "algorithm", "VO", "|R^c|", "VO/Hybrid"]
    hybrid = {
        (p.cost_range, p.budget): p.objective
        for p in points
        if p.algorithm == "Hybrid"
    }
    body = [
        [
            p.cost_range,
            p.budget,
            p.algorithm,
            f"{p.objective:.2f}",
            p.n_selected,
            f"{p.objective / hybrid[(p.cost_range, p.budget)]:.3f}"
            if hybrid[(p.cost_range, p.budget)] > 0
            else "1.000",
        ]
        for p in points
    ]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print Figure 2's series."""
    print("Figure 2: OCS objective value vs budget")
    print(format_table(run()))


if __name__ == "__main__":
    main()
