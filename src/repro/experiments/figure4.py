"""Figure 4 — running time.

Panel (a): OCS solve time of Ratio/OBJ/Hybrid versus budget K (paper:
linear growth, Hybrid under one second at the largest K).

Panel (b): estimator time of LASSO/GRMC/GSP versus K (paper: LASSO
fastest — a single linear-algebra pass; GRMC slowest — full ALS;
GSP nearly independent of K and always under half a second).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence


from repro.baselines import (
    EstimationContext,
    GRMCEstimator,
    GSPEstimator,
    LassoEstimator,
)
from repro.core.ocs import hybrid_greedy, objective_greedy, ratio_greedy
from repro.core.request import EstimationRequest
from repro.datasets import truth_oracle_for
from repro.experiments.common import (
    ExperimentScale,
    alt_cost_model,
    default_semisyn,
    fit_system,
    format_rows,
    market_for,
    ocs_instance_for,
)

_SOLVERS = {
    "Ratio": ratio_greedy,
    "OBJ": objective_greedy,
    "Hybrid": hybrid_greedy,
}


@dataclass(frozen=True)
class RuntimePoint:
    """One (budget, method) timing measurement."""

    panel: str
    budget: int
    method: str
    seconds: float


def run_ocs_runtime(
    scale: ExperimentScale = ExperimentScale.PAPER,
    repeats: int = 3,
) -> List[RuntimePoint]:
    """Panel (a): OCS solver wall-clock versus budget (C1 costs)."""
    data = default_semisyn(scale)
    system = fit_system("semisyn", scale)
    cost_model = alt_cost_model(data, 1, 10)
    points: List[RuntimePoint] = []
    for budget in data.budgets:
        instance = ocs_instance_for(data, system, budget, cost_model=cost_model)
        for name, solver in _SOLVERS.items():
            best = min(
                _timed(lambda s=solver, inst=instance: s(inst))
                for _ in range(repeats)
            )
            points.append(RuntimePoint("a", int(budget), name, best))
    return points


def run_estimator_runtime(
    scale: ExperimentScale = ExperimentScale.PAPER,
    repeats: int = 2,
) -> List[RuntimePoint]:
    """Panel (b): estimator wall-clock versus budget (Hybrid probes)."""
    data = default_semisyn(scale)
    system = fit_system("semisyn", scale)
    estimators = [LassoEstimator(), GRMCEstimator(n_iterations=10), GSPEstimator()]
    points: List[RuntimePoint] = []
    history = data.train_history.slot_samples(data.slot)
    for budget in data.budgets:
        market = market_for(data, seed=1)
        truth = truth_oracle_for(data.test_history, 0, data.slot)
        result = system.answer_query(
            EstimationRequest(
                queried=data.queried, slot=data.slot, budget=budget, warm_start=False
            ),
            market=market,
            truth=truth,
        )
        context = EstimationContext(
            network=data.network,
            history_samples=history,
            probes=result.probes,
            slot_params=system.model.slot(data.slot),
        )
        for estimator in estimators:
            best = min(
                _timed(lambda e=estimator, c=context: e.estimate(c))
                for _ in range(repeats)
            )
            points.append(RuntimePoint("b", int(budget), estimator.name, best))
    return points


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def format_table(points: Sequence[RuntimePoint]) -> str:
    """Render the timing series."""
    header = ["panel", "K", "method", "seconds"]
    body = [[p.panel, p.budget, p.method, f"{p.seconds:.4f}"] for p in points]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print both panels of Figure 4."""
    print("Figure 4(a): OCS running time vs budget")
    print(format_table(run_ocs_runtime()))
    print("\nFigure 4(b): estimator running time vs budget")
    print(format_table(run_estimator_runtime()))


if __name__ == "__main__":
    main()
