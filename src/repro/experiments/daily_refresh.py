"""Day-replay study: static model vs nightly hot refresh.

The paper fits RTF from a fixed crawl and serves it unchanged.  A
deployed estimator keeps receiving full days of data, and the
:class:`~repro.core.store.ModelStore` absorbs them with
:meth:`~repro.core.pipeline.CrowdRTSE.refresh` (exponential-forgetting
moment updates, copy-on-write publish).  This experiment replays the
test days in order and answers the same query stream with

* a **static** system frozen at the offline fit, and
* a **refreshed** system that absorbs each day after answering it,

then reports per-day MAPE alongside the store telemetry that the
refactor is supposed to keep economical: the published version, the
cumulative Γ_R derivations (exactly one per refreshed slot per day),
and the GSP structure recompilations (likewise one per new digest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.gsp import GSPConfig, GSPSchedule
from repro.core.pipeline import CrowdRTSE
from repro.core.request import EstimationRequest
from repro.core.store import ModelStore
from repro.datasets import truth_oracle_for
from repro.eval.metrics import mean_absolute_percentage_error
from repro.experiments.common import (
    ExperimentScale,
    default_semisyn,
    fit_system,
    format_rows,
    market_for,
)


@dataclass(frozen=True)
class DailyRefreshRow:
    """One replayed day of the static-vs-refreshed comparison."""

    day: int
    store_version: int
    static_mape: float
    refreshed_mape: float
    corr_derivations: int
    gsp_recompilations: int


def run(
    scale: ExperimentScale = ExperimentScale.QUICK,
    learning_rate: float = 0.2,
    budget: float = 30.0,
    seed: int = 11,
) -> List[DailyRefreshRow]:
    """Replay every test day, refreshing one system nightly.

    Both systems start from the *same* offline fit and answer the same
    queries against the same markets; the refreshed one additionally
    absorbs each day's full speed field after answering it, so from day
    1 onward its parameters trail the drifting traffic while the static
    one stays frozen at the training crawl.
    """
    data = default_semisyn(scale)
    static = fit_system("semisyn", scale)
    live = CrowdRTSE(
        data.network,
        store=ModelStore(static.model, path_mode=static.correlations.mode),
    )
    local = data.test_history.local_slot(data.slot)

    rows: List[DailyRefreshRow] = []
    for day in range(data.test_history.n_days):
        truth = truth_oracle_for(data.test_history, day, data.slot)
        truths = np.array([truth(q) for q in data.queried])
        mapes = []
        for system in (static, live):
            result = system.answer_query(
                EstimationRequest(
                    queried=data.queried,
                    slot=data.slot,
                    budget=budget,
                    rng=np.random.default_rng(seed + day),
                    warm_start=False,
                ),
                market=market_for(data, seed=seed + day),
                truth=truth,
                # The parallel schedule exercises the digest-keyed
                # structure cache, so recompilations are visible.
                gsp_config=GSPConfig(schedule=GSPSchedule.BFS_PARALLEL),
            )
            mapes.append(
                mean_absolute_percentage_error(result.estimates_kmh, truths)
            )
        derivations = live.store.stats.correlation_derivations
        recompilations = live.gsp_engine.stats.structure_misses
        live.refresh(
            {data.slot: data.test_history.day(day)[local]},
            learning_rate=learning_rate,
        )
        rows.append(
            DailyRefreshRow(
                day=day,
                store_version=live.store.version,
                static_mape=mapes[0],
                refreshed_mape=mapes[1],
                corr_derivations=derivations,
                gsp_recompilations=recompilations,
            )
        )
    return rows


def format_table(rows: Sequence[DailyRefreshRow]) -> str:
    """Render the replay with per-day store telemetry."""
    header = [
        "day",
        "version",
        "static MAPE",
        "refreshed MAPE",
        "Γ_R derived",
        "GSP recompiled",
    ]
    body = [
        [
            r.day,
            r.store_version,
            f"{r.static_mape:.4f}",
            f"{r.refreshed_mape:.4f}",
            r.corr_derivations,
            r.gsp_recompilations,
        ]
        for r in rows
    ]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print the day-replay comparison."""
    rows = run(ExperimentScale.PAPER)
    print("Static offline fit vs nightly hot refresh (test-day replay)")
    print(format_table(rows))
    static = float(np.mean([r.static_mape for r in rows]))
    refreshed = float(np.mean([r.refreshed_mape for r in rows]))
    print(
        f"mean MAPE: static {static:.4f}, refreshed {refreshed:.4f} "
        f"({(static - refreshed) / max(static, 1e-12) * 100:+.1f}% change)"
    )


if __name__ == "__main__":
    main()
