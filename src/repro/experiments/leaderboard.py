"""Backend leaderboard — every registered estimator on shared probes.

Not a paper table: this is the acceptance harness of the pluggable
estimator-backend layer.  One ``rtf_gsp`` query per test day buys the
probes; every attached backend then estimates from the *same* probes
off the *same* snapshot, so accuracy and latency differences are
attributable to the estimator alone (the same controlled setup as the
paper's Fig. 3, extended to the backend registry).

Reported per backend: MAPE and FER over the queried roads (paper
§VII-C) and the mean/max per-estimate latency in milliseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

import repro.backends  # noqa: F401 - registers the built-in backends
from repro.backends.registry import available_backends
from repro.core.pipeline import CrowdRTSE
from repro.core.request import EstimationRequest
from repro.datasets import truth_oracle_for
from repro.eval.metrics import (
    false_estimation_rate,
    mean_absolute_percentage_error,
)
from repro.experiments.common import (
    ExperimentScale,
    dataset_by_name,
    evaluation_days,
    format_rows,
    market_for,
)


@dataclass(frozen=True)
class LeaderboardRow:
    """One backend's accuracy/latency summary."""

    backend: str
    mape: float
    fer: float
    mean_ms: float
    max_ms: float


def run(
    scale: ExperimentScale = ExperimentScale.PAPER,
    n_trials: int = 3,
) -> List[LeaderboardRow]:
    """Score every registered backend on the semi-synthesized dataset.

    Fits a fresh system (the memoized one is shared with other
    experiments and must not grow attached backends), attaches every
    registered backend, and replays ``n_trials`` test days.
    """
    data = dataset_by_name("semisyn", scale)
    system = CrowdRTSE.fit(data.network, data.train_history, slots=[data.slot])
    backends = available_backends()
    for name in backends:
        if name != "rtf_gsp":
            system.attach_backend(name, history=data.train_history)
    # rtf_gsp reuses the already-fitted slot parameters instead of
    # refitting: its backend state is exactly the pipeline's model.
    from repro.backends.rtf_gsp import RTFGSPState

    system.attach_backend(
        "rtf_gsp",
        state=RTFGSPState(params={data.slot: system.model.slot(data.slot)}),
    )

    budget = float(sorted(data.budgets)[len(data.budgets) // 2])
    queried = np.asarray(data.queried, dtype=int)
    estimates: Dict[str, List[np.ndarray]] = {name: [] for name in backends}
    timings: Dict[str, List[float]] = {name: [] for name in backends}
    truths: List[np.ndarray] = []
    for day in evaluation_days(data, n_trials):
        truth = truth_oracle_for(data.test_history, day, data.slot)
        result = system.answer_query(
            EstimationRequest(
                queried=data.queried,
                slot=data.slot,
                budget=budget,
                theta=data.theta,
                rng=np.random.default_rng(day),
                warm_start=False,
            ),
            market=market_for(data, seed=day),
            truth=truth,
        )
        truths.append(np.array([truth(int(q)) for q in queried]))
        for name in backends:
            start = time.perf_counter()
            estimate = system.estimate_with_backend(
                name, result.probes, data.slot
            )
            timings[name].append((time.perf_counter() - start) * 1e3)
            estimates[name].append(estimate.speeds[queried])

    truth_vec = np.concatenate(truths)
    rows: List[LeaderboardRow] = []
    for name in backends:
        estimate_vec = np.concatenate(estimates[name])
        rows.append(
            LeaderboardRow(
                backend=name,
                mape=mean_absolute_percentage_error(estimate_vec, truth_vec),
                fer=false_estimation_rate(estimate_vec, truth_vec),
                mean_ms=float(np.mean(timings[name])),
                max_ms=float(np.max(timings[name])),
            )
        )
    rows.sort(key=lambda row: row.mape)
    return rows


def format_table(rows: List[LeaderboardRow]) -> str:
    """Render the leaderboard, best MAPE first."""
    header = ["backend", "MAPE", "FER", "mean ms", "max ms"]
    body: List[List[object]] = [
        [
            r.backend,
            f"{r.mape:.4f}",
            f"{r.fer:.4f}",
            f"{r.mean_ms:.2f}",
            f"{r.max_ms:.2f}",
        ]
        for r in rows
    ]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print the backend leaderboard at paper scale."""
    print("Backend leaderboard: shared probes, per-backend estimation")
    print(format_table(run()))


if __name__ == "__main__":
    main()
