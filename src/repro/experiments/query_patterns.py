"""Query-pattern sensitivity experiment (extension, not in the paper).

How does CrowdRTSE's advantage over the periodic baseline depend on the
*shape* of the query — uniform scatter, hotspot, corridor?  Intuition:
concentrated queries are easier to cover with few probes (correlation
does more work), scattered queries lean on periodicity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.request import EstimationRequest
from repro.datasets import truth_oracle_for
from repro.eval.metrics import mean_absolute_percentage_error
from repro.experiments.common import (
    ExperimentScale,
    default_semisyn,
    fit_system,
    format_rows,
    market_for,
)
from repro.experiments.workloads import QueryPattern, query_stream


@dataclass(frozen=True)
class PatternRow:
    """Quality per query pattern."""

    pattern: str
    gsp_mape: float
    per_mape: float
    advantage: float
    n_queries: int


def run(
    scale: ExperimentScale = ExperimentScale.QUICK,
    query_size: int = 20,
    budget: int = 0,
    n_queries: int = 4,
    seed: int = 5,
) -> List[PatternRow]:
    """Replay a query stream per pattern and compare GSP to Per.

    Args:
        scale: Experiment sizing.
        query_size: Roads per query.
        budget: Budget K; 0 means the dataset's smallest budget.
        n_queries: Queries replayed per pattern (one per test day).
        seed: Workload seed.
    """
    data = default_semisyn(scale)
    system = fit_system("semisyn", scale)
    use_budget = budget if budget > 0 else min(data.budgets)
    params = system.model.slot(data.slot)
    rows: List[PatternRow] = []
    for pattern in QueryPattern:
        queries = query_stream(
            data.network, pattern, query_size, n_queries, seed=seed
        )
        gsp_errors: List[float] = []
        per_errors: List[float] = []
        for k, queried in enumerate(queries):
            day = k % data.test_history.n_days
            market = market_for(data, seed=seed + k)
            truth = truth_oracle_for(data.test_history, day, data.slot)
            result = system.answer_query(
                EstimationRequest(
                    queried=queried, slot=data.slot, budget=use_budget, warm_start=False
                ),
                market=market,
                truth=truth,
            )
            truths = np.array([truth(q) for q in queried])
            gsp_errors.append(
                mean_absolute_percentage_error(result.estimates_kmh, truths)
            )
            per_errors.append(
                mean_absolute_percentage_error(params.mu[list(queried)], truths)
            )
        gsp = float(np.mean(gsp_errors))
        per = float(np.mean(per_errors))
        rows.append(
            PatternRow(
                pattern=pattern.value,
                gsp_mape=gsp,
                per_mape=per,
                advantage=per - gsp,
                n_queries=n_queries,
            )
        )
    return rows


def format_table(rows: Sequence[PatternRow]) -> str:
    """Render the sensitivity table."""
    header = ["pattern", "GSP MAPE", "Per MAPE", "advantage", "queries"]
    body = [
        [r.pattern, f"{r.gsp_mape:.4f}", f"{r.per_mape:.4f}", f"{r.advantage:+.4f}", r.n_queries]
        for r in rows
    ]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print the query-pattern sensitivity table."""
    print("Query-pattern sensitivity (GSP vs Per, smallest budget)")
    print(format_table(run(ExperimentScale.PAPER)))


if __name__ == "__main__":
    main()
