"""Budget-allocation study: need-based vs uniform cross-slot budgets.

Extension of the paper (DESIGN.md S30): a service monitoring several
slots with one daily budget can either split it evenly or follow the RTF
σ-need (:func:`repro.core.allocation.allocate_budget`).  This study
replays a monitored window both ways and compares the pooled MAPE.
Expected shape: need-based allocation wins when slots differ in
volatility, and ties otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.allocation import allocate_budget
from repro.core.correlation import CorrelationTable
from repro.core.inference import fit_rtf
from repro.core.pipeline import CrowdRTSE
from repro.core.request import EstimationRequest
from repro.datasets import truth_oracle_for
from repro.eval.metrics import mean_absolute_percentage_error
from repro.experiments.common import (
    ExperimentScale,
    default_semisyn,
    format_rows,
    market_for,
)


@dataclass(frozen=True)
class AllocationRow:
    """Result of one allocation policy."""

    policy: str
    mape: float
    budgets: Dict[int, int]
    total_budget: int


def run(
    scale: ExperimentScale = ExperimentScale.QUICK,
    n_slots: int = 4,
    total_budget: int = 80,
    n_trials: int = 3,
) -> List[AllocationRow]:
    """Compare uniform vs σ-need budget allocation over several slots.

    Args:
        scale: Experiment sizing.
        n_slots: Monitored slots (taken from the dataset window).
        total_budget: Daily budget to split.
        n_trials: Test days replayed.
    """
    data = default_semisyn(scale)
    window = list(data.train_history.global_slots)
    stride = max(1, len(window) // n_slots)
    slots = window[::stride][:n_slots]

    model, _ = fit_rtf(data.network, data.train_history, slots=slots)
    table = CorrelationTable.precompute(model)
    system = CrowdRTSE(data.network, model, table)

    per_slot = total_budget // len(slots)
    uniform = {slot: per_slot for slot in slots}
    # Keep totals identical (drop any remainder from both policies).
    need_based = allocate_budget(
        model, data.queried, slots, total_budget=per_slot * len(slots), floor=1
    )

    rows: List[AllocationRow] = []
    for policy, budgets in (("uniform", uniform), ("need-based", need_based)):
        estimates_all: List[np.ndarray] = []
        truths_all: List[np.ndarray] = []
        for day in range(n_trials):
            day_idx = day % data.test_history.n_days
            for slot in slots:
                market = market_for(data, seed=1000 * day + slot)
                truth = truth_oracle_for(data.test_history, day_idx, slot)
                result = system.answer_query(
                    EstimationRequest(
                        queried=data.queried,
                        slot=slot,
                        budget=budgets[slot],
                        warm_start=False,
                    ),
                    market=market,
                    truth=truth,
                )
                estimates_all.append(result.estimates_kmh)
                truths_all.append(
                    np.array([truth(q) for q in data.queried])
                )
        mape = mean_absolute_percentage_error(
            np.concatenate(estimates_all), np.concatenate(truths_all)
        )
        rows.append(
            AllocationRow(
                policy=policy,
                mape=mape,
                budgets=dict(budgets),
                total_budget=sum(budgets.values()),
            )
        )
    return rows


def format_table(rows: Sequence[AllocationRow]) -> str:
    """Render the comparison."""
    header = ["policy", "MAPE", "total K", "per-slot budgets"]
    body = [
        [
            r.policy,
            f"{r.mape:.4f}",
            r.total_budget,
            " ".join(f"{slot}:{k}" for slot, k in sorted(r.budgets.items())),
        ]
        for r in rows
    ]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print the allocation comparison."""
    print("Cross-slot budget allocation: uniform vs sigma-need")
    print(format_table(run(ExperimentScale.PAPER, total_budget=150)))


if __name__ == "__main__":
    main()
