"""Shared plumbing of the experiment harness.

Datasets and fitted systems are memoized per scale so the per-figure
modules (and the benchmark suite, which calls several of them) don't
rebuild the 607-road world repeatedly.
"""

from __future__ import annotations

import enum
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.baselines import (
    BaseEstimator,
    EstimationContext,
    GRMCEstimator,
    GSPEstimator,
    LassoEstimator,
    PeriodicEstimator,
)
from repro.core.correlation import PathWeightMode
from repro.core.ocs import OCSInstance
from repro.core.pipeline import CrowdRTSE
from repro.core.request import EstimationRequest
from repro.crowd.cost import CostModel, uniform_random_costs
from repro.crowd.market import CrowdMarket
from repro.datasets import (
    Dataset,
    GMissionConfig,
    SemiSynConfig,
    build_gmission,
    build_semisyn,
    truth_oracle_for,
)


class ExperimentScale(str, enum.Enum):
    """Experiment sizing.

    * ``PAPER`` — Table II sizes (607 roads, full budget sweeps).
    * ``QUICK`` — a scaled-down world with the same structure, small
      enough for CI and the benchmark suite.
    """

    PAPER = "paper"
    QUICK = "quick"


def _semisyn_config(scale: ExperimentScale) -> SemiSynConfig:
    if scale is ExperimentScale.PAPER:
        return SemiSynConfig()
    return SemiSynConfig(
        n_roads=150,
        n_queried=25,
        n_train_days=20,
        n_test_days=8,
        n_slots=12,
        budgets=(15, 30, 45, 60, 75),
    )


def _gmission_config(scale: ExperimentScale) -> GMissionConfig:
    if scale is ExperimentScale.PAPER:
        return GMissionConfig()
    return GMissionConfig(
        n_component_roads=40,
        n_worker_roads=24,
        n_train_days=16,
        n_test_days=6,
        n_slots=12,
        source_network_roads=120,
        budgets=(10, 20, 30, 40, 50),
    )


@lru_cache(maxsize=4)
def default_semisyn(scale: ExperimentScale = ExperimentScale.PAPER) -> Dataset:
    """The memoized semi-synthesized dataset for a scale."""
    return build_semisyn(_semisyn_config(scale))


@lru_cache(maxsize=4)
def default_gmission(scale: ExperimentScale = ExperimentScale.PAPER) -> Dataset:
    """The memoized gMission-like dataset for a scale."""
    return build_gmission(_gmission_config(scale))


@lru_cache(maxsize=8)
def fit_system(
    dataset_name: str,
    scale: ExperimentScale = ExperimentScale.PAPER,
    path_mode: PathWeightMode = PathWeightMode.LOG,
) -> CrowdRTSE:
    """Memoized offline stage (RTF fit + Γ_R) for a default dataset.

    Args:
        dataset_name: ``"semisyn"`` or ``"gmission"``.
        scale: Experiment sizing.
        path_mode: Path-weight transform for the correlation table.
    """
    data = dataset_by_name(dataset_name, scale)
    return CrowdRTSE.fit(
        data.network, data.train_history, slots=[data.slot], path_mode=path_mode
    )


def dataset_by_name(name: str, scale: ExperimentScale) -> Dataset:
    """Resolve a default dataset by name."""
    if name == "semisyn":
        return default_semisyn(scale)
    if name == "gmission":
        return default_gmission(scale)
    raise ExperimentError(f"unknown dataset {name!r}")


def estimator_suite() -> Tuple[BaseEstimator, ...]:
    """The four estimators Fig. 3/6 compare."""
    return (
        GSPEstimator(),
        LassoEstimator(alpha=0.1),
        GRMCEstimator(rank=10, reg=0.1, n_iterations=10),
        PeriodicEstimator(),
    )


def ocs_instance_for(
    data: Dataset,
    system: CrowdRTSE,
    budget: float,
    theta: Optional[float] = None,
    cost_model: Optional[CostModel] = None,
) -> OCSInstance:
    """Assemble an OCS instance directly from a dataset bundle.

    Unlike :meth:`CrowdRTSE.build_ocs_instance` this lets experiments
    swap in alternative cost models (Fig. 2 compares cost ranges C1/C2).
    """
    costs = (cost_model or data.cost_model).costs_of(data.worker_roads).astype(float)
    params = system.model.slot(data.slot)
    return OCSInstance(
        queried=data.queried,
        candidates=data.worker_roads,
        costs=costs,
        budget=float(budget),
        theta=theta if theta is not None else data.theta,
        corr=system.correlations.matrix(data.slot),
        sigma=params.sigma,
    )


def market_for(data: Dataset, seed: int = 0) -> CrowdMarket:
    """A reproducible crowd market over a dataset's pool."""
    return CrowdMarket(
        data.network,
        data.pool,
        data.cost_model,
        rng=np.random.default_rng(seed),
    )


def evaluation_days(data: Dataset, n_trials: int) -> List[int]:
    """Deterministic test-day indices used as independent trials."""
    if n_trials <= 0:
        raise ExperimentError(f"n_trials must be positive, got {n_trials}")
    n_days = data.test_history.n_days
    return [day % n_days for day in range(n_trials)]


def run_estimation_trial(
    data: Dataset,
    system: CrowdRTSE,
    budget: float,
    selector: str,
    day: int,
    theta: Optional[float] = None,
    estimators: Optional[Sequence[BaseEstimator]] = None,
    seed: int = 0,
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """One (budget, selector, day) trial: probe once, estimate with all.

    Every estimator consumes the *same* probes, so differences are
    attributable to the estimation method alone (the paper's setup).

    Returns:
        Mapping estimator name → ``(estimates, truths)`` over ``R^q``.
    """
    market = market_for(data, seed=seed + day)
    truth = truth_oracle_for(data.test_history, day, data.slot)
    result = system.answer_query(
        EstimationRequest(
            queried=data.queried,
            slot=data.slot,
            budget=budget,
            theta=theta if theta is not None else data.theta,
            selector=selector,
            rng=np.random.default_rng(seed + day),
            warm_start=False,
        ),
        market=market,
        truth=truth,
    )
    context = EstimationContext(
        network=data.network,
        history_samples=data.train_history.slot_samples(data.slot),
        probes=result.probes,
        slot_params=system.model.slot(data.slot),
    )
    queried = np.asarray(data.queried, dtype=int)
    truths = np.array([truth(int(q)) for q in queried])
    outputs: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for estimator in estimators or estimator_suite():
        field = estimator.estimate(context)
        outputs[estimator.name] = (field[queried], truths)
    return outputs


def alt_cost_model(data: Dataset, low: int, high: int, seed: int = 99) -> CostModel:
    """A replacement uniform cost model over the dataset's network."""
    return uniform_random_costs(data.network, low, high, seed=seed)


def format_rows(
    header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text table used by every experiment's CLI output."""
    table = [list(map(str, header))] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    for idx, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if idx == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    return "\n".join(lines)
