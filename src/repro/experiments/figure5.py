"""Figure 5 — RTF offline-training convergence versus network size.

The paper selects subcomponents of 150–600 roads, trains RTF with
vanilla gradient ascent (λ = 0.1) from random initialization, and
measures convergence via the maximum gradient over the means {μ}.
Finding: iterations-to-convergence grow roughly linearly with network
size, so training stays tolerable at city scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.inference import RTFInferenceConfig, infer_slot_parameters
from repro.experiments.common import ExperimentScale, default_semisyn, format_rows

#: Paper's subcomponent sizes (scaled down for QUICK).
PAPER_SIZES: Tuple[int, ...] = (150, 300, 450, 600)
QUICK_SIZES: Tuple[int, ...] = (30, 60, 90, 120)


@dataclass(frozen=True)
class Figure5Point:
    """Training convergence for one subnetwork size."""

    n_roads: int
    iterations: int
    converged: bool
    final_grad_mu: float


def run(
    scale: ExperimentScale = ExperimentScale.PAPER,
    sizes: Sequence[int] = (),
    tol: float = 0.05,
    max_iters: int = 2000,
) -> List[Figure5Point]:
    """Train RTF on growing subcomponents from random init.

    Args:
        scale: Experiment sizing (chooses the source network and the
            default size series).
        sizes: Explicit subcomponent sizes (overrides the defaults).
        tol: Convergence threshold on ``max |∂L/∂mu|``.
        max_iters: Iteration cap.
    """
    data = default_semisyn(scale)
    if not sizes:
        sizes = PAPER_SIZES if scale is ExperimentScale.PAPER else QUICK_SIZES
    points: List[Figure5Point] = []
    for size in sizes:
        subnetwork = data.network.connected_subcomponent(size)
        history = data.train_history.restrict_roads(subnetwork)
        samples = history.slot_samples(data.slot)
        config = RTFInferenceConfig(
            step=0.1,
            max_iters=max_iters,
            tol=tol,
            init="random",
            seed=13,
        )
        _, diag = infer_slot_parameters(subnetwork, samples, data.slot, config)
        points.append(
            Figure5Point(
                n_roads=size,
                iterations=diag.iterations,
                converged=diag.converged,
                final_grad_mu=diag.final_grad_mu,
            )
        )
    return points


def format_table(points: List[Figure5Point]) -> str:
    """Render the convergence series."""
    header = ["|R|", "iterations", "converged", "final max|grad mu|"]
    body = [
        [p.n_roads, p.iterations, p.converged, f"{p.final_grad_mu:.4f}"]
        for p in points
    ]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print Figure 5's series."""
    print("Figure 5: RTF training convergence vs network size (random init, step=0.1)")
    print(format_table(run()))


if __name__ == "__main__":
    main()
