"""Figure 6 — MAPE / FER on the gMission dataset.

Same comparison as Fig. 3(a1)/(a2) — GSP vs LASSO vs GRMC vs Per with
Hybrid-Greedy selection — but on the small worker-scarce gMission-like
instance with budgets K ∈ {10..50}.  Paper finding: the patterns of the
semi-synthesized data carry over.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentScale
from repro.experiments.figure3 import Figure3Cell, format_table
from repro.experiments import figure3


def run(
    scale: ExperimentScale = ExperimentScale.PAPER,
    n_trials: int = 5,
) -> List[Figure3Cell]:
    """Run the gMission quality sweep (Hybrid selection, tuned θ)."""
    return figure3.run(
        scale=scale,
        n_trials=n_trials,
        dataset_name="gmission",
        selectors=("hybrid",),
        thetas=(0.92,),
    )


def main() -> None:
    """CLI entry: print Figure 6's series."""
    print("Figure 6: gMission dataset, MAPE / FER (Hybrid selection)")
    print(format_table(run()))


if __name__ == "__main__":
    main()
