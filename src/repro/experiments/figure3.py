"""Figure 3 — estimation quality of GSP vs LASSO vs GRMC vs Per.

The paper's 3×5 grid: rows are MAPE / FER / DAPE, columns are

* (a) crowdsourced roads selected by Hybrid-Greedy,
* (b) selected by Objective-Greedy,
* (c) selected randomly,
* (d) GSP quality across the three selection strategies,
* (e) GSP quality for θ = 1 vs the fine-tuned θ = 0.92.

Expected shapes: GSP gives the best MAPE/FER in most cases, with the
clearest margin at the smallest budget; quality gains per budget step
shrink as K grows; Hybrid selection beats OBJ and Random; the tuned θ
helps only at small K.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.eval.metrics import summarize_errors, ErrorSummary
from repro.experiments.common import (
    ExperimentScale,
    dataset_by_name,
    evaluation_days,
    fit_system,
    format_rows,
    run_estimation_trial,
)

#: Selection strategies compared in columns (a)-(d).
SELECTORS: Tuple[str, ...] = ("hybrid", "objective", "random")

#: θ settings compared in column (e): Theta(*) = 0.92, Theta(1) = 1.0.
THETAS: Tuple[float, ...] = (0.92, 1.0)


@dataclass(frozen=True)
class Figure3Cell:
    """Quality of one (selector, θ, budget, estimator) configuration."""

    selector: str
    theta: float
    budget: int
    estimator: str
    summary: ErrorSummary


def run(
    scale: ExperimentScale = ExperimentScale.PAPER,
    n_trials: int = 5,
    dataset_name: str = "semisyn",
    selectors: Sequence[str] = SELECTORS,
    thetas: Sequence[float] = (0.92,),
    budgets: Optional[Sequence[int]] = None,
) -> List[Figure3Cell]:
    """Run the quality grid.

    Each (selector, θ, budget) probes once per trial day and feeds the
    same probes to all four estimators; errors are pooled over trials.

    Args:
        scale: Experiment sizing.
        n_trials: Test days used as independent trials.
        dataset_name: ``"semisyn"`` (Fig. 3) or ``"gmission"`` (Fig. 6).
        selectors: Selection strategies to include.
        thetas: Redundancy thresholds to include (pass ``THETAS`` for
            column (e)).
        budgets: Budget sweep; defaults to the dataset's.
    """
    data = dataset_by_name(dataset_name, scale)
    system = fit_system(dataset_name, scale)
    budget_sweep = tuple(budgets) if budgets is not None else data.budgets
    cells: List[Figure3Cell] = []
    for theta in thetas:
        for selector in selectors:
            for budget in budget_sweep:
                pooled: Dict[str, List[Tuple[np.ndarray, np.ndarray]]] = {}
                for day_idx in evaluation_days(data, n_trials):
                    outputs = run_estimation_trial(
                        data,
                        system,
                        budget=budget,
                        selector=selector,
                        day=day_idx,
                        theta=theta,
                        seed=17,
                    )
                    for name, pair in outputs.items():
                        pooled.setdefault(name, []).append(pair)
                for name, pairs in pooled.items():
                    estimates = np.concatenate([p[0] for p in pairs])
                    truths = np.concatenate([p[1] for p in pairs])
                    cells.append(
                        Figure3Cell(
                            selector=selector,
                            theta=theta,
                            budget=int(budget),
                            estimator=name,
                            summary=summarize_errors(estimates, truths),
                        )
                    )
    return cells


def format_table(cells: List[Figure3Cell]) -> str:
    """Render MAPE and FER for every cell."""
    header = ["selector", "theta", "K", "estimator", "MAPE", "FER", "cases"]
    body = [
        [
            c.selector,
            c.theta,
            c.budget,
            c.estimator,
            f"{c.summary.mape:.4f}",
            f"{c.summary.fer:.4f}",
            c.summary.n_cases,
        ]
        for c in cells
    ]
    return format_rows(header, body)


def format_dape(cells: List[Figure3Cell], budget: int) -> str:
    """Render the DAPE row of the figure for one budget."""
    selected = [c for c in cells if c.budget == budget]
    if not selected:
        return "(no cells at that budget)"
    edges = selected[0].summary.dape_edges
    header = ["selector", "estimator"] + [
        f"<{edges[i + 1]:.2f}" for i in range(len(edges) - 1)
    ] + [f">={edges[-1]:.2f}"]
    body = [
        [c.selector, c.estimator] + [f"{frac:.3f}" for frac in c.summary.dape]
        for c in selected
    ]
    return format_rows(header, body)


def main() -> None:
    """CLI entry: print the Figure 3 grid (columns a–c, d, e)."""
    cells = run(thetas=THETAS)
    print("Figure 3: estimation quality (MAPE / FER)")
    print(format_table(cells))
    smallest = min(c.budget for c in cells)
    print(f"\nFigure 3 (row 3): DAPE at K={smallest}")
    print(format_dape([c for c in cells if c.theta == 0.92], smallest))


if __name__ == "__main__":
    main()
