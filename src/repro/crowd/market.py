"""The crowdsourcing marketplace simulator.

:class:`CrowdMarket` closes the loop between OCS and GSP: given the
selected crowdsourced roads it dispatches tasks to the workers on those
roads, collects noisy answers against the ground-truth speed field, pays
one unit per answer (tracked in a :class:`BudgetLedger`), and returns
the aggregated probe values ``V̂_{R^c}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import BudgetError, CrowdError
from repro.crowd.aggregation import Aggregator, aggregate_answers
from repro.crowd.cost import CostModel
from repro.crowd.workers import WorkerPool
from repro.network.graph import TrafficNetwork
from repro.obs import get_metrics, get_tracer

#: A ground-truth oracle: road index -> current true speed (km/h).
TruthOracle = Callable[[int], float]


@dataclass(frozen=True)
class ProbeReceipt:
    """Record of one crowdsourced probe of one road.

    Attributes:
        road_index: Probed road.
        answers: Raw worker answers collected.
        aggregated_kmh: The integrated probe value.
        paid: Units of payment spent (= number of answers).
        true_kmh: Ground truth at probe time (kept for evaluation).
    """

    road_index: int
    answers: Tuple[float, ...]
    aggregated_kmh: float
    paid: int
    true_kmh: float


class BudgetLedger:
    """Tracks crowdsourcing payments against a budget ``K``."""

    def __init__(self, budget: float) -> None:
        if budget <= 0:
            raise BudgetError(f"budget must be positive, got {budget}")
        self._budget = float(budget)
        self._entries: List[Tuple[int, int]] = []

    @property
    def budget(self) -> float:
        """The total budget K."""
        return self._budget

    @property
    def spent(self) -> int:
        """Units paid so far."""
        return sum(amount for _, amount in self._entries)

    @property
    def remaining(self) -> float:
        """Budget left."""
        return self._budget - self.spent

    @property
    def entries(self) -> Tuple[Tuple[int, int], ...]:
        """Payment entries as ``(road_index, amount)`` tuples."""
        return tuple(self._entries)

    def charge(self, road_index: int, amount: int) -> None:
        """Record a payment.

        Raises:
            BudgetError: When the charge would exceed the budget.
        """
        if amount <= 0:
            raise BudgetError(f"charge amount must be positive, got {amount}")
        if self.spent + amount > self._budget + 1e-9:
            raise BudgetError(
                f"charging {amount} for road {road_index} exceeds budget "
                f"{self._budget} (already spent {self.spent})"
            )
        self._entries.append((road_index, amount))


class CrowdMarket:
    """Dispatches probe tasks and aggregates worker answers.

    Args:
        network: Road graph.
        pool: Available workers.
        cost_model: Answers required per road.
        aggregator: Rule combining multiple answers.
        rng: RNG for measurement noise (or a seed via
            ``numpy.random.default_rng``).
    """

    def __init__(
        self,
        network: TrafficNetwork,
        pool: WorkerPool,
        cost_model: CostModel,
        aggregator: Aggregator = Aggregator.MEAN,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._network = network
        self._pool = pool
        self._cost_model = cost_model
        self._aggregator = aggregator
        # Deliberate: callers wanting reproducible markets pass `rng`.
        self._rng = rng or np.random.default_rng()  # repro: noqa[RA006]

    @property
    def pool(self) -> WorkerPool:
        """The worker pool."""
        return self._pool

    @property
    def cost_model(self) -> CostModel:
        """The per-road cost model."""
        return self._cost_model

    def candidate_roads(self) -> Tuple[int, ...]:
        """``R^w`` — roads that can currently be crowdsourced."""
        return self._pool.roads_with_workers()

    def probe(
        self,
        roads: Sequence[int],
        truth: TruthOracle,
        ledger: Optional[BudgetLedger] = None,
    ) -> Tuple[Dict[int, float], List[ProbeReceipt]]:
        """Collect crowdsourced speeds for the selected roads.

        For each road, ``cost`` answers are collected from the workers
        stationed there (workers answer repeatedly when fewer workers
        than answers are available, modelling repeated measurements) and
        aggregated.

        Args:
            roads: The crowdsourced roads ``R^c``.
            truth: Ground-truth oracle providing the current speed.
            ledger: Optional budget ledger; every answer is charged.

        Returns:
            ``(probes, receipts)`` where ``probes`` maps road index to
            the aggregated speed.

        Raises:
            NoWorkersError: If a road has no workers.
            BudgetError: If the ledger cannot cover the answers.
        """
        tracer = get_tracer()
        trace_roads = tracer.enabled
        probes: Dict[int, float] = {}
        receipts: List[ProbeReceipt] = []
        with tracer.span("crowd.execute", roads=len(roads)) as span:
            for road in roads:
                road = int(road)
                workers = self._pool.workers_on(road)
                required = self._cost_model.cost_of(road)
                if ledger is not None:
                    ledger.charge(road, required)
                true_speed = float(truth(road))
                if true_speed <= 0:
                    raise CrowdError(
                        f"truth oracle returned {true_speed} for road {road}"
                    )
                answers: List[float] = []
                for k in range(required):
                    worker = workers[k % len(workers)]
                    answers.append(worker.measure(true_speed, self._rng))
                value = aggregate_answers(answers, self._aggregator)
                probes[road] = value
                receipts.append(
                    ProbeReceipt(
                        road_index=road,
                        answers=tuple(answers),
                        aggregated_kmh=value,
                        paid=required,
                        true_kmh=true_speed,
                    )
                )
                if trace_roads:
                    tracer.event(
                        "crowd.probe",
                        road=road,
                        answers=required,
                        aggregated_kmh=value,
                    )
            span.set_attr("cost", sum(r.paid for r in receipts))
        self._record_metrics(receipts, ledger)
        return probes, receipts

    def _record_metrics(
        self, receipts: Sequence[ProbeReceipt], ledger: Optional[BudgetLedger]
    ) -> None:
        metrics = get_metrics()
        if not metrics.enabled or not receipts:
            return
        metrics.counter("crowd.tasks_posted").inc(len(receipts))
        metrics.counter("crowd.answers_collected").inc(
            sum(len(r.answers) for r in receipts)
        )
        metrics.counter("crowd.cost_spent").inc(sum(r.paid for r in receipts))
        if ledger is not None:
            metrics.gauge("crowd.budget_total").set(ledger.budget)
            metrics.gauge("crowd.budget_spent").set(ledger.spent)
            metrics.gauge("crowd.budget_remaining").set(ledger.remaining)
