"""Worker mobility: a time-varying worker distribution.

The paper stresses that crowdsourced data "is usually collected from
unfixed locations (because the workers' distribution is time variant)"
(§II-A) — the very property that breaks fixed-observation-site
regression.  :class:`MobilityModel` makes that concrete: between
consecutive time slots each worker either stays on her road or moves to
an adjacent one, so ``R^w`` changes slot by slot and the OCS candidate
set must be re-derived per query.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import CrowdError
from repro.crowd.workers import Worker, WorkerPool
from repro.network.graph import TrafficNetwork


class MobilityModel:
    """Random-walk worker mobility over the road graph.

    Each step, every worker independently moves to a uniformly chosen
    adjacent road with probability ``move_probability`` (staying put
    otherwise, or when her road is isolated).

    Args:
        network: Road graph the workers move on.
        move_probability: Chance a worker changes road per step.
        seed: RNG seed; the walk is deterministic given it.
    """

    def __init__(
        self,
        network: TrafficNetwork,
        move_probability: float = 0.3,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= move_probability <= 1.0:
            raise CrowdError(
                f"move_probability must be in [0, 1], got {move_probability}"
            )
        self._network = network
        self._move_probability = move_probability
        self._rng = np.random.default_rng(seed)

    @property
    def move_probability(self) -> float:
        """Per-step probability a worker changes road."""
        return self._move_probability

    def step(self, pool: WorkerPool) -> WorkerPool:
        """Advance the worker distribution by one time slot.

        Returns a new :class:`WorkerPool`; the input pool is untouched.
        """
        moved: List[Worker] = []
        for worker in pool.workers:
            road = worker.road_index
            neighbors = self._network.neighbors(road)
            if neighbors and self._rng.random() < self._move_probability:
                road = int(neighbors[int(self._rng.integers(len(neighbors)))])
            moved.append(replace(worker, road_index=road))
        return WorkerPool(self._network, moved)

    def walk(self, pool: WorkerPool, n_steps: int) -> List[WorkerPool]:
        """Pools after each of ``n_steps`` consecutive steps.

        Args:
            pool: Starting distribution.
            n_steps: Number of slots to simulate (>= 1).

        Returns:
            List of ``n_steps`` pools (not including the start).
        """
        if n_steps < 1:
            raise CrowdError(f"n_steps must be >= 1, got {n_steps}")
        pools: List[WorkerPool] = []
        current = pool
        for _ in range(n_steps):
            current = self.step(current)
            pools.append(current)
        return pools

    def coverage_series(
        self, pool: WorkerPool, n_steps: int
    ) -> List[Tuple[int, int]]:
        """Per-step ``(n_roads_with_workers, n_workers)`` statistics.

        Useful to verify that mobility churns ``R^w`` without losing
        workers.
        """
        series: List[Tuple[int, int]] = []
        for stepped in self.walk(pool, n_steps):
            series.append((len(stepped.roads_with_workers()), stepped.n_workers))
        return series


def stationary_coverage_estimate(
    network: TrafficNetwork,
    n_workers: int,
    n_steps: int = 50,
    move_probability: float = 0.3,
    seed: Optional[int] = None,
) -> float:
    """Fraction of roads covered by workers in the walk's long run.

    Runs a random-walk burn-in and reports the average coverage over the
    last half of the steps — a planning helper for "how many workers
    does this city need so that R^w stays useful?".
    """
    if n_workers <= 0:
        raise CrowdError("n_workers must be positive")
    pool = WorkerPool.random_distribution(network, n_workers, seed=seed)
    model = MobilityModel(network, move_probability, seed=seed)
    series = model.coverage_series(pool, n_steps)
    tail = series[len(series) // 2 :]
    return float(np.mean([covered / network.n_roads for covered, _ in tail]))
