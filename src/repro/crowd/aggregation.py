"""Aggregation of multiple crowd answers into one probe value.

The paper collects multiple answers per crowdsourced road and integrates
them (§V-A).  The integration rule matters when workers are noisy or
biased; three standard estimators are provided, and the ablation bench
compares them.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.errors import CrowdError


class Aggregator(str, enum.Enum):
    """Rule for combining several answers for the same road."""

    MEAN = "mean"
    MEDIAN = "median"
    #: Mean after discarding the top and bottom 20% of answers.
    TRIMMED_MEAN = "trimmed-mean"


def aggregate_answers(
    answers: Sequence[float], aggregator: Aggregator = Aggregator.MEAN
) -> float:
    """Combine answers into one speed estimate.

    Args:
        answers: Raw speed reports (km/h); at least one required.
        aggregator: Combination rule.

    Raises:
        CrowdError: On an empty or non-positive answer set.
    """
    values = np.asarray(list(answers), dtype=np.float64)
    if values.size == 0:
        raise CrowdError("cannot aggregate an empty answer set")
    if np.any(values <= 0) or np.any(~np.isfinite(values)):
        raise CrowdError("answers must be finite positive speeds")
    if aggregator is Aggregator.MEAN:
        return float(values.mean())
    if aggregator is Aggregator.MEDIAN:
        return float(np.median(values))
    if aggregator is Aggregator.TRIMMED_MEAN:
        if values.size <= 2:
            return float(values.mean())
        k = max(1, int(0.2 * values.size))
        trimmed = np.sort(values)[k:-k]
        if trimmed.size == 0:
            return float(np.median(values))
        return float(trimmed.mean())
    raise CrowdError(f"unknown aggregator {aggregator!r}")  # pragma: no cover
