"""Trajectory-based probing: crowd answers derived from GPS traces.

The basic :class:`~repro.crowd.market.CrowdMarket` models a worker's
answer as a noisy point read of the true speed.  In a deployed system
the answer is *derived from the worker's own movement*: she keeps
driving her road and the platform computes speed from consecutive GPS
fixes.  :class:`TrajectoryProbeCollector` implements that pipeline using
the :mod:`repro.traffic.trajectories` substrate, so experiments can
check that CrowdRTSE's quality survives realistic measurement noise
(fix quantization, GPS jitter, short dwell times).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CrowdError
from repro.crowd.aggregation import Aggregator, aggregate_answers
from repro.network.graph import TrafficNetwork
from repro.traffic.trajectories import TrajectoryGenerator, extract_road_speeds


class TrajectoryProbeCollector:
    """Collects per-road crowd answers by simulating worker drives.

    Args:
        network: Road graph.
        drive_duration_s: How long each worker drives to produce one
            answer.
        fix_interval_s: GPS sampling period.
        gps_noise_fraction: Relative GPS position noise.
        aggregator: Rule combining a road's multiple answers.
        seed: RNG seed.
    """

    def __init__(
        self,
        network: TrafficNetwork,
        drive_duration_s: float = 120.0,
        fix_interval_s: float = 10.0,
        gps_noise_fraction: float = 0.02,
        aggregator: Aggregator = Aggregator.MEAN,
        seed: Optional[int] = None,
    ) -> None:
        if drive_duration_s <= 0:
            raise CrowdError("drive_duration_s must be positive")
        self._network = network
        self._duration = drive_duration_s
        self._fix_interval = fix_interval_s
        self._noise = gps_noise_fraction
        self._aggregator = aggregator
        self._seed = seed

    def probe(
        self,
        roads: Sequence[int],
        true_speeds_kmh: np.ndarray,
        answers_per_road: Mapping[int, int],
    ) -> Tuple[Dict[int, float], Dict[int, List[float]]]:
        """Collect trace-derived answers for the selected roads.

        For each road, ``answers_per_road[road]`` workers each drive for
        :attr:`drive_duration_s` starting on that road; each usable trace
        segment on the road yields one answer.  Workers whose trace
        leaves the road too quickly retry up to three times (a platform
        would simply ask another worker).

        Args:
            roads: Crowdsourced roads ``R^c``.
            true_speeds_kmh: Current ground-truth speed per road.
            answers_per_road: Answers required per road (the cost).

        Returns:
            ``(aggregated, raw)``: the per-road aggregated probe value
            and the raw answer lists.

        Raises:
            CrowdError: When a road yields no usable answer at all.
        """
        generator = TrajectoryGenerator(
            self._network,
            true_speeds_kmh,
            fix_interval_s=self._fix_interval,
            gps_noise_fraction=self._noise,
            seed=self._seed,
        )
        aggregated: Dict[int, float] = {}
        raw: Dict[int, List[float]] = {}
        for road in roads:
            road = int(road)
            required = int(answers_per_road.get(road, 1))
            if required <= 0:
                raise CrowdError(f"answers required for road {road} must be positive")
            answers: List[float] = []
            attempts = 0
            while len(answers) < required and attempts < 3 * required + 3:
                attempts += 1
                trace = generator.drive(
                    f"probe_{road}_{attempts}", road, self._duration
                )
                observed = extract_road_speeds(self._network, trace)
                if road in observed:
                    answers.append(observed[road])
            if not answers:
                raise CrowdError(
                    f"no usable trajectory answer for road {road} after "
                    f"{attempts} drives (road too short for the fix interval?)"
                )
            raw[road] = answers
            aggregated[road] = aggregate_answers(answers, self._aggregator)
        return aggregated, raw
