"""Workers and their spatial distribution.

A :class:`Worker` is a participant who announced a task demand together
with her current road (paper §III-A).  The :class:`WorkerPool` answers
the one question OCS needs — *which roads currently have workers*
(``R^w``) — and hands out the workers on a road when the market probes
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CrowdError, NoWorkersError
from repro.network.graph import TrafficNetwork


@dataclass(frozen=True)
class Worker:
    """One crowdsourcing participant.

    Attributes:
        worker_id: Unique identifier.
        road_index: Road the worker is currently on.
        noise_std_fraction: Std dev of the worker's measurement error as
            a fraction of the true speed (GPS-speed estimates are
            proportional-error).
        bias_fraction: Systematic per-worker bias as a fraction of the
            true speed (e.g. a pedestrian reporting slightly low).
    """

    worker_id: str
    road_index: int
    noise_std_fraction: float = 0.08
    bias_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not self.worker_id:
            raise CrowdError("worker_id must be non-empty")
        if self.noise_std_fraction < 0:
            raise CrowdError("noise_std_fraction must be >= 0")

    def measure(self, true_speed: float, rng: np.random.Generator) -> float:
        """One noisy speed measurement, floored at 0.5 km/h."""
        if true_speed <= 0:
            raise CrowdError(f"true speed must be positive, got {true_speed}")
        noise = rng.normal(0.0, self.noise_std_fraction)
        reading = true_speed * (1.0 + self.bias_fraction + noise)
        return max(reading, 0.5)


class WorkerPool:
    """All workers currently available, indexed by road."""

    def __init__(self, network: TrafficNetwork, workers: Iterable[Worker]) -> None:
        self._network = network
        self._by_road: Dict[int, List[Worker]] = {}
        self._workers: Tuple[Worker, ...] = tuple(workers)
        for worker in self._workers:
            if not 0 <= worker.road_index < network.n_roads:
                raise CrowdError(
                    f"worker {worker.worker_id!r} on unknown road {worker.road_index}"
                )
            self._by_road.setdefault(worker.road_index, []).append(worker)

    @property
    def n_workers(self) -> int:
        """Total number of workers in the pool."""
        return len(self._workers)

    @property
    def workers(self) -> Tuple[Worker, ...]:
        """All workers."""
        return self._workers

    def roads_with_workers(self) -> Tuple[int, ...]:
        """The candidate set ``R^w``, sorted by road index."""
        return tuple(sorted(self._by_road))

    def workers_on(self, road_index: int) -> Tuple[Worker, ...]:
        """Workers currently on one road.

        Raises:
            NoWorkersError: When the road has no workers.
        """
        try:
            return tuple(self._by_road[road_index])
        except KeyError:
            raise NoWorkersError(f"no workers on road index {road_index}") from None

    def count_on(self, road_index: int) -> int:
        """Number of workers on one road (0 when none)."""
        return len(self._by_road.get(road_index, []))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def cover_all_roads(
        cls,
        network: TrafficNetwork,
        workers_per_road: int = 10,
        noise_std_fraction: float = 0.08,
        seed: Optional[int] = None,
    ) -> "WorkerPool":
        """A pool with workers on every road.

        This is the semi-synthetic dataset's assumption (paper §VII-A:
        "workers are assumed to cover all the tested roads").
        """
        if workers_per_road <= 0:
            raise CrowdError("workers_per_road must be positive")
        rng = np.random.default_rng(seed)
        workers: List[Worker] = []
        for road in range(network.n_roads):
            for k in range(workers_per_road):
                workers.append(
                    Worker(
                        worker_id=f"w{road}_{k}",
                        road_index=road,
                        noise_std_fraction=float(
                            abs(rng.normal(noise_std_fraction, noise_std_fraction / 4))
                        ),
                        bias_fraction=float(rng.normal(0.0, 0.01)),
                    )
                )
        return cls(network, workers)

    @classmethod
    def on_roads(
        cls,
        network: TrafficNetwork,
        road_indices: Sequence[int],
        workers_per_road: int = 10,
        noise_std_fraction: float = 0.08,
        seed: Optional[int] = None,
    ) -> "WorkerPool":
        """A pool whose workers sit only on the given roads.

        This is the gMission dataset's shape (``R^w ⊂ R^q``).
        """
        if workers_per_road <= 0:
            raise CrowdError("workers_per_road must be positive")
        rng = np.random.default_rng(seed)
        workers: List[Worker] = []
        for road in road_indices:
            for k in range(workers_per_road):
                workers.append(
                    Worker(
                        worker_id=f"w{road}_{k}",
                        road_index=int(road),
                        noise_std_fraction=float(
                            abs(rng.normal(noise_std_fraction, noise_std_fraction / 4))
                        ),
                        bias_fraction=float(rng.normal(0.0, 0.01)),
                    )
                )
        return cls(network, workers)

    @classmethod
    def random_distribution(
        cls,
        network: TrafficNetwork,
        n_workers: int,
        noise_std_fraction: float = 0.08,
        seed: Optional[int] = None,
    ) -> "WorkerPool":
        """Workers scattered uniformly at random over the roads."""
        if n_workers <= 0:
            raise CrowdError("n_workers must be positive")
        rng = np.random.default_rng(seed)
        roads = rng.integers(0, network.n_roads, size=n_workers)
        workers = [
            Worker(
                worker_id=f"w{k}",
                road_index=int(roads[k]),
                noise_std_fraction=noise_std_fraction,
            )
            for k in range(n_workers)
        ]
        return cls(network, workers)
