"""Per-road crowdsourcing costs.

The paper defines a road's *cost* as the minimum number of answers that
must be collected (and paid, one unit each) to get a reliable aggregate
(§V-A "Feasibility").  Table II generates costs uniformly at random —
C2 = U{1..5} and C1 = U{1..10} — which we reproduce, plus a road-kind
based model reflecting the paper's observation that highway answers are
stable and therefore cheap.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import BudgetError
from repro.network.graph import RoadKind, TrafficNetwork


class CostModel:
    """Integer answer-count cost per road.

    Args:
        network: Road graph.
        costs: Cost per road, index-aligned; strictly positive integers.
    """

    def __init__(self, network: TrafficNetwork, costs: Sequence[int]) -> None:
        arr = np.asarray(costs, dtype=np.int64)
        if arr.shape != (network.n_roads,):
            raise BudgetError(
                f"costs must have shape ({network.n_roads},), got {arr.shape}"
            )
        if np.any(arr <= 0):
            raise BudgetError("all road costs must be positive integers")
        self._network = network
        self._costs = arr

    @property
    def costs(self) -> np.ndarray:
        """Cost per road (read-only view)."""
        view = self._costs.view()
        view.flags.writeable = False
        return view

    def cost_of(self, road_index: int) -> int:
        """Cost of a single road."""
        if not 0 <= road_index < self._network.n_roads:
            raise BudgetError(f"road index {road_index} outside the network")
        return int(self._costs[road_index])

    def costs_of(self, road_indices: Sequence[int]) -> np.ndarray:
        """Costs of several roads, order-preserving."""
        return np.array([self.cost_of(int(r)) for r in road_indices], dtype=np.int64)

    def total(self, road_indices: Sequence[int]) -> int:
        """Total cost of a selection."""
        return int(self.costs_of(road_indices).sum())

    @property
    def cost_range(self) -> Tuple[int, int]:
        """(min, max) cost across all roads."""
        return int(self._costs.min()), int(self._costs.max())


def uniform_random_costs(
    network: TrafficNetwork,
    low: int = 1,
    high: int = 10,
    seed: Optional[int] = None,
) -> CostModel:
    """Costs drawn uniformly from ``{low..high}`` (paper Table II).

    ``low=1, high=10`` is the paper's C1; ``low=1, high=5`` is C2.
    """
    if not 0 < low <= high:
        raise BudgetError(f"need 0 < low <= high, got low={low}, high={high}")
    rng = np.random.default_rng(seed)
    costs = rng.integers(low, high + 1, size=network.n_roads)
    return CostModel(network, costs)


#: Default costs per road kind: stable highways need few answers.
_KIND_COSTS: Dict[RoadKind, Tuple[int, int]] = {
    RoadKind.HIGHWAY: (1, 3),
    RoadKind.ARTERIAL: (2, 6),
    RoadKind.LOCAL: (3, 10),
}


def kind_based_costs(network: TrafficNetwork, seed: Optional[int] = None) -> CostModel:
    """Costs drawn per road kind — highways cheap, local streets dear.

    Models the paper's example that highway speeds are stable so fewer
    answers suffice (§V-A).
    """
    rng = np.random.default_rng(seed)
    costs = []
    for road in network.roads:
        low, high = _KIND_COSTS[road.kind]
        costs.append(int(rng.integers(low, high + 1)))
    return CostModel(network, costs)
