"""Crowdsourcing substrate.

Simulates the marketplace the paper assumes (§III-A): workers announce
their current road, the platform selects crowdsourced roads, workers on
those roads report their measured travel speed, each answer is paid one
unit, and multiple answers per road are aggregated (a road's *cost* is
the minimum number of answers it requires).
"""

from repro.crowd.workers import Worker, WorkerPool
from repro.crowd.cost import CostModel, kind_based_costs, uniform_random_costs
from repro.crowd.aggregation import Aggregator, aggregate_answers
from repro.crowd.market import BudgetLedger, CrowdMarket, ProbeReceipt
from repro.crowd.mobility import MobilityModel, stationary_coverage_estimate
from repro.crowd.trajectory_probe import TrajectoryProbeCollector
from repro.crowd.reliability import (
    collect_answer_history,
    estimate_costs_from_answers,
    estimate_worker_noise,
    required_answers,
)

__all__ = [
    "collect_answer_history",
    "estimate_costs_from_answers",
    "estimate_worker_noise",
    "required_answers",
    "MobilityModel",
    "stationary_coverage_estimate",
    "TrajectoryProbeCollector",
    "Worker",
    "WorkerPool",
    "CostModel",
    "kind_based_costs",
    "uniform_random_costs",
    "Aggregator",
    "aggregate_answers",
    "BudgetLedger",
    "CrowdMarket",
    "ProbeReceipt",
]
