"""Data-driven road costs and worker reliability estimation.

The paper defines a road's *cost* as the minimum number of answers
needed for a reliable aggregate and notes that "many existing approaches
(e.g. [28], [29]) can be adopted to determine the cost of each road,
which estimate the exact value from the historical answers of crowd"
(§V-A).  This module implements that estimation pipeline:

* :func:`estimate_worker_noise` — per-worker relative measurement noise
  from historical (answer, truth) pairs;
* :func:`required_answers` — how many answers must be averaged so the
  aggregate's relative standard error drops below a target;
* :func:`estimate_costs_from_answers` — a :class:`CostModel` derived
  from each road's historical answer dispersion, replacing the paper's
  synthetic uniform costs with the data-driven variant.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import CrowdError
from repro.crowd.cost import CostModel
from repro.network.graph import TrafficNetwork


def estimate_worker_noise(
    answers: Sequence[float],
    truths: Sequence[float],
) -> float:
    """Relative noise (std of answer/truth − 1) of one worker.

    Args:
        answers: The worker's historical answers.
        truths: Matching ground truths (e.g. from loop detectors used
            for calibration).

    Returns:
        The estimated relative noise standard deviation.

    Raises:
        CrowdError: On empty or mismatched inputs, or non-positive
            truths.
    """
    answer_arr = np.asarray(list(answers), dtype=np.float64)
    truth_arr = np.asarray(list(truths), dtype=np.float64)
    if answer_arr.size == 0 or answer_arr.shape != truth_arr.shape:
        raise CrowdError(
            f"need matching non-empty answers/truths, got "
            f"{answer_arr.shape} vs {truth_arr.shape}"
        )
    if np.any(truth_arr <= 0):
        raise CrowdError("truths must be positive speeds")
    ratios = answer_arr / truth_arr - 1.0
    if ratios.size == 1:
        return float(abs(ratios[0]))
    return float(ratios.std(ddof=1))


def required_answers(
    answer_noise: float,
    target_relative_error: float = 0.05,
    max_answers: int = 10,
) -> int:
    """Answers needed so the mean's relative standard error ≤ target.

    Averaging ``n`` independent answers with relative noise ``s`` gives
    standard error ``s / sqrt(n)``; solve for the smallest ``n``.

    Args:
        answer_noise: Relative std dev of one answer.
        target_relative_error: Acceptable relative standard error of the
            aggregate.
        max_answers: Cap (a road never costs more than this).

    Returns:
        The road cost: an integer in ``1..max_answers``.
    """
    if answer_noise < 0:
        raise CrowdError("answer_noise must be >= 0")
    if target_relative_error <= 0:
        raise CrowdError("target_relative_error must be positive")
    if max_answers < 1:
        raise CrowdError("max_answers must be >= 1")
    if answer_noise == 0:
        return 1
    needed = math.ceil((answer_noise / target_relative_error) ** 2)
    return int(min(max(needed, 1), max_answers))


def estimate_costs_from_answers(
    network: TrafficNetwork,
    historical_answers: Mapping[int, Sequence[float]],
    historical_truths: Mapping[int, float],
    target_relative_error: float = 0.05,
    max_answers: int = 10,
    default_cost: int = 5,
) -> CostModel:
    """Build a :class:`CostModel` from historical crowd answers.

    For every road with history, the per-answer relative noise is
    estimated from the dispersion of its answers around the recorded
    truth, then converted to a minimum answer count.  Roads with no
    history get ``default_cost`` — the conservative choice for unknown
    roads.

    Args:
        network: Road graph.
        historical_answers: road index → past raw answers for that road.
        historical_truths: road index → the true speed those answers
            measured.
        target_relative_error: Aggregate accuracy target.
        max_answers: Cost cap.
        default_cost: Cost assigned to roads without history.

    Returns:
        The data-driven :class:`CostModel`.
    """
    if not 1 <= default_cost <= max_answers:
        raise CrowdError("default_cost must be within 1..max_answers")
    costs = np.full(network.n_roads, default_cost, dtype=np.int64)
    for road, answers in historical_answers.items():
        road = int(road)
        if not 0 <= road < network.n_roads:
            raise CrowdError(f"road {road} outside the network")
        if road not in historical_truths:
            raise CrowdError(f"no recorded truth for road {road}")
        truth = float(historical_truths[road])
        noise = estimate_worker_noise(answers, [truth] * len(list(answers)))
        costs[road] = required_answers(noise, target_relative_error, max_answers)
    return CostModel(network, costs)


def collect_answer_history(
    receipts: Iterable,
) -> Tuple[Dict[int, List[float]], Dict[int, float]]:
    """Turn probe receipts into the history maps the estimator consumes.

    Args:
        receipts: :class:`~repro.crowd.market.ProbeReceipt` records from
            past crowdsourcing rounds.

    Returns:
        ``(answers_by_road, truth_by_road)``; multiple receipts for one
        road concatenate their answers and keep the latest truth.
    """
    answers: Dict[int, List[float]] = {}
    truths: Dict[int, float] = {}
    for receipt in receipts:
        answers.setdefault(receipt.road_index, []).extend(receipt.answers)
        truths[receipt.road_index] = receipt.true_kmh
    return answers, truths
