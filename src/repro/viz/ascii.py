"""ASCII renderings of speed fields and solver diagnostics.

Dashboards and notebooks want a quick visual; this repo has no plotting
dependency, so these helpers draw with Unicode block characters.  All
functions return strings (never print), so they are easy to test and to
embed in logs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.network.graph import TrafficNetwork

#: Shade ramp from free-flow (light) to jammed (dark).
_SHADES = " ░▒▓█"

#: Sparkline bars, low to high.
_BARS = "▁▂▃▄▅▆▇█"


def _to_array(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ExperimentError(f"{name} must not be empty")
    if np.any(~np.isfinite(arr)):
        raise ExperimentError(f"{name} contains NaN or infinity")
    return arr


def congestion_strip(
    speeds_kmh: Sequence[float],
    free_flow_kmh: Sequence[float],
    width: Optional[int] = None,
) -> str:
    """One-line congestion strip: dark cells are congested roads.

    Each road's congestion is ``1 - speed / free_flow`` clipped to
    [0, 1]; roads are rendered in index order, optionally downsampled to
    ``width`` cells (max congestion per bucket, so jams never average
    away).

    Args:
        speeds_kmh: Current speed per road.
        free_flow_kmh: Free-flow speed per road.
        width: Output cells; default one per road.
    """
    speeds = _to_array(speeds_kmh, "speeds_kmh")
    free = _to_array(free_flow_kmh, "free_flow_kmh")
    if speeds.shape != free.shape:
        raise ExperimentError("speeds and free-flow arrays must align")
    if np.any(free <= 0):
        raise ExperimentError("free-flow speeds must be positive")
    congestion = np.clip(1.0 - speeds / free, 0.0, 1.0)
    if width is not None:
        if width <= 0:
            raise ExperimentError("width must be positive")
        buckets = np.array_split(congestion, min(width, congestion.size))
        congestion = np.array([b.max() for b in buckets])
    cells = (congestion * (len(_SHADES) - 1)).round().astype(int)
    return "".join(_SHADES[c] for c in cells)


def convergence_sparkline(history: Sequence[float]) -> str:
    """Sparkline of a solver's per-iteration residuals (log scale).

    Useful for :class:`~repro.core.gsp.GSPResult.max_delta_history` and
    :class:`~repro.core.inference.InferenceDiagnostics.grad_mu_history`.
    """
    values = _to_array(history, "history")
    values = np.maximum(values, 1e-12)
    logs = np.log10(values)
    lo, hi = logs.min(), logs.max()
    if hi - lo < 1e-12:
        return _BARS[0] * values.size
    scaled = (logs - lo) / (hi - lo)
    cells = (scaled * (len(_BARS) - 1)).round().astype(int)
    return "".join(_BARS[c] for c in cells)


def speed_histogram(
    speeds_kmh: Sequence[float],
    n_bins: int = 8,
    bar_width: int = 30,
) -> str:
    """Horizontal histogram of a speed field.

    Args:
        speeds_kmh: Speeds to bin.
        n_bins: Number of equal-width bins.
        bar_width: Characters of the longest bar.
    """
    speeds = _to_array(speeds_kmh, "speeds_kmh")
    if n_bins <= 0 or bar_width <= 0:
        raise ExperimentError("n_bins and bar_width must be positive")
    counts, edges = np.histogram(speeds, bins=n_bins)
    top = max(int(counts.max()), 1)
    lines = []
    for k in range(n_bins):
        bar = "█" * int(round(bar_width * counts[k] / top))
        lines.append(
            f"{edges[k]:6.1f}-{edges[k + 1]:6.1f} km/h |{bar:<{bar_width}}| {counts[k]}"
        )
    return "\n".join(lines)


def render_speed_table(
    network: TrafficNetwork,
    speeds_kmh: Sequence[float],
    reference_kmh: Optional[Sequence[float]] = None,
    limit: int = 20,
    slowest_first: bool = True,
) -> str:
    """Tabular view of the most congested roads.

    Args:
        network: Road graph (for ids and free-flow speeds).
        speeds_kmh: Current estimated speed per road.
        reference_kmh: Optional reference column (e.g. periodic means).
        limit: Rows to show.
        slowest_first: Order by congestion (default) or by road index.
    """
    speeds = _to_array(speeds_kmh, "speeds_kmh")
    if speeds.shape != (network.n_roads,):
        raise ExperimentError(
            f"speeds must have shape ({network.n_roads},), got {speeds.shape}"
        )
    reference = (
        _to_array(reference_kmh, "reference_kmh") if reference_kmh is not None else None
    )
    free = np.array([road.free_flow_kmh for road in network.roads])
    congestion = np.clip(1.0 - speeds / free, 0.0, 1.0)
    order = np.argsort(-congestion) if slowest_first else np.arange(network.n_roads)
    header = "road        speed  free   congestion"
    if reference is not None:
        header += "  reference"
    lines = [header]
    for i in order[: max(1, limit)]:
        bar = _SHADES[int(round(congestion[i] * (len(_SHADES) - 1)))]
        line = (
            f"{network.roads[int(i)].road_id:<10} {speeds[int(i)]:6.1f} "
            f"{free[int(i)]:6.1f}   {congestion[int(i)]:.0%} {bar}"
        )
        if reference is not None:
            line += f"    {reference[int(i)]:6.1f}"
        lines.append(line)
    return "\n".join(lines)
