"""Terminal visualization helpers (no plotting dependencies)."""

from repro.viz.ascii import (
    congestion_strip,
    convergence_sparkline,
    render_speed_table,
    speed_histogram,
)

__all__ = [
    "congestion_strip",
    "convergence_sparkline",
    "render_speed_table",
    "speed_histogram",
]
