"""Common estimator interface.

All realtime-speed estimators — GSP and every baseline — consume the
same :class:`EstimationContext`: the query-slot history (used as
training data), the crowdsourced probes, and optionally the fitted RTF
slot parameters.  They return a full per-road speed field.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.errors import ModelError
from repro.core.rtf import RTFSlot
from repro.network.graph import TrafficNetwork


@dataclass(frozen=True)
class EstimationContext:
    """Everything an estimator may use for one query.

    Attributes:
        network: Road graph.
        history_samples: Per-day speeds of the query slot, shape
            ``(n_days, n_roads)`` — the offline training data.
        probes: Aggregated crowd answers, road index → km/h.
        slot_params: Fitted RTF parameters of the slot (``None`` for
            estimators that do not use the model).
    """

    network: TrafficNetwork
    history_samples: np.ndarray
    probes: Mapping[int, float]
    slot_params: Optional[RTFSlot] = None

    def __post_init__(self) -> None:
        samples = np.asarray(self.history_samples, dtype=np.float64)
        if samples.ndim != 2 or samples.shape[1] != self.network.n_roads:
            raise ModelError(
                f"history_samples must have shape (n_days, {self.network.n_roads}), "
                f"got {samples.shape}"
            )
        for road, value in self.probes.items():
            if not 0 <= int(road) < self.network.n_roads:
                raise ModelError(f"probe road {road} outside the network")
            if value <= 0 or not np.isfinite(value):
                raise ModelError(f"probe value {value} for road {road} is invalid")

    @property
    def n_roads(self) -> int:
        """Number of roads in the network."""
        return self.network.n_roads

    @property
    def observed_indices(self) -> np.ndarray:
        """Probed road indices, sorted."""
        return np.array(sorted(int(r) for r in self.probes), dtype=int)

    @property
    def observed_values(self) -> np.ndarray:
        """Probe values aligned with :attr:`observed_indices`."""
        return np.array(
            [float(self.probes[int(r)]) for r in self.observed_indices]
        )


class BaseEstimator(abc.ABC):
    """A realtime traffic-speed estimator."""

    #: Short name used in experiment tables ("GSP", "LASSO", ...).
    name: str = "base"

    @abc.abstractmethod
    def estimate(self, context: EstimationContext) -> np.ndarray:
        """Estimate the full per-road speed field for one query.

        Args:
            context: History, probes, and optional RTF parameters.

        Returns:
            Array of shape ``(n_roads,)`` in km/h.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
