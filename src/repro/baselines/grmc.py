"""Graph-Regularized Matrix Completion (GRMC) baseline.

Implements the paper's GRMC baseline ([33], [16]): stack the historical
slot samples and the current partially-observed snapshot into a matrix
``Y`` (rows = days, columns = roads), factorize ``Y ≈ U V^T`` with a
low latent dimension, and regularize the road factors ``V`` with the
graph Laplacian so adjacent roads get similar factors:

.. math::

    \\min_{U, V} \\; \\lVert P_\\Omega(Y - U V^\\top) \\rVert_F^2
        + \\lambda (\\lVert U \\rVert_F^2 + \\lVert V \\rVert_F^2)
        + \\gamma \\, \\mathrm{tr}(V^\\top L V)

solved by alternating least squares; the ``V`` subproblem is coupled
across roads by ``L`` and is handled with block Gauss–Seidel sweeps.
The completed last row is the estimate; probed roads keep their probes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import ModelError
from repro.baselines.base import BaseEstimator, EstimationContext
from repro.network.graph import TrafficNetwork


def graph_laplacian(network: TrafficNetwork) -> sp.csr_matrix:
    """Unnormalized graph Laplacian ``L = D - A`` of the road graph."""
    n = network.n_roads
    if not network.edges:
        return sp.csr_matrix((n, n))
    ei, ej = np.array(network.edges).T
    rows = np.concatenate([ei, ej])
    cols = np.concatenate([ej, ei])
    data = -np.ones(rows.shape[0])
    adjacency = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    degrees = -np.asarray(adjacency.sum(axis=1)).ravel()
    return sp.diags(degrees) + adjacency


class GRMCEstimator(BaseEstimator):
    """ALS-based graph-regularized matrix completion.

    Args:
        rank: Latent dimension (paper tunes 5–20; best 10).
        reg: Frobenius regularization λ (paper's L1-ish reg, best 0.1).
        gamma: Graph-smoothness weight γ.
        n_iterations: ALS rounds.
        v_sweeps: Gauss–Seidel sweeps inside each V update.
        seed: RNG seed for factor initialization.
    """

    name = "GRMC"

    def __init__(
        self,
        rank: int = 10,
        reg: float = 0.1,
        gamma: float = 0.1,
        n_iterations: int = 15,
        v_sweeps: int = 2,
        seed: Optional[int] = 7,
    ) -> None:
        if rank <= 0:
            raise ModelError(f"rank must be positive, got {rank}")
        if reg < 0 or gamma < 0:
            raise ModelError("reg and gamma must be >= 0")
        if n_iterations <= 0 or v_sweeps <= 0:
            raise ModelError("iteration counts must be positive")
        self._rank = rank
        self._reg = reg
        self._gamma = gamma
        self._n_iterations = n_iterations
        self._v_sweeps = v_sweeps
        self._seed = seed

    def estimate(self, context: EstimationContext) -> np.ndarray:
        samples = np.asarray(context.history_samples, dtype=np.float64)
        n_days, n_roads = samples.shape
        observed = context.observed_indices

        # Build the stacked matrix: history rows are fully observed, the
        # final (current) row only at the probed roads.
        current = np.zeros(n_roads)
        mask_current = np.zeros(n_roads, dtype=bool)
        if observed.size:
            current[observed] = context.observed_values
            mask_current[observed] = True
        matrix = np.vstack([samples, current[None, :]])
        mask = np.vstack(
            [np.ones((n_days, n_roads), dtype=bool), mask_current[None, :]]
        )

        # Column-centre with the history mean so the factors model the
        # fluctuation around the periodic level (improves low-rank fit).
        column_mean = samples.mean(axis=0)
        matrix = matrix - column_mean[None, :]

        completed = self._complete(matrix, mask, context.network)
        estimates = completed[-1] + column_mean
        if observed.size:
            estimates[observed] = context.observed_values
        return np.maximum(estimates, 0.5)

    def _complete(
        self, matrix: np.ndarray, mask: np.ndarray, network: TrafficNetwork
    ) -> np.ndarray:
        m, n = matrix.shape
        k = min(self._rank, m, n)
        rng = np.random.default_rng(self._seed)
        factors_u = rng.normal(scale=0.1, size=(m, k))
        factors_v = rng.normal(scale=0.1, size=(n, k))
        laplacian = graph_laplacian(network).tocsr()
        eye_k = np.eye(k)

        for _ in range(self._n_iterations):
            # --- U update: rows are independent.
            for i in range(m):
                cols = np.nonzero(mask[i])[0]
                if cols.size == 0:
                    factors_u[i] = 0.0
                    continue
                v_obs = factors_v[cols]
                lhs = v_obs.T @ v_obs + self._reg * eye_k
                rhs = v_obs.T @ matrix[i, cols]
                factors_u[i] = np.linalg.solve(lhs, rhs)
            # --- V update: Laplacian couples the rows; Gauss-Seidel.
            for _ in range(self._v_sweeps):
                for j in range(n):
                    rows = np.nonzero(mask[:, j])[0]
                    start, end = laplacian.indptr[j], laplacian.indptr[j + 1]
                    neighbor_cols = laplacian.indices[start:end]
                    neighbor_vals = laplacian.data[start:end]
                    diag = 0.0
                    coupling = np.zeros(k)
                    for col, val in zip(neighbor_cols, neighbor_vals):
                        if col == j:
                            diag = val
                        else:
                            coupling += val * factors_v[col]
                    lhs = self._reg * eye_k + self._gamma * diag * eye_k
                    rhs = -self._gamma * coupling
                    if rows.size:
                        u_obs = factors_u[rows]
                        lhs = lhs + u_obs.T @ u_obs
                        rhs = rhs + u_obs.T @ matrix[rows, j]
                    factors_v[j] = np.linalg.solve(lhs, rhs)
        return factors_u @ factors_v.T
