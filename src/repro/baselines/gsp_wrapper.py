"""GSP exposed through the common estimator interface.

Lets experiment harnesses iterate over ``[GSP, LASSO, GRMC, Per]``
uniformly (paper Fig. 3/6 compare exactly these four).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaseEstimator, EstimationContext
from repro.core.gsp import GSPConfig, propagate
from repro.core.inference import empirical_slot_parameters


class GSPEstimator(BaseEstimator):
    """The paper's Graph-based Speed Propagation as an estimator.

    Uses the context's fitted RTF slot parameters when present; when
    absent, falls back to closed-form empirical parameters derived from
    the context history (so the estimator is usable standalone).
    """

    name = "GSP"

    def __init__(self, config: Optional[GSPConfig] = None) -> None:
        self._config = config or GSPConfig()

    def estimate(self, context: EstimationContext) -> np.ndarray:
        params = context.slot_params
        if params is None:
            params = empirical_slot_parameters(
                context.network,
                np.asarray(context.history_samples, dtype=np.float64),
                slot=0,
            )
        result = propagate(
            context.network, params, dict(context.probes), self._config
        )
        return result.speeds
