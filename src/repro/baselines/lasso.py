"""LASSO regression baseline, solved from scratch.

The paper's LASSO baseline ([32]) regresses each road's realtime speed
on the speeds of the probed roads, with parameters learnt from the
historical record of the query slot.  Because the probed set changes per
query (crowdsourcing!), the fit happens at query time; the Gram matrix
of the probe columns is shared across all target roads, so one query
costs one ``O(S p^2)`` Gram build plus ``n`` cheap coordinate-descent
solves (``p = |R^c|`` probes, ``S`` history days).

No external ML library is used: :func:`lasso_coordinate_descent` is a
standard cyclic coordinate descent on the objective

.. math::

    \\frac{1}{2S} \\lVert y - X\\beta \\rVert_2^2
    + \\alpha \\lVert \\beta \\rVert_1 .
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.baselines.base import BaseEstimator, EstimationContext


def _soft_threshold(value: float, threshold: float) -> float:
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


def lasso_coordinate_descent(
    gram: np.ndarray,
    corr: np.ndarray,
    alpha: float,
    max_iter: int = 300,
    tol: float = 1e-6,
) -> np.ndarray:
    """Cyclic coordinate descent on the lasso normal equations.

    Works on precomputed sufficient statistics so many targets can share
    one Gram matrix.

    Args:
        gram: ``X^T X / S`` of the (centred) design, shape ``(p, p)``.
        corr: ``X^T y / S`` of the (centred) target, shape ``(p,)``.
        alpha: L1 penalty weight (>= 0).
        max_iter: Sweep cap.
        tol: Stop when the largest coefficient change in a sweep is
            below this.

    Returns:
        Coefficient vector ``beta`` of shape ``(p,)``.
    """
    if alpha < 0:
        raise ModelError(f"alpha must be >= 0, got {alpha}")
    p = gram.shape[0]
    if gram.shape != (p, p) or corr.shape != (p,):
        raise ModelError(
            f"inconsistent shapes: gram {gram.shape}, corr {corr.shape}"
        )
    beta = np.zeros(p)
    gram_beta = np.zeros(p)  # gram @ beta, maintained incrementally
    diag = np.diag(gram).copy()
    # Degenerate columns (zero variance) keep beta = 0.
    active = diag > 1e-12
    for _ in range(max_iter):
        max_change = 0.0
        for j in range(p):
            if not active[j]:
                continue
            residual_corr = corr[j] - gram_beta[j] + diag[j] * beta[j]
            new_beta = _soft_threshold(float(residual_corr), alpha) / diag[j]
            change = new_beta - beta[j]
            if change != 0.0:
                gram_beta += gram[:, j] * change
                beta[j] = new_beta
                max_change = max(max_change, abs(change))
        if max_change < tol:
            break
    return beta


def lasso_coordinate_descent_multi(
    gram: np.ndarray,
    corr: np.ndarray,
    alpha: float,
    max_iter: int = 300,
    tol: float = 1e-6,
    warm_start: bool = False,
) -> np.ndarray:
    """Coordinate descent for many targets sharing one design matrix.

    Equivalent to calling :func:`lasso_coordinate_descent` once per
    column of ``corr`` but vectorized across targets, which is what the
    LASSO baseline needs (one lasso per road, all regressed on the same
    probe columns).

    Args:
        gram: ``X^T X / S``, shape ``(p, p)``.
        corr: ``X^T Y / S``, shape ``(p, n_targets)``.
        alpha: L1 penalty weight.
        max_iter: Sweep cap.
        tol: Stop when every coefficient change in a sweep is below
            this.
        warm_start: Initialize from the ridge solution
            ``(gram + alpha I)^{-1} corr`` — one linear solve — so CD
            only polishes the L1 geometry.  This is what keeps the
            LASSO baseline's query-time cost near "one step of matrix
            multiplication" (paper Fig. 4b).

    Returns:
        Coefficient matrix of shape ``(p, n_targets)``.
    """
    if alpha < 0:
        raise ModelError(f"alpha must be >= 0, got {alpha}")
    p = gram.shape[0]
    if gram.shape != (p, p) or corr.ndim != 2 or corr.shape[0] != p:
        raise ModelError(
            f"inconsistent shapes: gram {gram.shape}, corr {corr.shape}"
        )
    n_targets = corr.shape[1]
    if warm_start and p:
        ridge = gram + max(alpha, 1e-8) * np.eye(p)
        beta = np.linalg.solve(ridge, corr)
        gram_beta = gram @ beta
    else:
        beta = np.zeros((p, n_targets))
        gram_beta = np.zeros((p, n_targets))
    diag = np.diag(gram).copy()
    active = diag > 1e-12
    for _ in range(max_iter):
        max_change = 0.0
        for j in range(p):
            if not active[j]:
                continue
            residual_corr = corr[j] - gram_beta[j] + diag[j] * beta[j]
            new_beta = (
                np.sign(residual_corr)
                * np.maximum(np.abs(residual_corr) - alpha, 0.0)
                / diag[j]
            )
            change = new_beta - beta[j]
            largest = float(np.max(np.abs(change))) if change.size else 0.0
            if largest > 0.0:
                gram_beta += np.outer(gram[:, j], change)
                beta[j] = new_beta
                max_change = max(max_change, largest)
        if max_change < tol:
            break
    return beta


@dataclass(frozen=True)
class LassoModel:
    """A fitted single-target lasso: ``y ≈ intercept + X @ coef``."""

    coef: np.ndarray
    intercept: float
    feature_means: np.ndarray

    def predict(self, features: np.ndarray) -> float:
        """Predict for one feature vector (raw, uncentred)."""
        features = np.asarray(features, dtype=np.float64)
        if features.shape != self.coef.shape:
            raise ModelError(
                f"feature shape {features.shape} != coef shape {self.coef.shape}"
            )
        return float(self.intercept + (features - self.feature_means) @ self.coef)


def fit_lasso(
    design: np.ndarray,
    target: np.ndarray,
    alpha: float,
    max_iter: int = 300,
    tol: float = 1e-6,
) -> LassoModel:
    """Fit one lasso from raw (uncentred) data."""
    design = np.asarray(design, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if design.ndim != 2 or target.ndim != 1 or design.shape[0] != target.shape[0]:
        raise ModelError(
            f"bad shapes: design {design.shape}, target {target.shape}"
        )
    n_samples = design.shape[0]
    x_mean = design.mean(axis=0)
    y_mean = float(target.mean())
    x_centered = design - x_mean
    gram = x_centered.T @ x_centered / n_samples
    corr = x_centered.T @ (target - y_mean) / n_samples
    beta = lasso_coordinate_descent(gram, corr, alpha, max_iter, tol)
    return LassoModel(coef=beta, intercept=y_mean, feature_means=x_mean)


@dataclass(frozen=True)
class LassoFieldModel:
    """A fitted multi-target lasso: probe values → full speed field.

    Unlike :class:`LassoEstimator` (which carries only hyperparameters),
    this is the *fitted state*: plain arrays, frozen and picklable, so a
    model store or estimator backend can serialize it and predict later
    without refitting.

    Attributes:
        observed: Probe column indices the model was fitted on.
        beta: Coefficient matrix, shape ``(p, n_roads)``.
        feature_means: Historical mean of each probe column.
        target_means: Historical mean speed of every road.
    """

    observed: np.ndarray
    beta: np.ndarray
    feature_means: np.ndarray
    target_means: np.ndarray

    def predict(self, probe_values: np.ndarray) -> np.ndarray:
        """Full field for probe values aligned with :attr:`observed`."""
        if self.observed.size == 0:
            return self.target_means.copy()
        probe_values = np.asarray(probe_values, dtype=np.float64)
        if probe_values.shape != self.feature_means.shape:
            raise ModelError(
                f"probe shape {probe_values.shape} != fitted shape "
                f"{self.feature_means.shape}"
            )
        field = self.target_means + (probe_values - self.feature_means) @ self.beta
        field[self.observed] = probe_values
        # Speeds cannot be negative; clip to a small positive floor.
        return np.maximum(field, 0.5)


def fit_lasso_field(
    samples: np.ndarray,
    observed: np.ndarray,
    alpha: float,
    max_iter: int = 60,
    tol: float = 1e-5,
    warm_start: bool = True,
) -> LassoFieldModel:
    """Fit one lasso per road on the probed columns of the history.

    All targets share the probe design, so they are solved jointly with
    the multi-target coordinate descent (one Gram build total).
    """
    samples = np.asarray(samples, dtype=np.float64)
    observed = np.asarray(observed, dtype=int)
    y_means = samples.mean(axis=0)
    if observed.size == 0:
        return LassoFieldModel(
            observed=observed,
            beta=np.zeros((0, samples.shape[1])),
            feature_means=np.zeros(0),
            target_means=y_means,
        )
    n_samples = samples.shape[0]
    design = samples[:, observed]
    x_mean = design.mean(axis=0)
    x_centered = design - x_mean
    gram = x_centered.T @ x_centered / n_samples
    corr = x_centered.T @ (samples - y_means[None, :]) / n_samples
    beta = lasso_coordinate_descent_multi(
        gram, corr, alpha, max_iter, tol, warm_start=warm_start
    )
    return LassoFieldModel(
        observed=observed,
        beta=beta,
        feature_means=x_mean,
        target_means=y_means,
    )


class LassoEstimator(BaseEstimator):
    """Per-road lasso on the probed roads (the paper's LASSO baseline).

    The estimator carries hyperparameters only; each query fits a
    :class:`LassoFieldModel` (the serializable state) via
    :func:`fit_lasso_field` and predicts from it.

    Args:
        alpha: L1 penalty; the paper tunes within 0–0.5 and settles on
            0.1.
        max_iter: Coordinate-descent sweep cap per target.
        tol: Coordinate-descent convergence tolerance.
    """

    name = "LASSO"

    def __init__(
        self,
        alpha: float = 0.1,
        max_iter: int = 60,
        tol: float = 1e-5,
        warm_start: bool = True,
    ) -> None:
        if alpha < 0:
            raise ModelError(f"alpha must be >= 0, got {alpha}")
        self._alpha = alpha
        self._max_iter = max_iter
        self._tol = tol
        self._warm_start = warm_start

    def fit_field(self, context: EstimationContext) -> LassoFieldModel:
        """The fitted (picklable) field model for one query's probes."""
        return fit_lasso_field(
            np.asarray(context.history_samples, dtype=np.float64),
            context.observed_indices,
            self._alpha,
            self._max_iter,
            self._tol,
            warm_start=self._warm_start,
        )

    def estimate(self, context: EstimationContext) -> np.ndarray:
        return self.fit_field(context).predict(context.observed_values)
