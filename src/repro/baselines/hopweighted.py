"""Hop-distance-weighted probe interpolation (extra baseline).

Not in the paper; used by the ablation benches as a model-free
reference: every non-probed road blends the historical mean with the
nearest probes, weighted by ``decay^hops``.  It isolates how much of
GSP's advantage comes from the RTF statistics versus mere proximity to
the probes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.baselines.base import BaseEstimator, EstimationContext


class HopWeightedEstimator(BaseEstimator):
    """Distance-decay interpolation of the probes."""

    name = "HopW"

    def __init__(self, decay: float = 0.5, max_hops: int = 4) -> None:
        """Args:
            decay: Per-hop weight multiplier in (0, 1).
            max_hops: Probes farther than this have no influence.
        """
        if not 0.0 < decay < 1.0:
            raise ModelError(f"decay must be in (0, 1), got {decay}")
        if max_hops < 1:
            raise ModelError(f"max_hops must be >= 1, got {max_hops}")
        self._decay = decay
        self._max_hops = max_hops

    def estimate(self, context: EstimationContext) -> np.ndarray:
        samples = np.asarray(context.history_samples, dtype=np.float64)
        baseline = samples.mean(axis=0)
        observed = context.observed_indices
        if observed.size == 0:
            return baseline
        estimates = baseline.copy()
        network = context.network

        # For every probe, its *deviation from its own historical mean*
        # is what propagates: nearby roads likely deviate similarly.
        for road, value in context.probes.items():
            road = int(road)
            estimates[road] = float(value)

        deviation_num = np.zeros(context.n_roads)
        deviation_den = np.zeros(context.n_roads)
        for road, value in context.probes.items():
            road = int(road)
            probe_dev = float(value) - baseline[road]
            distances = network.hop_distances([road])
            for other, hops in enumerate(distances):
                if hops is None or hops == 0 or hops > self._max_hops:
                    continue
                weight = self._decay**hops
                deviation_num[other] += weight * probe_dev
                deviation_den[other] += weight
        blend = deviation_den > 0
        estimates[blend] = baseline[blend] + deviation_num[blend] / (
            deviation_den[blend] + 1.0
        )
        for road, value in context.probes.items():
            estimates[int(road)] = float(value)
        return np.maximum(estimates, 0.5)
