"""The "Per" baseline: purely periodic estimation.

Returns the per-road historical mean of the query slot (or the fitted
RTF mean when available), ignoring the crowdsourced probes entirely —
exactly the paper's Per, which "purely relies on the periodicity"
(§VII-C).  It is the strongest possible method when days repeat
perfectly and the weakest when incidents strike.

:func:`periodic_field` is the same computation as a standalone function
over fitted slot parameters; the serving layer's graceful-degradation
path calls it directly when a deadline or budget forces a query to fall
back to Per (see :mod:`repro.serve`).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseEstimator, EstimationContext
from repro.core.rtf import RTFSlot


def periodic_field(slot_params: RTFSlot) -> np.ndarray:
    """The Per estimate from fitted slot parameters: a copy of μ.

    One shared definition so the :class:`PeriodicEstimator` baseline and
    the serving layer's degraded fallback provably return the same
    numbers (tests assert the equivalence).
    """
    return slot_params.mu.astype(np.float64).copy()


class PeriodicEstimator(BaseEstimator):
    """Historical periodic mean, no realtime data."""

    name = "Per"

    def __init__(self, use_model_mu: bool = True) -> None:
        """Args:
            use_model_mu: Prefer the fitted RTF ``mu`` when the context
                carries slot parameters; otherwise (or when False) fall
                back to the raw history mean.
        """
        self._use_model_mu = use_model_mu

    def estimate(self, context: EstimationContext) -> np.ndarray:
        if self._use_model_mu and context.slot_params is not None:
            return periodic_field(context.slot_params)
        return np.asarray(context.history_samples, dtype=np.float64).mean(axis=0)
