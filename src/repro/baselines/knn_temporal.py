"""Temporal k-NN baseline: estimate from the most similar historical days.

A classic data-driven estimator from the traffic literature (not in the
paper's comparison, added for the ablation benches): find the ``k``
historical days whose speeds on the *probed* roads best match today's
probes, and answer with their (inverse-distance weighted) average.  It
uses the probes and the history but neither the graph structure nor a
model — isolating how much RTF's structure adds over pure analogy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.baselines.base import BaseEstimator, EstimationContext


class TemporalKNNEstimator(BaseEstimator):
    """k-nearest historical days, matched on the probed roads.

    Args:
        k: Neighbours to average (clamped to the history size).
        epsilon: Distance floor for the inverse-distance weights.
    """

    name = "kNN"

    def __init__(self, k: int = 5, epsilon: float = 1e-6) -> None:
        if k < 1:
            raise ModelError(f"k must be >= 1, got {k}")
        if epsilon <= 0:
            raise ModelError(f"epsilon must be positive, got {epsilon}")
        self._k = k
        self._epsilon = epsilon

    def estimate(self, context: EstimationContext) -> np.ndarray:
        samples = np.asarray(context.history_samples, dtype=np.float64)
        observed = context.observed_indices
        if observed.size == 0:
            return samples.mean(axis=0)
        probe_vector = context.observed_values
        # Distance of each historical day to today's probe pattern,
        # normalized per road so fast roads don't dominate.
        scale = np.maximum(samples[:, observed].std(axis=0), 1e-6)
        diffs = (samples[:, observed] - probe_vector[None, :]) / scale[None, :]
        distances = np.sqrt((diffs * diffs).mean(axis=1))
        k = min(self._k, samples.shape[0])
        nearest = np.argsort(distances)[:k]
        weights = 1.0 / (distances[nearest] + self._epsilon)
        weights /= weights.sum()
        estimates = weights @ samples[nearest]
        for road, value in context.probes.items():
            estimates[int(road)] = float(value)
        return np.maximum(estimates, 0.5)
