"""Baseline estimators the paper compares against (§VII-C).

* :class:`PeriodicEstimator` ("Per") — historical periodic means only.
* :class:`LassoEstimator` ("LASSO") — per-road L1 regression on the
  probed roads, solved with our own coordinate-descent lasso.
* :class:`GRMCEstimator` ("GRMC") — graph-regularized matrix completion
  via alternating least squares with a Laplacian smoothness term.
* :class:`GSPEstimator` — the paper's method wrapped in the same
  interface, so harnesses can iterate over all estimators uniformly.
* :class:`HopWeightedEstimator` — an extra distance-decay baseline used
  by the ablation benches (not in the paper).
"""

from repro.baselines.base import BaseEstimator, EstimationContext
from repro.baselines.periodic import PeriodicEstimator, periodic_field
from repro.baselines.lasso import (
    LassoEstimator,
    LassoFieldModel,
    LassoModel,
    fit_lasso,
    fit_lasso_field,
    lasso_coordinate_descent,
    lasso_coordinate_descent_multi,
)
from repro.baselines.grmc import GRMCEstimator, graph_laplacian
from repro.baselines.gsp_wrapper import GSPEstimator
from repro.baselines.hopweighted import HopWeightedEstimator
from repro.baselines.knn_temporal import TemporalKNNEstimator

__all__ = [
    "TemporalKNNEstimator",
    "BaseEstimator",
    "EstimationContext",
    "PeriodicEstimator",
    "periodic_field",
    "LassoEstimator",
    "LassoFieldModel",
    "LassoModel",
    "fit_lasso",
    "fit_lasso_field",
    "lasso_coordinate_descent",
    "lasso_coordinate_descent_multi",
    "GRMCEstimator",
    "graph_laplacian",
    "GSPEstimator",
    "HopWeightedEstimator",
]
