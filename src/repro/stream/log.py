"""Per-(day, slot, road) observation log with watermark semantics.

Overlapping feed snapshots repeat messages, arrive out of order, and
straggle past the slot they describe.  :class:`ObservationLog` is the
merge/dedup core that turns that mess into deterministic per-slot
observations:

* **Dedup** — messages are keyed by ``msg_id`` within their
  ``(day, slot, road)`` bucket, so re-ingesting an overlapping snapshot
  is a no-op (idempotent merge).
* **Order-insensitivity** — the aggregate of a bucket is the mean of
  its readings *in sorted msg-id order*, so any permutation of the same
  message set yields bit-identical observations (float summation order
  is fixed at read time, not insertion time).
* **Watermark** — the high-water mark of every event timestamp seen.
  A slot *closes* once the watermark passes its end by the lateness
  horizon; messages for closed slots are counted under
  ``stream.dropped{reason="late"}`` and dropped.  Closing is a pure
  function of the watermark, so which messages are late depends only on
  event time, never on wall clock (RA006) or arrival order *within* the
  horizon.

The log is thread-safe: the feed thread ingests while the refresher's
publisher thread reads the watermark for event-time lag accounting.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.errors import StreamError
from repro.obs import DEFAULT_SIZE_BUCKETS, get_metrics
from repro.stream.messages import ProbeMessage, slot_end_ts

#: One slot of one replay day: ``(day, slot)``.
SlotKey = Tuple[int, int]


@dataclass(frozen=True)
class IngestResult:
    """Per-batch accounting returned by :meth:`ObservationLog.ingest`."""

    accepted: int
    duplicates: int
    late: int

    @property
    def total(self) -> int:
        """Messages considered in the batch."""
        return self.accepted + self.duplicates + self.late


class ObservationLog:
    """Merges probe messages into per-slot observation aggregates.

    Args:
        n_roads: Road count; messages with out-of-range roads raise
            :class:`StreamError` (the adapter filters them, so one here
            means a producer bypassed the boundary).
        lateness_s: Event-time grace period after a slot's end during
            which stragglers are still merged.  ``math.inf`` disables
            late-dropping entirely (pure batch merge).
    """

    def __init__(self, n_roads: int, lateness_s: float = 60.0) -> None:
        if n_roads <= 0:
            raise StreamError(f"n_roads must be positive, got {n_roads}")
        if math.isnan(lateness_s) or lateness_s < 0.0:
            raise StreamError(
                f"lateness horizon must be >= 0 seconds, got {lateness_s}"
            )
        self._n_roads = n_roads
        self._lateness_s = lateness_s
        self._lock = threading.Lock()
        # (day, slot) -> road -> msg_id -> speed reading.
        self._buckets: Dict[SlotKey, Dict[int, Dict[str, float]]] = {}
        self._watermark = -math.inf
        self._accepted = 0
        self._duplicates = 0
        self._late = 0

    # -- properties ------------------------------------------------------

    @property
    def lateness_s(self) -> float:
        """The configured lateness horizon in event-time seconds."""
        return self._lateness_s

    @property
    def watermark(self) -> float:
        """High-water mark of event time; ``-inf`` before any message."""
        with self._lock:
            return self._watermark

    @property
    def accepted(self) -> int:
        """Messages merged so far (excluding duplicates and late drops)."""
        with self._lock:
            return self._accepted

    @property
    def duplicates(self) -> int:
        """Messages ignored because their ``msg_id`` was already merged."""
        with self._lock:
            return self._duplicates

    @property
    def late(self) -> int:
        """Messages dropped because their slot had already closed."""
        with self._lock:
            return self._late

    def open_slots(self) -> List[SlotKey]:
        """Keys of buckets not yet flushed, in (day, slot) order."""
        with self._lock:
            return sorted(self._buckets)

    # -- ingestion -------------------------------------------------------

    def ingest(self, messages: Iterable[ProbeMessage]) -> IngestResult:
        """Merge one batch of messages; returns the batch accounting.

        The watermark advances over every message's timestamp *before*
        its own lateness check, so a single batch is internally
        order-insensitive: lateness is decided against the watermark as
        of the previous batch, then raised once at the end.
        """
        batch = list(messages)
        metrics = get_metrics()
        accepted = duplicates = late = 0
        with self._lock:
            frontier = self._watermark
            for message in batch:
                if not 0 <= message.road < self._n_roads:
                    raise StreamError(
                        f"road index {message.road} out of range "
                        f"[0, {self._n_roads}) reached the log; the feed "
                        "adapter should have dropped it"
                    )
                if message.ts > frontier:
                    frontier = message.ts
                if self._closed_at(message.day, message.slot, self._watermark):
                    late += 1
                    continue
                bucket = self._buckets.setdefault(
                    (message.day, message.slot), {}
                ).setdefault(message.road, {})
                if message.msg_id in bucket:
                    duplicates += 1
                    continue
                bucket[message.msg_id] = message.speed_kmh
                accepted += 1
            self._watermark = frontier
            self._accepted += accepted
            self._duplicates += duplicates
            self._late += late
        if metrics.enabled:
            if accepted:
                metrics.counter("stream.messages", {"outcome": "accepted"}).inc(accepted)
            if duplicates:
                metrics.counter(
                    "stream.messages", {"outcome": "duplicate"}
                ).inc(duplicates)
            if late:
                metrics.counter("stream.dropped", {"reason": "late"}).inc(late)
            if batch:
                metrics.histogram(
                    "stream.ingest.messages", buckets=DEFAULT_SIZE_BUCKETS
                ).observe(len(batch))
            if frontier > -math.inf:
                metrics.gauge("stream.watermark_seconds").set(frontier)
        return IngestResult(accepted=accepted, duplicates=duplicates, late=late)

    # -- reading / closing ----------------------------------------------

    def observations(self, day: int, slot: int) -> Dict[int, float]:
        """Aggregated road → speed for one open slot (mean of readings).

        Readings are summed in sorted ``msg_id`` order, making the
        result invariant under ingestion order.  An unknown key yields
        an empty mapping.
        """
        with self._lock:
            bucket = self._buckets.get((day, slot), {})
            return {
                road: math.fsum(readings[m] for m in sorted(readings)) / len(readings)
                for road, readings in sorted(bucket.items())
                if readings
            }

    def closable(self) -> List[SlotKey]:
        """Open slot keys the watermark has already closed, oldest first."""
        with self._lock:
            return sorted(
                key
                for key in self._buckets
                if self._closed_at(key[0], key[1], self._watermark)
            )

    def close_slot(self, key: SlotKey) -> Dict[int, float]:
        """Pop one bucket and return its aggregated observations.

        The caller (the refresher) decides *when*: normally once
        :meth:`closable` lists the key, or unconditionally during
        end-of-stream drain.  Messages for the key arriving after the
        watermark passed it are late-dropped regardless of whether the
        bucket was already popped.

        Raises:
            StreamError: When the key holds no observations.
        """
        with self._lock:
            bucket = self._buckets.pop(key, None)
        if bucket is None:
            raise StreamError(f"slot {key} has no open observations to close")
        return {
            road: math.fsum(readings[m] for m in sorted(readings)) / len(readings)
            for road, readings in sorted(bucket.items())
            if readings
        }

    def _closed_at(self, day: int, slot: int, watermark: float) -> bool:
        # Caller holds the lock (or passes an already-read watermark).
        if math.isinf(self._lateness_s):
            return False
        return slot_end_ts(day, slot) + self._lateness_s <= watermark
