"""Streaming ingestion and continuous model refresh.

The pipeline so far refreshes nightly (``repro refresh``); this package
closes the gap to the paper's *realtime* framing by consuming a live
probe feed and republishing the model continuously:

* :mod:`repro.stream.messages` — :class:`ProbeMessage` and the
  :class:`FeedAdapter` exception boundary over raw JSONL snapshots;
* :mod:`repro.stream.log` — :class:`ObservationLog`, the
  order-insensitive merge/dedup core with watermark-based late-data
  handling;
* :mod:`repro.stream.refresher` — :class:`StreamRefresher`, bounded
  batching + backpressure between the feed and
  :meth:`ModelStore.refresh <repro.core.store.ModelStore.refresh>`;
* :mod:`repro.stream.synth` — deterministic feed synthesis from
  simulated traffic for replays, tests, and benchmarks.

Metrics live under ``stream.*`` (see docs/OBSERVABILITY.md); freshness
is event-time publish lag against the watermark, never wall clock.
"""

from repro.stream.log import IngestResult, ObservationLog, SlotKey
from repro.stream.messages import (
    DROP_REASONS,
    FeedAdapter,
    ProbeMessage,
    SLOT_SECONDS,
    slot_end_ts,
    slot_start_ts,
)
from repro.stream.refresher import StreamConfig, StreamRefresher, StreamStats
from repro.stream.synth import (
    messages_from_trajectories,
    save_feed,
    synthesize_day_feed,
)

__all__ = [
    "DROP_REASONS",
    "FeedAdapter",
    "IngestResult",
    "ObservationLog",
    "ProbeMessage",
    "SLOT_SECONDS",
    "SlotKey",
    "StreamConfig",
    "StreamRefresher",
    "StreamStats",
    "messages_from_trajectories",
    "save_feed",
    "slot_end_ts",
    "slot_start_ts",
    "synthesize_day_feed",
]
