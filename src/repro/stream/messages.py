"""Typed probe messages and the feed boundary adapter.

A crowdsourced speed feed arrives as *snapshots*: JSONL batches of
timestamped per-road speed readings, each batch overlapping the previous
one (the transit-feed pattern gtfs-tripify untangles).  Everything past
this module is typed and validated; the adapter is the only place raw
feed bytes are touched, and it never lets a raw ``KeyError`` or
``ValueError`` escape — malformed input is either *counted and dropped*
(default) or surfaced as a typed :class:`~repro.errors.FeedError`
(``strict=True``).

Event time is seconds since the replay epoch; slot boundaries follow the
paper's 5-minute grid (:data:`SLOT_SECONDS`), so global slot ``t`` of
day ``d`` spans ``[slot_start_ts(d, t), slot_end_ts(d, t))``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import FeedError, RoadNotFoundError
from repro.network.graph import TrafficNetwork
from repro.obs import get_metrics
from repro.traffic.profiles import N_SLOTS_PER_DAY

#: Seconds per time-of-day slot (the paper's 5-minute grid).
SLOT_SECONDS: float = 86400.0 / N_SLOTS_PER_DAY

#: Drop reasons the adapter can count (label values of ``stream.dropped``).
DROP_REASONS: Tuple[str, ...] = (
    "corrupt",
    "missing_field",
    "unknown_road",
    "invalid_speed",
    "invalid_slot",
    "empty_snapshot",
)

_REQUIRED_KEYS = ("road", "slot", "speed_kmh", "ts")


def slot_start_ts(day: int, slot: int) -> float:
    """Event-time start of global slot ``slot`` on replay day ``day``."""
    return (day * N_SLOTS_PER_DAY + slot) * SLOT_SECONDS


def slot_end_ts(day: int, slot: int) -> float:
    """Event-time end (exclusive) of global slot ``slot`` on ``day``."""
    return slot_start_ts(day, slot) + SLOT_SECONDS


@dataclass(frozen=True)
class ProbeMessage:
    """One validated probe/speed reading from the feed.

    Attributes:
        road: Road index in the network (already resolved from the id).
        day: Replay day the reading belongs to.
        slot: Global time-of-day slot (0 … ``N_SLOTS_PER_DAY - 1``).
        speed_kmh: Observed speed, finite and positive.
        ts: Event-time of the reading in seconds since the replay epoch.
        msg_id: Feed-unique id; the dedup key across overlapping
            snapshots.
    """

    road: int
    day: int
    slot: int
    speed_kmh: float
    ts: float
    msg_id: str

    def to_json(self) -> str:
        """The message as one JSONL feed line (round-trips the adapter)."""
        return json.dumps(
            {
                "road": self.road,
                "day": self.day,
                "slot": self.slot,
                "speed_kmh": self.speed_kmh,
                "ts": self.ts,
                "msg_id": self.msg_id,
            },
            sort_keys=True,
        )


class FeedAdapter:
    """Parses raw JSONL feed snapshots into :class:`ProbeMessage` lists.

    The adapter is the exception boundary of the stream: every malformed
    line — truncated JSON, a non-object payload, missing fields, an
    unknown road id, a non-positive or non-finite speed, a slot off the
    grid — is counted under ``stream.dropped{reason}`` (and in
    :attr:`dropped`) and skipped.  With ``strict=True`` the first bad
    line raises :class:`~repro.errors.FeedError` instead, for feeds
    where silence would hide a producer bug.

    Args:
        network: Road graph; string road ids are resolved to indices,
            integer roads are bounds-checked.
        strict: Raise :class:`FeedError` on the first malformed message
            instead of counting a drop.
    """

    def __init__(self, network: TrafficNetwork, strict: bool = False) -> None:
        self._network = network
        self._strict = strict
        self.dropped: Dict[str, int] = {reason: 0 for reason in DROP_REASONS}
        self.parsed = 0
        self.snapshots = 0

    @property
    def total_dropped(self) -> int:
        """Messages dropped so far, across all reasons."""
        return sum(self.dropped.values())

    def parse_snapshot(
        self, lines: Iterable[str], origin: str = "<feed>"
    ) -> List[ProbeMessage]:
        """Parse one snapshot's JSONL lines into validated messages.

        Blank lines and ``#`` comments are skipped (they are structure,
        not messages).  An otherwise empty snapshot counts one
        ``empty_snapshot`` drop — an upstream producer going quiet looks
        exactly like this, and it should be visible on a dashboard.

        Raises:
            FeedError: In strict mode, for the first malformed message
                or an empty snapshot.
        """
        messages: List[ProbeMessage] = []
        metrics = get_metrics()
        self.snapshots += 1
        if metrics.enabled:
            metrics.counter("stream.snapshots").inc()
        saw_content = False
        for lineno, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            saw_content = True
            where = f"{origin}:{lineno}"
            message = self._parse_line(stripped, where)
            if message is not None:
                messages.append(message)
                self.parsed += 1
        if not saw_content:
            self._drop("empty_snapshot", f"{origin}: snapshot has no messages")
        return messages

    def parse_feed_file(
        self, path: Union[str, Path]
    ) -> List[List[ProbeMessage]]:
        """Parse a feed file into its snapshots.

        The file is JSONL with ``# snapshot`` comment lines as snapshot
        delimiters (the same comment convention as the workload traces
        of :mod:`repro.serve.workload`); a file without delimiters is
        one snapshot.
        """
        path = Path(path)
        batches: List[List[str]] = [[]]
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                stripped = line.strip()
                if stripped.startswith("#"):
                    if batches[-1]:
                        batches.append([])
                    continue
                if stripped:
                    batches[-1].append(stripped)
        if not batches[-1]:
            batches.pop()
        if not batches:
            batches = [[]]
        return [
            self.parse_snapshot(batch, origin=f"{path.name}[{k}]")
            for k, batch in enumerate(batches)
        ]

    # -- internals -------------------------------------------------------

    def _parse_line(self, line: str, where: str) -> Optional[ProbeMessage]:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            return self._drop("corrupt", f"{where}: not valid JSON")
        if not isinstance(payload, dict):
            return self._drop("corrupt", f"{where}: payload is not an object")
        missing = [key for key in _REQUIRED_KEYS if key not in payload]
        if missing:
            return self._drop("missing_field", f"{where}: missing {', '.join(missing)}")
        road = self._resolve_road(payload["road"], where)
        if road is None:
            return None
        speed = self._as_float(payload["speed_kmh"])
        if speed is None or not math.isfinite(speed) or speed <= 0.0:
            return self._drop(
                "invalid_speed",
                f"{where}: speed {payload['speed_kmh']!r} is not a finite "
                "positive number",
            )
        ts = self._as_float(payload["ts"])
        if ts is None or not math.isfinite(ts):
            return self._drop("corrupt", f"{where}: ts {payload['ts']!r} is not a number")
        slot = self._as_int(payload["slot"])
        day = self._as_int(payload.get("day", 0))
        if slot is None or day is None or day < 0 or not 0 <= slot < N_SLOTS_PER_DAY:
            return self._drop(
                "invalid_slot",
                f"{where}: (day={payload.get('day', 0)!r}, "
                f"slot={payload['slot']!r}) is off the slot grid",
            )
        msg_id = payload.get("msg_id")
        if msg_id is None:
            # Content-derived id: exact replays of a reading across
            # overlapping snapshots dedup automatically.
            msg_id = f"d{day}.t{slot}.r{road}@{ts:.3f}"
        return ProbeMessage(
            road=road,
            day=day,
            slot=slot,
            speed_kmh=speed,
            ts=ts,
            msg_id=str(msg_id),
        )

    def _resolve_road(self, raw: object, where: str) -> Optional[int]:
        if isinstance(raw, bool):
            self._drop("unknown_road", f"{where}: road {raw!r} is not a road")
            return None
        if isinstance(raw, int):
            if 0 <= raw < self._network.n_roads:
                return raw
            self._drop(
                "unknown_road",
                f"{where}: road index {raw} out of range "
                f"[0, {self._network.n_roads})",
            )
            return None
        if isinstance(raw, str):
            try:
                return self._network.index_of(raw)
            except RoadNotFoundError:
                self._drop("unknown_road", f"{where}: unknown road id {raw!r}")
                return None
        self._drop("unknown_road", f"{where}: road {raw!r} is not a road")
        return None

    def _drop(self, reason: str, detail: str) -> Optional[ProbeMessage]:
        """Count (or raise, in strict mode) one drop; always returns None."""
        if self._strict:
            raise FeedError(reason, detail)
        self.dropped[reason] = self.dropped.get(reason, 0) + 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("stream.dropped", {"reason": reason}).inc()
        return None

    @staticmethod
    def _as_float(raw: object) -> Optional[float]:
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            return None
        return float(raw)

    @staticmethod
    def _as_int(raw: object) -> Optional[int]:
        if isinstance(raw, bool) or not isinstance(raw, int):
            return None
        return raw
