"""Synthesizes probe feeds from simulated traffic.

Two sources, both deterministic under a seed:

* :func:`synthesize_day_feed` — samples a :class:`~repro.traffic.history.SpeedHistory`
  day (i.e. :class:`~repro.traffic.simulator.TrafficSimulator` output)
  into overlapping, out-of-order JSONL-shaped snapshots, the realistic
  mess the :class:`~repro.stream.messages.FeedAdapter` and
  :class:`~repro.stream.log.ObservationLog` exist to clean up;
* :func:`messages_from_trajectories` — converts simulated vehicle
  :class:`~repro.traffic.trajectories.Trajectory` runs into messages
  via dwell-time speed extraction, tying the feed to the same probe
  model the crowdsourcing market uses.

:func:`save_feed` writes snapshots as one ``#``-delimited JSONL file,
round-tripping through :meth:`FeedAdapter.parse_feed_file`.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import StreamError
from repro.network.graph import TrafficNetwork
from repro.stream.messages import ProbeMessage, SLOT_SECONDS, slot_start_ts
from repro.traffic.history import SpeedHistory
from repro.traffic.trajectories import Trajectory, extract_road_speeds

#: Floor applied to synthesized speeds so noise cannot produce an
#: invalid (non-positive) reading.
_MIN_SPEED_KMH = 0.5


def synthesize_day_feed(
    history: SpeedHistory,
    day: int,
    slots: Optional[Sequence[int]] = None,
    coverage: float = 0.5,
    max_readings_per_road: int = 3,
    noise_fraction: float = 0.05,
    snapshot_every_s: float = 60.0,
    overlap_fraction: float = 0.25,
    disorder_s: float = 20.0,
    seed: int = 0,
) -> List[List[ProbeMessage]]:
    """One replay day of a speed history as overlapping feed snapshots.

    Per covered slot, a random ``coverage`` fraction of roads reports
    1–``max_readings_per_road`` noisy readings with event times inside
    the slot.  The stream is then cut into snapshots of
    ``snapshot_every_s`` event-time seconds where

    * each snapshot *re-sends* the last ``overlap_fraction`` of its
      predecessor (the overlap/duplication the dedup core merges), and
    * messages are shuffled within a ``disorder_s`` jitter window, so
      batches arrive out of order but never beyond that horizon.

    Args:
        history: Simulated ground truth (e.g. ``TrafficSimulator`` output).
        day: Which history day to replay.
        slots: Global slots to cover; defaults to the history's window.
        coverage: Fraction of roads reporting per slot, in (0, 1].
        max_readings_per_road: Upper bound on readings per road per slot.
        noise_fraction: Multiplicative Gaussian reading noise.
        snapshot_every_s: Event-time span of one snapshot.
        overlap_fraction: Tail fraction of each snapshot repeated in the
            next one.
        disorder_s: Out-of-order jitter horizon in event-time seconds.
        seed: RNG seed; same inputs → bit-identical feed.

    Returns:
        The snapshots, in arrival order.
    """
    if not 0.0 < coverage <= 1.0:
        raise StreamError(f"coverage must be in (0, 1], got {coverage}")
    if not 0 <= day < history.n_days:
        raise StreamError(
            f"day {day} outside the history's 0..{history.n_days - 1}"
        )
    if max_readings_per_road < 1:
        raise StreamError(
            f"max_readings_per_road must be >= 1, got {max_readings_per_road}"
        )
    if snapshot_every_s <= 0.0:
        raise StreamError(
            f"snapshot_every_s must be positive, got {snapshot_every_s}"
        )
    slot_list = list(history.global_slots) if slots is None else list(slots)
    truth = history.day(day)
    rng = np.random.default_rng(seed)
    n_report = max(1, int(round(coverage * history.n_roads)))
    messages: List[ProbeMessage] = []
    for global_slot in slot_list:
        local = history.local_slot(global_slot)
        start = slot_start_ts(day, global_slot)
        roads = rng.choice(history.n_roads, size=n_report, replace=False)
        for road in roads:
            n_readings = int(rng.integers(1, max_readings_per_road + 1))
            for reading in range(n_readings):
                noisy = float(truth[local, road]) * (
                    1.0 + noise_fraction * float(rng.standard_normal())
                )
                messages.append(
                    ProbeMessage(
                        road=int(road),
                        day=day,
                        slot=global_slot,
                        speed_kmh=max(_MIN_SPEED_KMH, noisy),
                        ts=start + float(rng.uniform(0.0, SLOT_SECONDS)),
                        msg_id=f"d{day}.t{global_slot}.r{int(road)}.{reading}",
                    )
                )
    # Arrival order: event time plus bounded jitter (out-of-order, but
    # never beyond disorder_s).
    jitter = rng.uniform(-disorder_s, disorder_s, size=len(messages))
    order = np.argsort(
        np.array([m.ts for m in messages]) + jitter, kind="stable"
    )
    arrival = [messages[int(i)] for i in order]
    return _cut_snapshots(arrival, snapshot_every_s, overlap_fraction)


def _cut_snapshots(
    arrival: Sequence[ProbeMessage],
    snapshot_every_s: float,
    overlap_fraction: float,
) -> List[List[ProbeMessage]]:
    """Cut an arrival stream into event-time windows with overlap."""
    if not arrival:
        return []
    snapshots: List[List[ProbeMessage]] = []
    window_end = arrival[0].ts + snapshot_every_s
    current: List[ProbeMessage] = []
    for message in arrival:
        if message.ts >= window_end and current:
            snapshots.append(current)
            tail = max(0, int(round(overlap_fraction * len(current))))
            current = current[len(current) - tail:] if tail else []
            while message.ts >= window_end:
                window_end += snapshot_every_s
        current.append(message)
    if current:
        snapshots.append(current)
    return snapshots


def messages_from_trajectories(
    network: TrafficNetwork,
    trajectories: Sequence[Trajectory],
    day: int,
    slot: int,
    min_dwell_s: float = 1.0,
) -> List[ProbeMessage]:
    """Probe messages from simulated vehicle runs within one slot.

    Each trajectory contributes its dwell-weighted per-road speeds
    (:func:`~repro.traffic.trajectories.extract_road_speeds`), stamped
    at the slot's start plus the trajectory's own clock — the same
    reduction a fleet of GPS probes performs on device.
    """
    start = slot_start_ts(day, slot)
    messages: List[ProbeMessage] = []
    for vehicle, trajectory in enumerate(trajectories):
        speeds = extract_road_speeds(network, trajectory, min_dwell_s)
        offset = trajectory.points[0].timestamp_s if trajectory.points else 0.0
        for road, speed_kmh in sorted(speeds.items()):
            if speed_kmh <= 0.0:
                continue
            messages.append(
                ProbeMessage(
                    road=road,
                    day=day,
                    slot=slot,
                    speed_kmh=speed_kmh,
                    ts=start + offset,
                    msg_id=f"d{day}.t{slot}.v{vehicle}.r{road}",
                )
            )
    return messages


def save_feed(
    snapshots: Sequence[Sequence[ProbeMessage]], path: Union[str, Path]
) -> Path:
    """Write snapshots as one ``#``-delimited JSONL feed file."""
    path = Path(path)
    lines: List[str] = []
    for index, snapshot in enumerate(snapshots):
        lines.append(f"# snapshot {index}")
        lines.extend(message.to_json() for message in snapshot)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path
