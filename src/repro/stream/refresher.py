"""Continuous model refresh driven by the observation log.

:class:`StreamRefresher` closes the loop between a live probe feed and
the versioned :class:`~repro.core.store.ModelStore`: as the watermark
closes slots in the :class:`~repro.stream.log.ObservationLog`, their
aggregated observations become daily samples for
:class:`~repro.core.online_update.OnlineRTFUpdater` and are published
through :meth:`ModelStore.refresh <repro.core.store.ModelStore.refresh>`
— while :class:`~repro.serve.service.QueryService` readers keep serving
from pinned snapshots.

Two properties keep the loop safe under load:

* **Bounded batching** — each publish covers at most
  ``max_slots_per_publish`` closed slots, so one store version never
  absorbs an unbounded backlog and readers see fresh versions steadily.
* **Backpressure** — closed slots wait in a queue of at most
  ``max_pending`` refresh jobs.  When the publisher falls behind, the
  *feed thread blocks inside* :meth:`StreamRefresher.ingest` until a
  slot frees up: the feed is throttled instead of the queue growing
  without bound (mirroring the admission-queue contract of the serving
  layer).

Freshness is accounted in **event time**: the ``stream.publish_lag_seconds``
gauge is the watermark at publish minus the published slot's end — how
far behind the stream's own clock the model runs — never wall clock
(RA006).  With a healthy publisher the lag hovers around the lateness
horizon; a growing lag means the refresh queue is the bottleneck.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from types import TracebackType
from typing import Deque, Dict, List, Optional, Sequence, Set, Type

import numpy as np

from repro.core.online_update import note_unfitted_slots
from repro.core.pipeline import CrowdRTSE
from repro.errors import ReproError, StreamError
from repro.obs import get_metrics, get_tracer
from repro.obs import health as obs_health
from repro.stream.log import IngestResult, ObservationLog, SlotKey
from repro.stream.messages import ProbeMessage, slot_end_ts


@dataclass(frozen=True)
class StreamConfig:
    """Tuning knobs of one :class:`StreamRefresher`.

    Attributes:
        lateness_s: Event-time grace period after a slot's end before it
            closes (see :class:`~repro.stream.log.ObservationLog`).
        learning_rate: Forgetting factor η handed to the online updater.
        max_pending: Bound on queued refresh jobs; a full queue blocks
            the feed thread (backpressure).
        max_slots_per_publish: Bound on distinct slots folded into one
            store publish (bounded batching).
        min_observed: Slots closing with fewer observed roads are
            dropped (``stream.dropped{reason="low_coverage"}``) instead
            of nudging the model from near-zero evidence.
        async_publish: Publish from a background thread (the production
            shape).  ``False`` publishes inline inside :meth:`ingest`,
            which is deterministic and simpler for tests/experiments.
    """

    lateness_s: float = 60.0
    learning_rate: float = 0.1
    max_pending: int = 4
    max_slots_per_publish: int = 8
    min_observed: int = 1
    async_publish: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate < 1.0:
            raise StreamError(
                f"learning_rate must be in (0, 1), got {self.learning_rate}"
            )
        if self.max_pending < 1:
            raise StreamError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.max_slots_per_publish < 1:
            raise StreamError(
                f"max_slots_per_publish must be >= 1, "
                f"got {self.max_slots_per_publish}"
            )
        if self.min_observed < 1:
            raise StreamError(f"min_observed must be >= 1, got {self.min_observed}")


@dataclass
class StreamStats:
    """Mirror of the ``stream.*`` refresh metrics for lock-free reads."""

    publishes: int = 0
    published_slots: int = 0
    skipped_unfitted: int = 0
    skipped_low_coverage: int = 0
    backpressure_waits: int = 0
    max_pending_seen: int = 0
    last_publish_lag_s: float = 0.0
    max_publish_lag_s: float = 0.0
    lag_history: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, float]:
        """Counters as a plain dict (for logs and tests)."""
        return {
            "publishes": self.publishes,
            "published_slots": self.published_slots,
            "skipped_unfitted": self.skipped_unfitted,
            "skipped_low_coverage": self.skipped_low_coverage,
            "backpressure_waits": self.backpressure_waits,
            "max_pending_seen": self.max_pending_seen,
            "last_publish_lag_s": self.last_publish_lag_s,
            "max_publish_lag_s": self.max_publish_lag_s,
        }


@dataclass(frozen=True)
class _RefreshJob:
    """One closed slot awaiting publication."""

    key: SlotKey
    sample: Dict[int, float]


class StreamRefresher:
    """Drives continuous model refresh from a probe message stream.

    Args:
        system: The fitted pipeline whose store receives publishes.
        config: Streaming knobs; defaults are production-shaped.

    Each slot close publishes through :meth:`ModelStore.refresh`, which
    also advances the state of *every* estimator backend attached via
    ``CrowdRTSE.attach_backend`` — streamed observations keep lsmrn,
    gmrf, and the offline-shim backends as fresh as the RTF slots, in
    the same atomic snapshot.

    Use as a context manager (or call :meth:`close`) so the final
    partially-filled slots are drained and the publisher thread joins::

        with StreamRefresher(system, StreamConfig(lateness_s=30.0)) as refresher:
            for batch in feed:
                refresher.ingest(batch)
        # closed: every slot published, publisher stopped.
    """

    def __init__(self, system: CrowdRTSE, config: Optional[StreamConfig] = None) -> None:
        self._system = system
        self._config = config or StreamConfig()
        self._log = ObservationLog(
            system.store.network.n_roads, self._config.lateness_s
        )
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._queue: Deque[_RefreshJob] = deque()
        self._stats = StreamStats()
        self._error: Optional[StreamError] = None
        self._closing = False
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        if self._config.async_publish:
            self._thread = threading.Thread(
                target=self._publisher_loop, name="stream-refresher", daemon=True
            )
            self._thread.start()

    # -- introspection ---------------------------------------------------

    @property
    def log(self) -> ObservationLog:
        """The underlying observation log (watermark, merge counters)."""
        return self._log

    @property
    def stats(self) -> StreamStats:
        """Publish/backpressure counters (mutated under the refresher lock)."""
        return self._stats

    @property
    def pending(self) -> int:
        """Refresh jobs currently queued."""
        with self._lock:
            return len(self._queue)

    # -- feed side -------------------------------------------------------

    def ingest(self, messages: Sequence[ProbeMessage]) -> IngestResult:
        """Merge one feed batch and publish every slot it closed.

        Blocks while the refresh queue is full (backpressure).  Raises
        the publisher's failure, if any, instead of silently continuing
        to feed a dead pipeline.

        Raises:
            StreamError: When the refresher is closed, or the background
                publisher previously failed.
        """
        self._check_open()
        with get_tracer().span("stream.ingest", messages=len(messages)):
            result = self._log.ingest(messages)
            self._flush_closed()
        return result

    def drain(self) -> None:
        """Close and submit every open slot now, watermark regardless.

        End-of-window flush: when the feed goes quiet (end of a replay
        day, end of the covered slot window) the watermark stops
        advancing, so the trailing slots would otherwise sit open until
        the next day's messages close them — publishing a day late in
        event time.  Messages for a drained slot arriving later are
        handled like any other late data (dropped once the watermark
        passes, merged into a fresh bucket otherwise).

        Raises:
            StreamError: When the refresher is closed, or the background
                publisher previously failed.
        """
        self._check_open()
        self._drain_open()

    def close(self) -> StreamStats:
        """Drain open slots, publish them, and stop the publisher.

        Idempotent.  Returns the final :class:`StreamStats`.

        Raises:
            StreamError: When the publisher failed at any point.
        """
        with self._lock:
            if self._closed:
                if self._error is not None:
                    raise self._error
                return self._stats
        try:
            self._drain_open()
        finally:
            with self._lock:
                self._closing = True
                self._not_empty.notify_all()
            if self._thread is not None:
                self._thread.join()
            with self._lock:
                self._closed = True
                error = self._error
        if error is not None:
            raise error
        return self._stats

    def __enter__(self) -> "StreamRefresher":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc is None:
            self.close()
            return
        # An ingest-side failure is already propagating; just stop the
        # publisher without drowning it in a second error.
        with self._lock:
            self._closing = True
            self._closed = True
            self._not_empty.notify_all()
        if self._thread is not None:
            self._thread.join()

    # -- internals -------------------------------------------------------

    def _check_open(self) -> None:
        with self._lock:
            if self._error is not None:
                raise self._error
            if self._closed or self._closing:
                raise StreamError("ingest on a closed StreamRefresher")

    def _flush_closed(self) -> None:
        for key in self._log.closable():
            sample = self._log.close_slot(key)
            self._submit(_RefreshJob(key=key, sample=sample))

    def _drain_open(self) -> None:
        for key in self._log.open_slots():
            sample = self._log.close_slot(key)
            self._submit(_RefreshJob(key=key, sample=sample))

    def _submit(self, job: _RefreshJob) -> None:
        if not self._config.async_publish:
            self._publish_jobs([job])
            with self._lock:
                if self._error is not None:
                    raise self._error
            return
        metrics = get_metrics()
        with self._not_full:
            while (
                len(self._queue) >= self._config.max_pending
                and self._error is None
            ):
                self._stats.backpressure_waits += 1
                if metrics.enabled:
                    metrics.counter("stream.backpressure_waits").inc()
                self._not_full.wait(timeout=1.0)
            if self._error is not None:
                raise self._error
            self._queue.append(job)
            if len(self._queue) > self._stats.max_pending_seen:
                self._stats.max_pending_seen = len(self._queue)
            if metrics.enabled:
                metrics.gauge("stream.pending_refreshes").set(len(self._queue))
            self._not_empty.notify()

    def _publisher_loop(self) -> None:
        metrics = get_metrics()
        while True:
            with self._not_empty:
                while not self._queue and not self._closing:
                    self._not_empty.wait(timeout=0.5)
                if not self._queue:
                    return
                # One publish maps slot → sample, so a batch may hold
                # each *global slot* once; a second job for the same
                # slot (the next day's closing) starts the next batch.
                jobs: List[_RefreshJob] = []
                slots_taken: Set[int] = set()
                while (
                    self._queue
                    and len(jobs) < self._config.max_slots_per_publish
                ):
                    slot = self._queue[0].key[1]
                    if slot in slots_taken:
                        break
                    slots_taken.add(slot)
                    jobs.append(self._queue.popleft())
                if metrics.enabled:
                    metrics.gauge("stream.pending_refreshes").set(len(self._queue))
                self._not_full.notify_all()
            self._publish_jobs(jobs)
            with self._lock:
                if self._error is not None:
                    # Unblock any feed thread stuck in backpressure.
                    self._not_full.notify_all()
                    return

    def _publish_jobs(self, jobs: Sequence[_RefreshJob]) -> None:
        """Fold closed slots into one store publish (no refresher lock held)."""
        metrics = get_metrics()
        snapshot = self._system.store.current()
        day_samples: Dict[int, np.ndarray] = {}
        published_keys: List[SlotKey] = []
        unfitted: List[int] = []
        skipped_low = 0
        for job in jobs:
            slot = job.key[1]
            if slot not in snapshot:
                unfitted.append(slot)
                continue
            if len(job.sample) < self._config.min_observed:
                skipped_low += 1
                if metrics.enabled:
                    metrics.counter(
                        "stream.dropped", {"reason": "low_coverage"}
                    ).inc()
                continue
            # Sparse coverage: unobserved roads keep the current slot
            # mean, so the updater sees a full positive vector and only
            # observed roads move the moments.
            sample = snapshot.slot(slot).mu.astype(np.float64).copy()
            for road, speed in job.sample.items():
                sample[road] = speed
            day_samples[slot] = sample
            published_keys.append(job.key)
        if unfitted:
            note_unfitted_slots(unfitted, snapshot.slots)
        try:
            if day_samples:
                with get_tracer().span("stream.publish", slots=len(day_samples)):
                    self._system.refresh(
                        day_samples, learning_rate=self._config.learning_rate
                    )
        except ReproError as exc:
            error = StreamError(
                f"publishing slots {sorted(day_samples)} failed: {exc}"
            )
            error.__cause__ = exc
            with self._lock:
                self._error = error
                self._not_full.notify_all()
            # Black-box the failure *after* releasing the refresher lock
            # (the recorder has its own lock; never nest them — RA002).
            obs_health.record_failure("stream", error)
            return
        watermark = self._log.watermark
        lag = 0.0
        for day, slot in published_keys:
            lag = max(lag, watermark - slot_end_ts(day, slot))
        with self._lock:
            self._stats.skipped_unfitted += len(unfitted)
            self._stats.skipped_low_coverage += skipped_low
            if day_samples:
                self._stats.publishes += 1
                self._stats.published_slots += len(day_samples)
                self._stats.last_publish_lag_s = lag
                if lag > self._stats.max_publish_lag_s:
                    self._stats.max_publish_lag_s = lag
                self._stats.lag_history.append(lag)
        if metrics.enabled and day_samples:
            metrics.counter("stream.publishes").inc()
            metrics.counter("stream.published_slots").inc(len(day_samples))
            metrics.gauge("stream.publish_lag_seconds").set(lag)
