"""Fixed loop-detector substrate.

The paper's §II argues that regression methods work "for scenarios where
the data is collected from the deployed loop sensors or cameras (whose
positions are fixed)" but break down with crowdsourcing because the
observed set moves.  To test that claim head-on this module provides the
fixed-sensor world: a :class:`DetectorDeployment` is a set of roads that
report their speed every slot (no budget, no workers), with placement
strategies a traffic authority would actually use.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.network.graph import RoadKind, TrafficNetwork


class DetectorPlacement(str, enum.Enum):
    """How detector roads are chosen."""

    #: Uniformly at random.
    RANDOM = "random"
    #: Highest-degree roads first (major junction coverage).
    DEGREE = "degree"
    #: Highways first, then arterials (where authorities put sensors).
    BACKBONE = "backbone"
    #: Greedy k-hop dominating set: maximize 1-hop coverage.
    COVERAGE = "coverage"


class DetectorDeployment:
    """A fixed set of instrumented roads.

    Args:
        network: Road graph.
        roads: The instrumented roads (distinct, non-empty).
        noise_std_fraction: Relative measurement noise of a detector
            (loop sensors are accurate; default 1%).
    """

    def __init__(
        self,
        network: TrafficNetwork,
        roads: Sequence[int],
        noise_std_fraction: float = 0.01,
    ) -> None:
        road_list = [int(r) for r in roads]
        if not road_list:
            raise DatasetError("a deployment needs at least one detector")
        if len(set(road_list)) != len(road_list):
            raise DatasetError("detector roads must be distinct")
        for road in road_list:
            if not 0 <= road < network.n_roads:
                raise DatasetError(f"detector road {road} outside the network")
        if noise_std_fraction < 0:
            raise DatasetError("noise_std_fraction must be >= 0")
        self._network = network
        self._roads: Tuple[int, ...] = tuple(sorted(road_list))
        self._noise = noise_std_fraction

    @property
    def roads(self) -> Tuple[int, ...]:
        """The instrumented roads, sorted."""
        return self._roads

    @property
    def n_detectors(self) -> int:
        """Number of instrumented roads."""
        return len(self._roads)

    def read(
        self,
        true_speeds_kmh: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> Dict[int, float]:
        """One synchronized reading of every detector.

        Args:
            true_speeds_kmh: Current ground-truth speed per road.
            rng: Noise source (noiseless when the deployment's noise is
                zero; a default RNG is created when omitted).

        Returns:
            Mapping road index → measured speed.
        """
        speeds = np.asarray(true_speeds_kmh, dtype=np.float64)
        if speeds.shape != (self._network.n_roads,):
            raise DatasetError(
                f"true_speeds_kmh must have shape ({self._network.n_roads},), "
                f"got {speeds.shape}"
            )
        # Deliberate: callers wanting reproducible noise pass `rng`.
        rng = rng or np.random.default_rng()  # repro: noqa[RA006]
        readings: Dict[int, float] = {}
        for road in self._roads:
            value = float(speeds[road])
            if self._noise > 0:
                value *= 1.0 + float(rng.normal(0.0, self._noise))
            readings[road] = max(value, 0.5)
        return readings

    @classmethod
    def place(
        cls,
        network: TrafficNetwork,
        n_detectors: int,
        placement: DetectorPlacement = DetectorPlacement.COVERAGE,
        noise_std_fraction: float = 0.01,
        seed: Optional[int] = None,
    ) -> "DetectorDeployment":
        """Deploy ``n_detectors`` sensors with the given strategy.

        Raises:
            DatasetError: When more detectors than roads are requested.
        """
        if not 0 < n_detectors <= network.n_roads:
            raise DatasetError(
                f"n_detectors must be in 1..{network.n_roads}, got {n_detectors}"
            )
        rng = np.random.default_rng(seed)
        if placement is DetectorPlacement.RANDOM:
            roads = rng.choice(network.n_roads, size=n_detectors, replace=False)
            chosen = [int(r) for r in roads]
        elif placement is DetectorPlacement.DEGREE:
            order = sorted(
                range(network.n_roads), key=lambda i: -network.degree(i)
            )
            chosen = order[:n_detectors]
        elif placement is DetectorPlacement.BACKBONE:
            rank = {RoadKind.HIGHWAY: 0, RoadKind.ARTERIAL: 1, RoadKind.LOCAL: 2}
            order = sorted(
                range(network.n_roads),
                key=lambda i: (rank[network.roads[i].kind], -network.degree(i)),
            )
            chosen = order[:n_detectors]
        elif placement is DetectorPlacement.COVERAGE:
            chosen = _greedy_coverage(network, n_detectors)
        else:  # pragma: no cover - enum exhaustive
            raise DatasetError(f"unknown placement {placement!r}")
        return cls(network, chosen, noise_std_fraction)


def _greedy_coverage(network: TrafficNetwork, n_detectors: int) -> List[int]:
    """Greedy max 1-hop coverage placement."""
    covered = np.zeros(network.n_roads, dtype=bool)
    chosen: List[int] = []
    for _ in range(n_detectors):
        best_road = -1
        best_gain = -1
        for road in range(network.n_roads):
            if road in chosen:
                continue
            gain = int(not covered[road]) + sum(
                1 for j in network.neighbors(road) if not covered[j]
            )
            if gain > best_gain:
                best_gain = gain
                best_road = road
        chosen.append(best_road)
        covered[best_road] = True
        for j in network.neighbors(best_road):
            covered[j] = True
    return chosen
