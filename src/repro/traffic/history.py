"""Historical speed record store.

:class:`SpeedHistory` is the offline artefact RTF is trained on — the
substitute for the paper's three-month crawl of the Hong Kong feed.  It
stores a dense ``(n_days, n_slots, n_roads)`` float32 array plus the
slot offset (histories may cover only a window of the 288 daily slots to
keep experiments fast).
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, Tuple, Union

import numpy as np

from repro.errors import DatasetError
from repro.network.graph import TrafficNetwork
from repro.traffic.profiles import N_SLOTS_PER_DAY


class SpeedHistory:
    """Dense record of realtime speeds over several days.

    Args:
        speeds: Array of shape ``(n_days, n_slots, n_roads)`` in km/h.
        road_ids: Road ids aligned with the last axis.
        slot_offset: Global slot index of local slot 0 (e.g. a history
            covering 07:00–10:00 has ``slot_offset = 84``).

    Raises:
        DatasetError: On shape mismatches or non-positive speeds.
    """

    def __init__(
        self,
        speeds: np.ndarray,
        road_ids: Sequence[str],
        slot_offset: int = 0,
    ) -> None:
        speeds = np.asarray(speeds, dtype=np.float32)
        if speeds.ndim != 3:
            raise DatasetError(
                f"speeds must be 3-d (days, slots, roads), got shape {speeds.shape}"
            )
        if speeds.shape[2] != len(road_ids):
            raise DatasetError(
                f"speeds cover {speeds.shape[2]} roads but {len(road_ids)} ids given"
            )
        if not 0 <= slot_offset < N_SLOTS_PER_DAY:
            raise DatasetError(f"slot_offset {slot_offset} outside a day")
        if slot_offset + speeds.shape[1] > N_SLOTS_PER_DAY:
            raise DatasetError(
                f"history of {speeds.shape[1]} slots starting at {slot_offset} "
                f"spills past the end of the day"
            )
        if speeds.size and not np.all(np.isfinite(speeds)):
            raise DatasetError("speeds contain NaN or infinity")
        if speeds.size and np.any(speeds <= 0):
            raise DatasetError("speeds must be strictly positive km/h")
        self._speeds = speeds
        self._road_ids: Tuple[str, ...] = tuple(road_ids)
        self._slot_offset = slot_offset

    # ------------------------------------------------------------------

    @property
    def n_days(self) -> int:
        """Number of recorded days."""
        return self._speeds.shape[0]

    @property
    def n_slots(self) -> int:
        """Number of recorded slots per day (may be < 288)."""
        return self._speeds.shape[1]

    @property
    def n_roads(self) -> int:
        """Number of roads covered."""
        return self._speeds.shape[2]

    @property
    def n_records(self) -> int:
        """Total scalar records (days x slots x roads), paper §VII-A."""
        return int(self._speeds.size)

    @property
    def road_ids(self) -> Tuple[str, ...]:
        """Road ids aligned with the road axis."""
        return self._road_ids

    @property
    def slot_offset(self) -> int:
        """Global slot index of local slot 0."""
        return self._slot_offset

    @property
    def global_slots(self) -> range:
        """Global slot indices covered by this history."""
        return range(self._slot_offset, self._slot_offset + self.n_slots)

    @property
    def values(self) -> np.ndarray:
        """The raw ``(n_days, n_slots, n_roads)`` array (read-only view)."""
        view = self._speeds.view()
        view.flags.writeable = False
        return view

    def __repr__(self) -> str:
        return (
            f"SpeedHistory(n_days={self.n_days}, n_slots={self.n_slots}, "
            f"n_roads={self.n_roads}, slot_offset={self.slot_offset})"
        )

    # ------------------------------------------------------------------
    # Slot addressing
    # ------------------------------------------------------------------

    def local_slot(self, global_slot: int) -> int:
        """Translate a global slot index into this history's slot axis.

        Raises:
            DatasetError: When the slot is not covered.
        """
        local = global_slot - self._slot_offset
        if not 0 <= local < self.n_slots:
            raise DatasetError(
                f"slot {global_slot} not covered (history spans "
                f"{self._slot_offset}..{self._slot_offset + self.n_slots - 1})"
            )
        return local

    def slot_samples(self, global_slot: int) -> np.ndarray:
        """All recorded days for one slot: shape ``(n_days, n_roads)``."""
        return np.asarray(self._speeds[:, self.local_slot(global_slot), :], dtype=np.float64)

    def day(self, day: int) -> np.ndarray:
        """One full day: shape ``(n_slots, n_roads)``."""
        if not 0 <= day < self.n_days:
            raise DatasetError(f"day {day} outside 0..{self.n_days - 1}")
        return np.asarray(self._speeds[day], dtype=np.float64)

    # ------------------------------------------------------------------
    # Empirical statistics (used to initialize / validate RTF inference)
    # ------------------------------------------------------------------

    def empirical_mean(self, global_slot: int) -> np.ndarray:
        """Per-road sample mean of one slot across days."""
        return self.slot_samples(global_slot).mean(axis=0)

    def empirical_std(self, global_slot: int, floor: float = 1e-3) -> np.ndarray:
        """Per-road sample std of one slot across days, floored at ``floor``."""
        std = self.slot_samples(global_slot).std(axis=0, ddof=1 if self.n_days > 1 else 0)
        return np.maximum(std, floor)

    def empirical_correlation(self, global_slot: int, i: int, j: int) -> float:
        """Pearson correlation of two roads within one slot across days.

        Returns 0.0 when either road has zero variance in the slot.
        """
        samples = self.slot_samples(global_slot)
        a, b = samples[:, i], samples[:, j]
        sa, sb = a.std(), b.std()
        if sa == 0 or sb == 0:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])

    def split_days(self, n_train: int) -> Tuple["SpeedHistory", "SpeedHistory"]:
        """Split into (train, test) along the day axis.

        Raises:
            DatasetError: If the split leaves either side empty.
        """
        if not 0 < n_train < self.n_days:
            raise DatasetError(
                f"n_train must be in 1..{self.n_days - 1}, got {n_train}"
            )
        train = SpeedHistory(self._speeds[:n_train], self._road_ids, self._slot_offset)
        test = SpeedHistory(self._speeds[n_train:], self._road_ids, self._slot_offset)
        return train, test

    def select_days(self, days: Sequence[int]) -> "SpeedHistory":
        """History restricted to the given day indices (order preserved).

        Use to split weekday/weekend records when the simulator was run
        with a weekly cycle, so RTF can be fitted per day type.

        Raises:
            DatasetError: On an empty selection or invalid indices.
        """
        indices = list(days)
        if not indices:
            raise DatasetError("day selection must not be empty")
        for day in indices:
            if not 0 <= day < self.n_days:
                raise DatasetError(f"day {day} outside 0..{self.n_days - 1}")
        return SpeedHistory(
            self._speeds[indices], self._road_ids, self._slot_offset
        )

    def restrict_roads(self, network: TrafficNetwork) -> "SpeedHistory":
        """Project the history onto the roads of ``network`` (by id).

        Used when experiments carve a subnetwork out of the full graph.
        """
        positions = []
        own = {rid: k for k, rid in enumerate(self._road_ids)}
        for rid in network.road_ids:
            if rid not in own:
                raise DatasetError(f"history has no record for road {rid!r}")
            positions.append(own[rid])
        return SpeedHistory(
            self._speeds[:, :, positions], network.road_ids, self._slot_offset
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Save to a compressed ``.npz`` file."""
        np.savez_compressed(
            Path(path),
            speeds=self._speeds,
            road_ids=np.array(self._road_ids),
            slot_offset=np.array(self._slot_offset),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SpeedHistory":
        """Load from a file written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as payload:
            return cls(
                payload["speeds"],
                [str(rid) for rid in payload["road_ids"]],
                int(payload["slot_offset"]),
            )
