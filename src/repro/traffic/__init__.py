"""Traffic ground-truth substrate.

The paper trains RTF on three months of 5-minute speed records crawled
from the Hong Kong PSI portal.  That feed is not available offline, so
this package implements a generative simulator with the same two
statistical properties the paper's model captures:

* **periodicity** — every road has a daily profile over 288 five-minute
  slots, with road-specific stability (σ);
* **correlation** — adjacent roads share congestion through a spatially
  smoothed fluctuation field, plus incident shocks that spread along
  the graph.

The simulator output (:class:`~repro.traffic.history.SpeedHistory`) is a
drop-in substitute for the crawled record: days × slots × roads.
"""

from repro.traffic.profiles import (
    N_SLOTS_PER_DAY,
    SLOT_MINUTES,
    DailyProfile,
    ProfileKind,
    build_profile,
    random_profiles,
    slot_of_time,
    time_of_slot,
)
from repro.traffic.detectors import DetectorDeployment, DetectorPlacement
from repro.traffic.history import SpeedHistory
from repro.traffic.incidents import Incident, IncidentModel
from repro.traffic.simulator import SimulationConfig, TrafficSimulator
from repro.traffic.trajectories import (
    Trajectory,
    TrajectoryGenerator,
    TrajectoryPoint,
    extract_road_speeds,
    fleet_road_speeds,
)

__all__ = [
    "DetectorDeployment",
    "DetectorPlacement",
    "Trajectory",
    "TrajectoryGenerator",
    "TrajectoryPoint",
    "extract_road_speeds",
    "fleet_road_speeds",
    "N_SLOTS_PER_DAY",
    "SLOT_MINUTES",
    "DailyProfile",
    "ProfileKind",
    "build_profile",
    "random_profiles",
    "slot_of_time",
    "time_of_slot",
    "SpeedHistory",
    "Incident",
    "IncidentModel",
    "SimulationConfig",
    "TrafficSimulator",
]
