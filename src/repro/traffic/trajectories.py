"""Vehicle trajectories: GPS traces over the road network.

Real crowdsourced speeds come from phone GPS traces — a worker travels
along roads and her device samples positions every few seconds; the
platform derives a per-road travel speed from consecutive fixes (paper
§VII-A: "the traveling speed can be calculated within a short period of
time").  This module provides:

* :class:`Trajectory` / :class:`TrajectoryPoint` — a map-matched trace
  (each fix already carries its road id, as a spatial crowdsourcing
  platform like gMission would produce);
* :class:`TrajectoryGenerator` — simulates vehicles random-walking
  routes over the network, moving at the ground-truth speed of each road
  they traverse, with GPS noise on the fixes;
* :func:`extract_road_speeds` — the platform-side reduction of a trace
  to per-road speed observations (distance / time between fixes).

Together with :class:`~repro.crowd.market.CrowdMarket` this closes the
gap between "oracle point reads" and realistic trace-derived probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.network.graph import TrafficNetwork


@dataclass(frozen=True)
class TrajectoryPoint:
    """One GPS fix, already map-matched to a road.

    Attributes:
        timestamp_s: Seconds since the start of the trace.
        road_index: Road the fix lies on.
        offset_km: Distance travelled along that road so far.
    """

    timestamp_s: float
    road_index: int
    offset_km: float

    def __post_init__(self) -> None:
        if self.timestamp_s < 0:
            raise DatasetError("timestamp must be >= 0")
        if self.offset_km < 0:
            raise DatasetError("offset must be >= 0")


@dataclass(frozen=True)
class Trajectory:
    """A map-matched GPS trace of one vehicle.

    Attributes:
        vehicle_id: Trace identifier.
        points: Fixes ordered by timestamp.
    """

    vehicle_id: str
    points: Tuple[TrajectoryPoint, ...]

    def __post_init__(self) -> None:
        if not self.vehicle_id:
            raise DatasetError("vehicle_id must be non-empty")
        times = [p.timestamp_s for p in self.points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise DatasetError(
                f"trajectory {self.vehicle_id!r}: timestamps must be non-decreasing"
            )

    @property
    def n_points(self) -> int:
        """Number of GPS fixes."""
        return len(self.points)

    @property
    def duration_s(self) -> float:
        """Trace duration in seconds (0 for < 2 fixes)."""
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].timestamp_s - self.points[0].timestamp_s

    def roads_visited(self) -> List[int]:
        """Distinct roads in visit order."""
        visited: List[int] = []
        for point in self.points:
            if not visited or visited[-1] != point.road_index:
                visited.append(point.road_index)
        return visited


class TrajectoryGenerator:
    """Simulates vehicles driving random routes at ground-truth speeds.

    Args:
        network: Road graph.
        true_speeds_kmh: Current true speed per road (e.g. one slot of a
            simulated :class:`~repro.traffic.history.SpeedHistory`).
        fix_interval_s: Seconds between GPS fixes.
        gps_noise_fraction: Relative noise on each fix's along-road
            offset (models position error).
        seed: RNG seed.
    """

    def __init__(
        self,
        network: TrafficNetwork,
        true_speeds_kmh: np.ndarray,
        fix_interval_s: float = 10.0,
        gps_noise_fraction: float = 0.02,
        seed: Optional[int] = None,
    ) -> None:
        true_speeds_kmh = np.asarray(true_speeds_kmh, dtype=np.float64)
        if true_speeds_kmh.shape != (network.n_roads,):
            raise DatasetError(
                f"true_speeds_kmh must have shape ({network.n_roads},), "
                f"got {true_speeds_kmh.shape}"
            )
        if np.any(true_speeds_kmh <= 0):
            raise DatasetError("true speeds must be positive")
        if fix_interval_s <= 0:
            raise DatasetError("fix_interval_s must be positive")
        if gps_noise_fraction < 0:
            raise DatasetError("gps_noise_fraction must be >= 0")
        self._network = network
        self._speeds = true_speeds_kmh
        self._fix_interval = fix_interval_s
        self._noise = gps_noise_fraction
        self._rng = np.random.default_rng(seed)

    def drive(
        self,
        vehicle_id: str,
        start_road: int,
        duration_s: float,
    ) -> Trajectory:
        """Simulate one vehicle for ``duration_s`` seconds.

        The vehicle traverses its current road at that road's true
        speed; on reaching the end it turns onto a uniformly random
        adjacent road (or U-turns on a dead end).

        Returns:
            The map-matched :class:`Trajectory`.
        """
        if not 0 <= start_road < self._network.n_roads:
            raise DatasetError(f"start road {start_road} outside the network")
        if duration_s <= 0:
            raise DatasetError("duration_s must be positive")

        points: List[TrajectoryPoint] = []
        road = start_road
        offset_km = 0.0
        clock = 0.0
        points.append(self._fix(clock, road, offset_km))
        while clock < duration_s:
            step = min(self._fix_interval, duration_s - clock)
            clock += step
            speed_kms = self._speeds[road] / 3600.0
            offset_km += speed_kms * step
            length = self._network.road_at(road).length_km
            while offset_km >= length:
                offset_km -= length
                neighbors = self._network.neighbors(road)
                if neighbors:
                    road = int(
                        neighbors[int(self._rng.integers(len(neighbors)))]
                    )
                # A dead-end road simply loops (U-turn).
                length = self._network.road_at(road).length_km
            points.append(self._fix(clock, road, offset_km))
        return Trajectory(vehicle_id=vehicle_id, points=tuple(points))

    def drive_route(
        self,
        vehicle_id: str,
        route: Sequence[int],
    ) -> Trajectory:
        """Drive an explicit road sequence (a commute) at true speeds.

        The vehicle traverses each road of ``route`` in order at that
        road's current speed; the trace ends when the last road is
        completed.  Consecutive roads must be adjacent.

        Args:
            vehicle_id: Trace identifier.
            route: Road indices to follow (non-empty).

        Returns:
            The map-matched :class:`Trajectory`.

        Raises:
            DatasetError: On an empty or non-adjacent route.
        """
        if not route:
            raise DatasetError("route must not be empty")
        for a, b in zip(route, route[1:]):
            if not self._network.are_adjacent(int(a), int(b)):
                raise DatasetError(
                    f"route roads {a} and {b} are not adjacent"
                )
        points: List[TrajectoryPoint] = []
        clock = 0.0
        leg = 0
        road = int(route[0])
        offset_km = 0.0
        points.append(self._fix(clock, road, offset_km))
        while True:
            speed_kms = self._speeds[road] / 3600.0
            length = self._network.road_at(road).length_km
            step = self._fix_interval
            clock += step
            offset_km += speed_kms * step
            while offset_km >= length:
                offset_km -= length
                leg += 1
                if leg >= len(route):
                    # Final fix at the end of the last road.
                    points.append(self._fix(clock, road, length))
                    return Trajectory(vehicle_id=vehicle_id, points=tuple(points))
                road = int(route[leg])
                length = self._network.road_at(road).length_km
            points.append(self._fix(clock, road, offset_km))

    def fleet(
        self,
        n_vehicles: int,
        duration_s: float,
        start_roads: Optional[Sequence[int]] = None,
    ) -> List[Trajectory]:
        """Simulate several vehicles with random (or given) start roads."""
        if n_vehicles <= 0:
            raise DatasetError("n_vehicles must be positive")
        if start_roads is not None and len(start_roads) != n_vehicles:
            raise DatasetError("start_roads must have one entry per vehicle")
        trajectories = []
        for v in range(n_vehicles):
            start = (
                int(start_roads[v])
                if start_roads is not None
                else int(self._rng.integers(self._network.n_roads))
            )
            trajectories.append(self.drive(f"v{v}", start, duration_s))
        return trajectories

    def _fix(self, clock: float, road: int, offset_km: float) -> TrajectoryPoint:
        noisy_offset = offset_km
        if self._noise > 0:
            length = self._network.road_at(road).length_km
            noisy_offset += float(self._rng.normal(0.0, self._noise * length))
            noisy_offset = float(np.clip(noisy_offset, 0.0, length))
        return TrajectoryPoint(
            timestamp_s=clock, road_index=road, offset_km=noisy_offset
        )


def extract_road_speeds(
    network: TrafficNetwork,
    trajectory: Trajectory,
    min_dwell_s: float = 5.0,
) -> Dict[int, float]:
    """Per-road speed observations from one trace.

    For every maximal run of consecutive fixes on the same road, the
    speed is the along-road distance covered divided by the elapsed
    time.  Runs shorter than ``min_dwell_s`` (or with no displacement)
    are discarded — too noisy to use.  When a road is visited several
    times, the duration-weighted mean is reported.

    Returns:
        Mapping road index → observed speed (km/h).
    """
    if min_dwell_s < 0:
        raise DatasetError("min_dwell_s must be >= 0")
    totals: Dict[int, Tuple[float, float]] = {}  # road -> (time, distance)
    run_start = 0
    points = trajectory.points
    for k in range(1, len(points) + 1):
        if k < len(points) and points[k].road_index == points[run_start].road_index:
            continue
        run = points[run_start:k]
        run_start = k
        if len(run) < 2:
            continue
        elapsed = run[-1].timestamp_s - run[0].timestamp_s
        distance = run[-1].offset_km - run[0].offset_km
        if elapsed < min_dwell_s or distance <= 0:
            continue
        road = run[0].road_index
        prev_time, prev_dist = totals.get(road, (0.0, 0.0))
        totals[road] = (prev_time + elapsed, prev_dist + distance)
    return {
        road: 3600.0 * distance / elapsed
        for road, (elapsed, distance) in totals.items()
        if elapsed > 0
    }


def fleet_road_speeds(
    network: TrafficNetwork,
    trajectories: Sequence[Trajectory],
    min_dwell_s: float = 5.0,
) -> Dict[int, List[float]]:
    """All per-road observations from a fleet of traces.

    Returns:
        Mapping road index → list of speed observations (one per trace
        that crossed the road usably); feed these to
        :func:`repro.crowd.aggregation.aggregate_answers`.
    """
    observations: Dict[int, List[float]] = {}
    for trajectory in trajectories:
        for road, speed in extract_road_speeds(
            network, trajectory, min_dwell_s
        ).items():
            observations.setdefault(road, []).append(speed)
    return observations
