"""Daily periodic speed profiles.

Following the paper (§IV-A), each day is divided into 288 five-minute
slots.  A :class:`DailyProfile` gives, for one road, the *expected*
speed in every slot plus a stability coefficient that scales the
day-to-day fluctuation — the generative counterpart of the RTF
parameters ``mu_i^t`` and ``sigma_i^t``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.network.graph import Road, RoadKind, TrafficNetwork

#: Minutes per time slot (paper: 5-minute intervals).
SLOT_MINUTES = 5

#: Slots per day (paper: 288).
N_SLOTS_PER_DAY = 24 * 60 // SLOT_MINUTES


def slot_of_time(hour: int, minute: int = 0) -> int:
    """Slot index of a wall-clock time, e.g. ``slot_of_time(8, 30) == 102``.

    Raises:
        DatasetError: When the time is outside ``00:00 .. 23:59``.
    """
    if not 0 <= hour < 24 or not 0 <= minute < 60:
        raise DatasetError(f"invalid time {hour:02d}:{minute:02d}")
    return (hour * 60 + minute) // SLOT_MINUTES


def time_of_slot(slot: int) -> Tuple[int, int]:
    """Inverse of :func:`slot_of_time`: ``(hour, minute)`` of slot start."""
    if not 0 <= slot < N_SLOTS_PER_DAY:
        raise DatasetError(f"slot {slot} outside 0..{N_SLOTS_PER_DAY - 1}")
    minutes = slot * SLOT_MINUTES
    return minutes // 60, minutes % 60


class ProfileKind(str, enum.Enum):
    """Shape family of a daily profile.

    * ``COMMUTER`` — pronounced morning and evening rush-hour dips;
      strong periodicity (small fluctuation scale).
    * ``STEADY`` — nearly flat all day (highway-like); the strongest
      periodicity.
    * ``VOLATILE`` — shallow pattern but large day-to-day fluctuation;
      these are the weak-periodicity roads OCS prioritizes.
    * ``NIGHTLIFE`` — evening/night slowdown instead of rush hours.
    """

    COMMUTER = "commuter"
    STEADY = "steady"
    VOLATILE = "volatile"
    NIGHTLIFE = "nightlife"


def _gaussian_bump(slots: np.ndarray, center_slot: float, width_slots: float) -> np.ndarray:
    return np.exp(-0.5 * ((slots - center_slot) / width_slots) ** 2)


@dataclass(frozen=True)
class DailyProfile:
    """Per-road daily speed pattern.

    Attributes:
        road_id: Road this profile belongs to.
        kind: Shape family.
        mean_kmh: Expected speed per slot, shape ``(N_SLOTS_PER_DAY,)``.
        fluctuation_kmh: Std dev of the day-to-day deviation per slot,
            shape ``(N_SLOTS_PER_DAY,)``.  This is the generative
            ``sigma_i^t``: large values mean weak periodicity.
    """

    road_id: str
    kind: ProfileKind
    mean_kmh: np.ndarray
    fluctuation_kmh: np.ndarray

    def __post_init__(self) -> None:
        if self.mean_kmh.shape != (N_SLOTS_PER_DAY,):
            raise DatasetError(
                f"profile for {self.road_id!r}: mean_kmh must have shape "
                f"({N_SLOTS_PER_DAY},), got {self.mean_kmh.shape}"
            )
        if self.fluctuation_kmh.shape != (N_SLOTS_PER_DAY,):
            raise DatasetError(
                f"profile for {self.road_id!r}: fluctuation_kmh must have shape "
                f"({N_SLOTS_PER_DAY},), got {self.fluctuation_kmh.shape}"
            )
        if np.any(self.mean_kmh <= 0):
            raise DatasetError(f"profile for {self.road_id!r}: mean speed must be positive")
        if np.any(self.fluctuation_kmh < 0):
            raise DatasetError(
                f"profile for {self.road_id!r}: fluctuation must be non-negative"
            )

    @property
    def periodicity_strength(self) -> float:
        """Scalar summary in [0, 1]: 1 means perfectly repeatable days.

        Defined as ``1 / (1 + mean fluctuation / mean speed * 10)`` so a
        road whose daily deviation is ~10% of its speed scores 0.5.
        """
        rel = float(np.mean(self.fluctuation_kmh) / np.mean(self.mean_kmh))
        return 1.0 / (1.0 + 10.0 * rel)


def build_profile(
    road: Road,
    kind: ProfileKind,
    rng: Optional[np.random.Generator] = None,
) -> DailyProfile:
    """Construct a :class:`DailyProfile` of the given shape family.

    The profile is anchored at the road's free-flow speed; rush-hour
    bumps subtract congestion.  A small random phase/depth jitter makes
    every road's pattern unique (so correlations are not degenerate).

    Args:
        road: Road record (free-flow speed and kind are used).
        kind: Shape family.
        rng: RNG for jitter; deterministic zero jitter when omitted.
    """
    slots = np.arange(N_SLOTS_PER_DAY, dtype=float)
    free = road.free_flow_kmh
    if rng is None:
        jitter = np.zeros(4)
    else:
        jitter = rng.normal(scale=1.0, size=4)

    morning = slot_of_time(8) + 4.0 * jitter[0]
    evening = slot_of_time(18) + 4.0 * jitter[1]
    depth_scale = 1.0 + 0.15 * jitter[2]
    width = 12.0 * (1.0 + 0.1 * abs(jitter[3]))

    if kind is ProfileKind.COMMUTER:
        dip = 0.45 * depth_scale * _gaussian_bump(slots, morning, width)
        dip += 0.40 * depth_scale * _gaussian_bump(slots, evening, width * 1.3)
        mean = free * np.clip(1.0 - dip, 0.25, 1.0)
        fluct = np.full(N_SLOTS_PER_DAY, 0.04 * free)
        fluct += 0.03 * free * _gaussian_bump(slots, morning, width)
    elif kind is ProfileKind.STEADY:
        dip = 0.10 * depth_scale * _gaussian_bump(slots, morning, width * 1.5)
        mean = free * np.clip(1.0 - dip, 0.5, 1.0)
        fluct = np.full(N_SLOTS_PER_DAY, 0.02 * free)
    elif kind is ProfileKind.VOLATILE:
        dip = 0.25 * depth_scale * _gaussian_bump(slots, morning, width)
        dip += 0.20 * depth_scale * _gaussian_bump(slots, evening, width)
        mean = free * np.clip(1.0 - dip, 0.3, 1.0)
        fluct = np.full(N_SLOTS_PER_DAY, 0.16 * free)
        fluct += 0.08 * free * _gaussian_bump(slots, evening, width)
    elif kind is ProfileKind.NIGHTLIFE:
        night = slot_of_time(22) + 4.0 * jitter[0]
        dip = 0.35 * depth_scale * _gaussian_bump(slots, night, width * 1.5)
        mean = free * np.clip(1.0 - dip, 0.35, 1.0)
        fluct = np.full(N_SLOTS_PER_DAY, 0.08 * free)
    else:  # pragma: no cover - enum is exhaustive
        raise DatasetError(f"unknown profile kind {kind!r}")
    return DailyProfile(road.road_id, kind, mean, fluct)


#: Default mixture of profile kinds per road kind.  Highways are mostly
#: steady; local streets skew volatile (weak periodicity).
_KIND_MIXTURE = {
    RoadKind.HIGHWAY: ([ProfileKind.STEADY, ProfileKind.COMMUTER], [0.8, 0.2]),
    RoadKind.ARTERIAL: (
        [ProfileKind.COMMUTER, ProfileKind.STEADY, ProfileKind.VOLATILE],
        [0.6, 0.2, 0.2],
    ),
    RoadKind.LOCAL: (
        [ProfileKind.VOLATILE, ProfileKind.COMMUTER, ProfileKind.NIGHTLIFE],
        [0.45, 0.35, 0.2],
    ),
}


def random_profiles(
    network: TrafficNetwork,
    seed: Optional[int] = None,
    volatile_fraction: Optional[float] = None,
) -> List[DailyProfile]:
    """One random profile per road, index-aligned with the network.

    Args:
        network: Target network.
        seed: RNG seed.
        volatile_fraction: When given, overrides the road-kind mixture
            and makes exactly this fraction of roads VOLATILE (weak
            periodicity), the rest COMMUTER.  Used by experiments that
            sweep the share of hard-to-predict roads.
    """
    rng = np.random.default_rng(seed)
    profiles: List[DailyProfile] = []
    if volatile_fraction is not None:
        if not 0.0 <= volatile_fraction <= 1.0:
            raise DatasetError(
                f"volatile_fraction must be in [0, 1], got {volatile_fraction}"
            )
        n_volatile = int(round(volatile_fraction * network.n_roads))
        volatile_ids = set(
            rng.choice(network.n_roads, size=n_volatile, replace=False).tolist()
        )
        for idx, road in enumerate(network.roads):
            kind = ProfileKind.VOLATILE if idx in volatile_ids else ProfileKind.COMMUTER
            profiles.append(build_profile(road, kind, rng))
        return profiles
    for road in network.roads:
        kinds, weights = _KIND_MIXTURE[road.kind]
        kind = rng.choice(np.array([k.value for k in kinds]), p=weights)
        profiles.append(build_profile(road, ProfileKind(str(kind)), rng))
    return profiles
