"""Traffic incidents: the "accidental variance" the paper motivates.

Periodicity-only estimators cannot see incidents (paper §I).  The
simulator injects :class:`Incident` shocks — a multiplicative slowdown
on one road that decays outward over the graph and in time — so the
evaluation exercises exactly the regime where crowdsourced probes beat
historical means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.network.graph import TrafficNetwork


@dataclass(frozen=True)
class Incident:
    """A single traffic incident.

    Attributes:
        road_index: Road where the incident occurs.
        day: Day index in the simulated history.
        start_slot: Local slot (within the simulated window) of onset.
        duration_slots: Number of slots the incident lasts.
        severity: Peak fractional slowdown in ``(0, 1)``; 0.6 means the
            speed drops to 40% of normal at the epicentre.
        spread_hops: How many hops the slowdown propagates.
        spatial_decay: Multiplier applied to the severity per hop.
    """

    road_index: int
    day: int
    start_slot: int
    duration_slots: int
    severity: float
    spread_hops: int = 2
    spatial_decay: float = 0.5

    def __post_init__(self) -> None:
        if self.duration_slots <= 0:
            raise DatasetError("incident duration must be positive")
        if not 0.0 < self.severity < 1.0:
            raise DatasetError(f"severity must be in (0, 1), got {self.severity}")
        if self.spread_hops < 0:
            raise DatasetError("spread_hops must be >= 0")
        if not 0.0 <= self.spatial_decay <= 1.0:
            raise DatasetError("spatial_decay must be in [0, 1]")


class IncidentModel:
    """Generates incidents and applies them to a speed tensor."""

    def __init__(
        self,
        network: TrafficNetwork,
        rate_per_day: float = 2.0,
        severity_range: Sequence[float] = (0.3, 0.7),
        duration_range_slots: Sequence[int] = (6, 24),
    ) -> None:
        """Args:
            network: Target network.
            rate_per_day: Expected number of incidents per simulated day
                (Poisson).
            severity_range: Uniform range of peak slowdowns.
            duration_range_slots: Uniform integer range of durations.
        """
        if rate_per_day < 0:
            raise DatasetError("rate_per_day must be >= 0")
        lo, hi = severity_range
        if not 0.0 < lo <= hi < 1.0:
            raise DatasetError(f"bad severity_range {severity_range}")
        dlo, dhi = duration_range_slots
        if not 0 < dlo <= dhi:
            raise DatasetError(f"bad duration_range_slots {duration_range_slots}")
        self._network = network
        self._rate = rate_per_day
        self._severity_range = (float(lo), float(hi))
        self._duration_range = (int(dlo), int(dhi))

    def sample(
        self,
        n_days: int,
        n_slots: int,
        rng: np.random.Generator,
    ) -> List[Incident]:
        """Draw a random incident schedule for a simulation window."""
        incidents: List[Incident] = []
        for day in range(n_days):
            count = int(rng.poisson(self._rate))
            for _ in range(count):
                road = int(rng.integers(self._network.n_roads))
                start = int(rng.integers(n_slots))
                duration = int(
                    rng.integers(self._duration_range[0], self._duration_range[1] + 1)
                )
                severity = float(rng.uniform(*self._severity_range))
                incidents.append(
                    Incident(
                        road_index=road,
                        day=day,
                        start_slot=start,
                        duration_slots=duration,
                        severity=severity,
                    )
                )
        return incidents

    def slowdown_field(
        self,
        incidents: Sequence[Incident],
        n_days: int,
        n_slots: int,
    ) -> np.ndarray:
        """Multiplicative speed factor per (day, slot, road), in (0, 1].

        Each incident contributes a factor ``1 - severity * decay^hops``
        with a triangular temporal ramp (onset → peak at 1/3 of the
        duration → recovery).  Overlapping incidents multiply.
        """
        field = np.ones((n_days, n_slots, self._network.n_roads), dtype=np.float64)
        for incident in incidents:
            if not 0 <= incident.day < n_days:
                raise DatasetError(f"incident day {incident.day} outside window")
            affected = self._affected_roads(incident)
            end = min(incident.start_slot + incident.duration_slots, n_slots)
            peak = incident.start_slot + max(1, incident.duration_slots // 3)
            for slot in range(max(incident.start_slot, 0), end):
                if slot < peak:
                    ramp = (slot - incident.start_slot + 1) / max(1, peak - incident.start_slot)
                else:
                    ramp = (end - slot) / max(1, end - peak)
                ramp = float(np.clip(ramp, 0.0, 1.0))
                for road, hops in affected.items():
                    drop = incident.severity * (incident.spatial_decay ** hops) * ramp
                    field[incident.day, slot, road] *= 1.0 - drop
        return field

    def _affected_roads(self, incident: Incident) -> Dict[int, int]:
        """Roads within ``spread_hops`` of the epicentre, mapped to hops."""
        distances = self._network.hop_distances([incident.road_index])
        return {
            idx: d
            for idx, d in enumerate(distances)
            if d is not None and d <= incident.spread_hops
        }
