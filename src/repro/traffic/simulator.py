"""Generative ground-truth traffic simulator.

Produces the :class:`~repro.traffic.history.SpeedHistory` that replaces
the paper's Hong Kong crawl.  The generative model is

.. math::

    v_{i}^{d,t} = \\big(\\mu_i(t) + \\sigma_i(t)\\, d_{i}^{d,t}\\big)
                  \\cdot \\text{incidents}_{i}^{d,t}

where :math:`\\mu_i, \\sigma_i` come from the road's
:class:`~repro.traffic.profiles.DailyProfile` and the deviation field
``d`` is unit-variance noise that is AR(1)-correlated in time and
diffused along the road graph in space — so adjacent roads fluctuate
together, which is precisely the correlation RTF's edge weights
:math:`\\rho_{ij}` must recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import DatasetError
from repro.network.graph import TrafficNetwork
from repro.traffic.history import SpeedHistory
from repro.traffic.incidents import Incident, IncidentModel
from repro.traffic.profiles import N_SLOTS_PER_DAY, DailyProfile


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the ground-truth simulator.

    Attributes:
        n_days: Days of history to generate.
        slot_start: First global slot simulated (0 = midnight).
        n_slots: Number of consecutive slots per day.
        temporal_ar: AR(1) coefficient of the deviation field across
            slots; 0 gives independent slots.
        spatial_passes: Diffusion passes along the adjacency; more
            passes give longer-range spatial correlation.
        spatial_weight: Blend factor per diffusion pass (0 = none).
        min_speed_kmh: Floor applied after all effects.
        weekend_factor: Weekly cycle: on weekend days the congestion dip
            below free-flow is scaled by this factor (1.0 = no weekly
            cycle; 0.4 means weekend congestion is 40% of a weekday's).
        first_weekday: Weekday of day 0 (0 = Monday), so days with
            ``(first_weekday + day) % 7 in {5, 6}`` are weekends.
        seed: RNG seed for full reproducibility.
    """

    n_days: int = 30
    slot_start: int = 0
    n_slots: int = N_SLOTS_PER_DAY
    temporal_ar: float = 0.85
    spatial_passes: int = 3
    spatial_weight: float = 0.5
    min_speed_kmh: float = 2.0
    weekend_factor: float = 1.0
    first_weekday: int = 0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise DatasetError(f"n_days must be positive, got {self.n_days}")
        if self.n_slots <= 0:
            raise DatasetError(f"n_slots must be positive, got {self.n_slots}")
        if not 0 <= self.slot_start < N_SLOTS_PER_DAY:
            raise DatasetError(f"slot_start {self.slot_start} outside a day")
        if self.slot_start + self.n_slots > N_SLOTS_PER_DAY:
            raise DatasetError("simulated window spills past the end of the day")
        if not 0.0 <= self.temporal_ar < 1.0:
            raise DatasetError(f"temporal_ar must be in [0, 1), got {self.temporal_ar}")
        if self.spatial_passes < 0:
            raise DatasetError("spatial_passes must be >= 0")
        if not 0.0 <= self.spatial_weight <= 1.0:
            raise DatasetError("spatial_weight must be in [0, 1]")
        if self.min_speed_kmh <= 0:
            raise DatasetError("min_speed_kmh must be positive")
        if not 0.0 <= self.weekend_factor <= 1.0:
            raise DatasetError("weekend_factor must be in [0, 1]")
        if not 0 <= self.first_weekday < 7:
            raise DatasetError("first_weekday must be in 0..6")

    def is_weekend(self, day: int) -> bool:
        """Whether simulated day ``day`` falls on a weekend."""
        return (self.first_weekday + day) % 7 in (5, 6)


class TrafficSimulator:
    """Generates correlated, periodic ground-truth speeds for a network.

    Args:
        network: Road graph.
        profiles: One :class:`DailyProfile` per road, index-aligned.
        config: Simulation knobs.
        incident_model: Optional incident generator; when given, random
            incidents are injected every simulated day.

    Raises:
        DatasetError: When profiles are missing or misaligned.
    """

    def __init__(
        self,
        network: TrafficNetwork,
        profiles: Sequence[DailyProfile],
        config: Optional[SimulationConfig] = None,
        incident_model: Optional[IncidentModel] = None,
    ) -> None:
        if len(profiles) != network.n_roads:
            raise DatasetError(
                f"{len(profiles)} profiles for {network.n_roads} roads"
            )
        for idx, profile in enumerate(profiles):
            expected = network.roads[idx].road_id
            if profile.road_id != expected:
                raise DatasetError(
                    f"profile {idx} is for road {profile.road_id!r}, expected {expected!r}"
                )
        self._network = network
        self._profiles = tuple(profiles)
        self._config = config or SimulationConfig()
        self._incident_model = incident_model
        self._smoother = self._build_smoother()

        window = slice(
            self._config.slot_start, self._config.slot_start + self._config.n_slots
        )
        self._mean = np.stack([p.mean_kmh[window] for p in profiles], axis=1)
        self._fluct = np.stack([p.fluctuation_kmh[window] for p in profiles], axis=1)

    @property
    def network(self) -> TrafficNetwork:
        """The simulated network."""
        return self._network

    @property
    def config(self) -> SimulationConfig:
        """The simulation configuration."""
        return self._config

    @property
    def profiles(self) -> Tuple[DailyProfile, ...]:
        """Per-road daily profiles."""
        return self._profiles

    def _build_smoother(self) -> sp.csr_matrix:
        """Row-stochastic blend of self and neighbour average."""
        n = self._network.n_roads
        w = self._config.spatial_weight
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for i in range(n):
            neighbors = self._network.neighbors(i)
            rows.append(i)
            cols.append(i)
            vals.append(1.0 if not neighbors else 1.0 - w)
            for j in neighbors:
                rows.append(i)
                cols.append(j)
                vals.append(w / len(neighbors))
        return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))

    def _deviation_field(self, rng: np.random.Generator) -> np.ndarray:
        """Unit-variance deviations, shape (n_days, n_slots, n_roads)."""
        cfg = self._config
        n = self._network.n_roads
        field = np.empty((cfg.n_days, cfg.n_slots, n), dtype=np.float64)
        ar = cfg.temporal_ar
        innovation_scale = np.sqrt(1.0 - ar * ar)
        for day in range(cfg.n_days):
            state = rng.standard_normal(n)
            for t in range(cfg.n_slots):
                if t > 0:
                    state = ar * state + innovation_scale * rng.standard_normal(n)
                field[day, t] = state
        # Spatial diffusion couples adjacent roads.
        flat = field.reshape(-1, n)
        for _ in range(cfg.spatial_passes):
            flat = flat @ self._smoother.T
        field = flat.reshape(cfg.n_days, cfg.n_slots, n)
        # Diffusion shrinks variance; restore unit scale per road so the
        # profile's fluctuation_kmh keeps its meaning as a std dev.
        std = field.reshape(-1, n).std(axis=0)
        std[std == 0] = 1.0
        return field / std

    def simulate(self, incidents: Optional[Sequence[Incident]] = None) -> SpeedHistory:
        """Generate a :class:`SpeedHistory`.

        Args:
            incidents: Explicit incident schedule.  When omitted and an
                :class:`IncidentModel` was supplied, incidents are drawn
                from it; otherwise no incidents occur.

        Returns:
            History covering ``config.n_days`` days and the configured
            slot window.
        """
        cfg = self._config
        rng = np.random.default_rng(cfg.seed)
        deviations = self._deviation_field(rng)
        speeds = self._mean[None, :, :] + self._fluct[None, :, :] * deviations
        if cfg.weekend_factor < 1.0:
            # Weekly cycle: on weekends the congestion dip below free
            # flow shrinks (lighter commuter traffic).
            free = np.array([road.free_flow_kmh for road in self._network.roads])
            for day in range(cfg.n_days):
                if cfg.is_weekend(day):
                    dip = free[None, :] - speeds[day]
                    speeds[day] = free[None, :] - cfg.weekend_factor * dip
        if incidents is None and self._incident_model is not None:
            incidents = self._incident_model.sample(cfg.n_days, cfg.n_slots, rng)
        if incidents:
            factor = (
                self._incident_model
                or IncidentModel(self._network, rate_per_day=0.0)
            ).slowdown_field(incidents, cfg.n_days, cfg.n_slots)
            speeds = speeds * factor
        speeds = np.maximum(speeds, cfg.min_speed_kmh)
        return SpeedHistory(
            speeds.astype(np.float32), self._network.road_ids, cfg.slot_start
        )
