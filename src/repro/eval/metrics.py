"""Estimation-quality metrics (paper §VII-C).

* APE — absolute percentage error ``|ŷ - y| / y``;
* MAPE — mean APE over the testing cases;
* FER — false-estimation rate: fraction of cases with APE above a
  threshold φ (the paper uses φ = 0.2);
* DAPE — the distribution (histogram) of APE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError

#: The paper's false-estimation threshold φ.
DEFAULT_FER_THRESHOLD = 0.2

#: Default DAPE bin edges (fractions of the ground truth).
DEFAULT_DAPE_BINS: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1.0)


def _validate(estimates: np.ndarray, truths: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    estimates = np.asarray(estimates, dtype=np.float64).ravel()
    truths = np.asarray(truths, dtype=np.float64).ravel()
    if estimates.shape != truths.shape:
        raise ExperimentError(
            f"estimates {estimates.shape} and truths {truths.shape} differ in shape"
        )
    if estimates.size == 0:
        raise ExperimentError("no testing cases supplied")
    if np.any(truths <= 0):
        raise ExperimentError("ground-truth speeds must be strictly positive")
    if np.any(~np.isfinite(estimates)):
        raise ExperimentError("estimates contain NaN or infinity")
    return estimates, truths


def absolute_percentage_errors(estimates: np.ndarray, truths: np.ndarray) -> np.ndarray:
    """APE per testing case: ``|ŷ - y| / y``."""
    estimates, truths = _validate(estimates, truths)
    return np.abs(estimates - truths) / truths


def mean_absolute_percentage_error(estimates: np.ndarray, truths: np.ndarray) -> float:
    """MAPE over all testing cases."""
    return float(absolute_percentage_errors(estimates, truths).mean())


def false_estimation_rate(
    estimates: np.ndarray,
    truths: np.ndarray,
    threshold: float = DEFAULT_FER_THRESHOLD,
) -> float:
    """Fraction of testing cases whose APE exceeds ``threshold``."""
    if threshold <= 0:
        raise ExperimentError(f"threshold must be positive, got {threshold}")
    ape = absolute_percentage_errors(estimates, truths)
    return float((ape > threshold).mean())


def dape_histogram(
    estimates: np.ndarray,
    truths: np.ndarray,
    bins: Sequence[float] = DEFAULT_DAPE_BINS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Distribution of APE over the given bin edges.

    Returns:
        ``(fractions, edges)`` where ``fractions`` has one entry per bin
        plus a final overflow bin for APE above the last edge, and sums
        to 1.
    """
    edges = np.asarray(list(bins), dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2 or np.any(np.diff(edges) <= 0):
        raise ExperimentError(f"bins must be strictly increasing edges, got {bins}")
    ape = absolute_percentage_errors(estimates, truths)
    counts, _ = np.histogram(ape, bins=np.append(edges, np.inf))
    return counts / ape.size, edges


@dataclass(frozen=True)
class ErrorSummary:
    """All quality metrics of one evaluation run.

    Attributes:
        n_cases: Number of testing cases.
        mape: Mean absolute percentage error.
        fer: False estimation rate at :data:`DEFAULT_FER_THRESHOLD`.
        dape: APE histogram fractions (with overflow bin).
        dape_edges: Histogram bin edges.
        max_ape: Worst-case APE.
    """

    n_cases: int
    mape: float
    fer: float
    dape: Tuple[float, ...]
    dape_edges: Tuple[float, ...]
    max_ape: float


def summarize_errors(
    estimates: np.ndarray,
    truths: np.ndarray,
    fer_threshold: float = DEFAULT_FER_THRESHOLD,
    dape_bins: Sequence[float] = DEFAULT_DAPE_BINS,
) -> ErrorSummary:
    """Compute MAPE, FER and DAPE in one pass."""
    ape = absolute_percentage_errors(estimates, truths)
    fractions, edges = dape_histogram(estimates, truths, dape_bins)
    return ErrorSummary(
        n_cases=int(ape.size),
        mape=float(ape.mean()),
        fer=float((ape > fer_threshold).mean()),
        dape=tuple(float(f) for f in fractions),
        dape_edges=tuple(float(e) for e in edges),
        max_ape=float(ape.max()),
    )
