"""Evaluation metrics and coverage statistics (paper §VII)."""

from repro.eval.metrics import (
    DEFAULT_FER_THRESHOLD,
    absolute_percentage_errors,
    dape_histogram,
    false_estimation_rate,
    mean_absolute_percentage_error,
    summarize_errors,
    ErrorSummary,
)
from repro.eval.coverage import k_hop_coverage, coverage_report
from repro.eval.calibration import ThetaCalibrationResult, tune_theta
from repro.eval.significance import BootstrapResult, paired_bootstrap

__all__ = [
    "BootstrapResult",
    "paired_bootstrap",
    "ThetaCalibrationResult",
    "tune_theta",
    "DEFAULT_FER_THRESHOLD",
    "absolute_percentage_errors",
    "dape_histogram",
    "false_estimation_rate",
    "mean_absolute_percentage_error",
    "summarize_errors",
    "ErrorSummary",
    "k_hop_coverage",
    "coverage_report",
]
