"""Redundancy-threshold (θ) calibration.

The paper says θ "can be appropriately tuned through the exploration of
historical data [30]" but gives no procedure.  This module implements
the natural one: hold out some historical days, replay the online loop
for each candidate θ, and keep the θ with the lowest held-out MAPE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.core.pipeline import CrowdRTSE
from repro.core.request import EstimationRequest
from repro.crowd.market import CrowdMarket
from repro.datasets.bundle import Dataset, truth_oracle_for
from repro.eval.metrics import mean_absolute_percentage_error


@dataclass(frozen=True)
class ThetaCalibrationResult:
    """Outcome of a θ sweep.

    Attributes:
        best_theta: The θ with the lowest mean held-out MAPE.
        mape_by_theta: Mean MAPE per candidate θ.
        objective_by_theta: Mean OCS objective per candidate θ (shows
            how much the constraint binds).
        n_selected_by_theta: Mean |R^c| per candidate θ.
    """

    best_theta: float
    mape_by_theta: Dict[float, float]
    objective_by_theta: Dict[float, float]
    n_selected_by_theta: Dict[float, float]


def tune_theta(
    data: Dataset,
    system: CrowdRTSE,
    budget: float,
    candidates: Sequence[float] = (0.7, 0.8, 0.9, 0.92, 0.95, 1.0),
    n_validation_days: int = 3,
    selector: str = "hybrid",
    seed: int = 0,
) -> ThetaCalibrationResult:
    """Pick θ by replaying queries on held-out validation days.

    Validation days are taken from the *training* history's tail (never
    the test split), so tuning stays honest.

    Args:
        data: Dataset bundle.
        system: Fitted CrowdRTSE (trained on ``data.train_history``).
        budget: Budget K the deployment will use.
        candidates: θ values to try; each must be in (0, 1].
        n_validation_days: Held-out days replayed per candidate.
        selector: OCS solver to replay with.
        seed: RNG seed for the markets.

    Returns:
        A :class:`ThetaCalibrationResult`.

    Raises:
        ExperimentError: On an empty/invalid candidate list or when the
            training history has too few days.
    """
    if not candidates:
        raise ExperimentError("candidate thetas must not be empty")
    for theta in candidates:
        if not 0.0 < theta <= 1.0:
            raise ExperimentError(f"theta {theta} outside (0, 1]")
    if n_validation_days < 1:
        raise ExperimentError("n_validation_days must be >= 1")
    if data.train_history.n_days <= n_validation_days:
        raise ExperimentError(
            f"training history has {data.train_history.n_days} days; cannot "
            f"hold out {n_validation_days}"
        )

    validation_days = range(
        data.train_history.n_days - n_validation_days, data.train_history.n_days
    )
    mape_by_theta: Dict[float, float] = {}
    objective_by_theta: Dict[float, float] = {}
    n_selected_by_theta: Dict[float, float] = {}
    for theta in candidates:
        errors: List[float] = []
        objectives: List[float] = []
        sizes: List[int] = []
        for day in validation_days:
            market = CrowdMarket(
                data.network,
                data.pool,
                data.cost_model,
                rng=np.random.default_rng(seed + day),
            )
            truth = truth_oracle_for(data.train_history, day, data.slot)
            result = system.answer_query(
                EstimationRequest(
                    queried=data.queried,
                    slot=data.slot,
                    budget=budget,
                    theta=theta,
                    selector=selector,
                    rng=np.random.default_rng(seed + day),
                    warm_start=False,
                ),
                market=market,
                truth=truth,
            )
            truths = np.array([truth(q) for q in data.queried])
            errors.append(
                mean_absolute_percentage_error(result.estimates_kmh, truths)
            )
            objectives.append(result.selection.objective)
            sizes.append(len(result.selection.selected))
        mape_by_theta[theta] = float(np.mean(errors))
        objective_by_theta[theta] = float(np.mean(objectives))
        n_selected_by_theta[theta] = float(np.mean(sizes))

    best_theta = min(mape_by_theta, key=lambda t: mape_by_theta[t])
    return ThetaCalibrationResult(
        best_theta=best_theta,
        mape_by_theta=mape_by_theta,
        objective_by_theta=objective_by_theta,
        n_selected_by_theta=n_selected_by_theta,
    )
