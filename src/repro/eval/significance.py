"""Statistical significance of estimator comparisons.

Experiment tables report mean errors; with a handful of test days the
reader should know whether "GSP beats LASSO" survives sampling noise.
:func:`paired_bootstrap` implements the standard paired bootstrap over
testing cases for the difference in MAPE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ExperimentError
from repro.eval.metrics import absolute_percentage_errors


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of a paired bootstrap comparison.

    Attributes:
        mean_difference: Mean APE(a) − APE(b); negative favours ``a``.
        ci_low / ci_high: Percentile confidence interval bounds.
        p_value: Two-sided bootstrap p-value for "no difference".
        n_cases: Paired testing cases.
        n_resamples: Bootstrap resamples drawn.
    """

    mean_difference: float
    ci_low: float
    ci_high: float
    p_value: float
    n_cases: int
    n_resamples: int

    @property
    def significant(self) -> bool:
        """True when the 95% CI excludes zero."""
        return self.ci_low > 0 or self.ci_high < 0


def paired_bootstrap(
    estimates_a: np.ndarray,
    estimates_b: np.ndarray,
    truths: np.ndarray,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: Optional[int] = 0,
) -> BootstrapResult:
    """Paired bootstrap of the APE difference between two estimators.

    Args:
        estimates_a: First estimator's answers (e.g. GSP).
        estimates_b: Second estimator's answers on the same cases.
        truths: Ground truths, aligned with both.
        n_resamples: Bootstrap resamples.
        confidence: CI level.
        seed: RNG seed.

    Returns:
        A :class:`BootstrapResult`; ``mean_difference < 0`` means the
        first estimator has the lower error.
    """
    if n_resamples < 10:
        raise ExperimentError("n_resamples must be >= 10")
    if not 0.0 < confidence < 1.0:
        raise ExperimentError("confidence must be in (0, 1)")
    ape_a = absolute_percentage_errors(estimates_a, truths)
    ape_b = absolute_percentage_errors(estimates_b, truths)
    if ape_a.shape != ape_b.shape:
        raise ExperimentError("both estimators must cover the same cases")
    differences = ape_a - ape_b
    n = differences.size
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, n, size=(n_resamples, n))
    resampled_means = differences[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    ci_low, ci_high = np.quantile(resampled_means, [alpha, 1.0 - alpha])
    observed = float(differences.mean())
    # Two-sided p-value: how often a centred resample is as extreme.
    centred = resampled_means - resampled_means.mean()
    p_value = float(np.mean(np.abs(centred) >= abs(observed)))
    return BootstrapResult(
        mean_difference=observed,
        ci_low=float(ci_low),
        ci_high=float(ci_high),
        p_value=p_value,
        n_cases=n,
        n_resamples=n_resamples,
    )
