"""k-hop coverage of the queried roads (paper Table III).

A queried road is *k-hop covered* by the crowdsourced selection when it
lies within ``k`` hops of at least one crowdsourced road.  The paper
reports 1-hop and 2-hop coverage to explain why Hybrid-Greedy's
selections propagate better.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import ExperimentError
from repro.network.graph import TrafficNetwork


def k_hop_coverage(
    network: TrafficNetwork,
    crowdsourced: Sequence[int],
    queried: Sequence[int],
    k: int,
) -> int:
    """Number of queried roads within ``k`` hops of the selection.

    A crowdsourced road that is itself queried counts as covered
    (distance 0).

    Args:
        network: Road graph.
        crowdsourced: Selected roads ``R^c``.
        queried: Queried roads ``R^q``.
        k: Hop radius (>= 0).
    """
    if k < 0:
        raise ExperimentError(f"k must be >= 0, got {k}")
    if not queried:
        raise ExperimentError("queried set must not be empty")
    if not crowdsourced:
        return 0
    distances = network.hop_distances(list(crowdsourced))
    return sum(
        1 for q in queried if distances[q] is not None and distances[q] <= k
    )


def coverage_report(
    network: TrafficNetwork,
    crowdsourced: Sequence[int],
    queried: Sequence[int],
    max_hops: int = 2,
) -> Dict[int, int]:
    """Coverage counts for every radius ``0..max_hops``.

    Returns a dict ``{k: covered_count}`` — Table III reports k = 1, 2.
    """
    if max_hops < 0:
        raise ExperimentError(f"max_hops must be >= 0, got {max_hops}")
    return {
        k: k_hop_coverage(network, crowdsourced, queried, k)
        for k in range(max_hops + 1)
    }
