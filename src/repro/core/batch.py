"""Batched query answering: many concurrent queries, one crowd probe.

A deployed RTSE service receives many queries per 5-minute slot.  Naively
running Fig. 1's loop per query wastes budget: two queries about nearby
roads would buy the same probes twice.  :func:`answer_batch` pools the
queries — one OCS instance over the *union* of queried roads (each
road's periodicity weight counted once, however many queries want it),
one crowd probe, one GSP propagation — then slices per-query answers out
of the shared field.

This is an extension beyond the paper (which treats one query at a
time); the batched loop strictly dominates the sequential one at equal
total budget, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SelectionError
from repro.core.gsp import GSPConfig
from repro.core.pipeline import CrowdRTSE, QueryResult
from repro.core.request import EstimationRequest
from repro.crowd.market import CrowdMarket, TruthOracle


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a pooled multi-query round.

    Attributes:
        shared: The pooled :class:`QueryResult` over the union of
            queried roads.
        per_query: One estimate array per input query, aligned with the
            input order.
    """

    shared: QueryResult
    per_query: Tuple[np.ndarray, ...]

    @property
    def budget_spent(self) -> int:
        """Units paid for the whole batch."""
        return self.shared.budget_spent


def answer_batch(
    system: CrowdRTSE,
    queries: Sequence[Sequence[int]],
    slot: int,
    budget: float,
    market: CrowdMarket,
    truth: TruthOracle,
    theta: float = 0.92,
    selector: str = "hybrid",
    gsp_config: Optional[GSPConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> BatchResult:
    """Answer several queries with one pooled crowdsourcing round.

    Args:
        system: Fitted CrowdRTSE.
        queries: The concurrent queries' road sets (each non-empty).
        slot: Query time slot.
        budget: Total budget for the whole batch.
        market: Crowd marketplace.
        truth: Ground-truth oracle for the simulated workers.
        theta: Redundancy threshold.
        selector: OCS solver name.
        gsp_config: Propagation knobs.
        rng: RNG for the random selector.

    Returns:
        A :class:`BatchResult`.

    Raises:
        SelectionError: On an empty batch or an empty query.
    """
    if not queries:
        raise SelectionError("query batch must not be empty")
    for k, query in enumerate(queries):
        if not query:
            raise SelectionError(f"query {k} is empty")
    union: List[int] = sorted({int(r) for query in queries for r in query})
    shared = system.answer_query(
        EstimationRequest(
            queried=union,
            slot=slot,
            budget=budget,
            theta=theta,
            selector=selector,
            rng=rng,
            warm_start=False,
        ),
        market=market,
        truth=truth,
        gsp_config=gsp_config,
    )
    per_query = tuple(
        shared.full_field_kmh[np.asarray([int(r) for r in query], dtype=int)]
        for query in queries
    )
    return BatchResult(shared=shared, per_query=per_query)


def sequential_baseline(
    system: CrowdRTSE,
    queries: Sequence[Sequence[int]],
    slot: int,
    budget: float,
    market: CrowdMarket,
    truth: TruthOracle,
    theta: float = 0.92,
    selector: str = "hybrid",
    rng: Optional[np.random.Generator] = None,
) -> Tuple[List[np.ndarray], int]:
    """The naive per-query loop with the *same total* budget, split evenly.

    Provided for comparison benches: returns per-query estimates and the
    total units spent.
    """
    if not queries:
        raise SelectionError("query batch must not be empty")
    share = budget / len(queries)
    if share < 1:
        raise SelectionError(
            f"budget {budget} too small to split over {len(queries)} queries"
        )
    estimates: List[np.ndarray] = []
    spent = 0
    for query in queries:
        result = system.answer_query(
            EstimationRequest(
                queried=query,
                slot=slot,
                budget=share,
                theta=theta,
                selector=selector,
                rng=rng,
                warm_start=False,
            ),
            market=market,
            truth=truth,
        )
        estimates.append(result.estimates_kmh)
        spent += result.budget_spent
    return estimates, spent
