"""Per-road uncertainty of GSP estimates.

GSP returns the GMRF conditional *mean*; the same model also yields the
conditional *variance* of every non-probed road — how much the estimate
should be trusted.  The marginal variances are the diagonal of the
inverse of the conditional precision matrix built in
:mod:`repro.core.exact_inference`.

Use cases: flagging low-confidence answers to the user, and a
"where would another probe help most" diagnostic that complements OCS
(the road with the largest posterior variance is the natural next
probe).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np
import scipy.sparse.linalg as spla

from repro.errors import ModelError
from repro.core.exact_inference import conditional_system
from repro.core.rtf import RTFSlot
from repro.network.graph import TrafficNetwork


def conditional_variances(
    network: TrafficNetwork,
    params: RTFSlot,
    observed: Mapping[int, float],
) -> np.ndarray:
    """Posterior marginal variance per road given the probes.

    Probed roads get variance 0 (they are clamped).  For the free roads
    the variances are ``diag(A^{-1})`` of the conditional precision
    ``A``; computed by one sparse LU factorization and one solve per
    free road (adequate up to a few thousand roads).

    Args:
        network: Road graph.
        params: RTF slot parameters.
        observed: Probed speeds keyed by road index.

    Returns:
        Array of shape ``(n_roads,)`` of variances (km/h)^2.
    """
    matrix, _, free = conditional_system(network, params, observed)
    variances = np.zeros(network.n_roads)
    if free.size == 0:
        return variances
    solver = spla.splu(matrix.tocsc())
    identity = np.eye(free.size)
    # Column-by-column solve; for moderate n this is the simplest exact
    # route to diag(A^-1).
    inverse_diag = np.empty(free.size)
    for k in range(free.size):
        inverse_diag[k] = solver.solve(identity[:, k])[k]
    variances[free] = inverse_diag
    if np.any(variances < -1e-9):
        raise ModelError("negative posterior variance: precision not PD")
    return np.maximum(variances, 0.0)


def confidence_intervals(
    network: TrafficNetwork,
    params: RTFSlot,
    observed: Mapping[int, float],
    speeds: np.ndarray,
    z: float = 1.96,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian confidence band around a GSP/exact estimate.

    Args:
        network: Road graph.
        params: RTF slot parameters.
        observed: The probes that produced ``speeds``.
        speeds: Estimated speed field (conditional mean).
        z: Normal quantile (1.96 → 95%).

    Returns:
        ``(low, high)`` arrays; probed roads collapse to their value.
    """
    speeds = np.asarray(speeds, dtype=np.float64)
    if speeds.shape != (network.n_roads,):
        raise ModelError(
            f"speeds must have shape ({network.n_roads},), got {speeds.shape}"
        )
    if z <= 0:
        raise ModelError("z must be positive")
    std = np.sqrt(conditional_variances(network, params, observed))
    return speeds - z * std, speeds + z * std


def most_uncertain_roads(
    network: TrafficNetwork,
    params: RTFSlot,
    observed: Mapping[int, float],
    k: int = 5,
) -> Dict[int, float]:
    """The ``k`` roads with the largest posterior variance.

    These are the roads where one more crowd probe buys the most
    information — a per-query complement to OCS's offline weighting.
    """
    if k < 1:
        raise ModelError("k must be >= 1")
    variances = conditional_variances(network, params, observed)
    order = np.argsort(-variances)[:k]
    return {int(i): float(variances[i]) for i in order if variances[i] > 0}
