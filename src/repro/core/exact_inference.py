"""Exact conditional inference for the RTF model.

GSP (Alg. 5) maximizes Eq. 16 by coordinate ascent.  The paper calls the
objective non-convex, but for fixed parameters it is a *negative-definite
quadratic* in the free speeds: each term of Eq. 5 is a concave parabola.
Its maximizer therefore solves one sparse linear system — the classic
GMRF conditional mean.  This module builds that system explicitly:

* a correctness oracle for GSP (the fixed point of Eq. 18 must equal the
  exact solution — asserted in the tests), and
* a runtime comparator (direct sparse solve vs iterative propagation,
  reported by the ablation bench).

Setting the gradient of Eq. 5 w.r.t. a free ``v_i`` to zero gives

.. math::

    \\Big(\\tfrac{1}{\\sigma_i^2} + \\sum_{j\\in n(i)} \\tfrac{1}{\\sigma_{ij}^2}\\Big) v_i
    - \\sum_{j\\in n(i)} \\tfrac{1}{\\sigma_{ij}^2} v_j
    = \\tfrac{\\mu_i}{\\sigma_i^2} + \\sum_{j\\in n(i)} \\tfrac{\\mu_{ij}}{\\sigma_{ij}^2}

with observed neighbours moved to the right-hand side.

Fidelity note: the paper's joint Eq. 5 sums every edge term twice (once
per endpoint), but the Eq. 18 update is derived from the *conditional*
Eq. 4, where each edge appears once — the two differ by a factor of two
on the correlation terms.  Alg. 5 implements Eq. 18, so this module (and
GSP) maximize the single-count joint :func:`pseudo_objective`; the
difference merely re-weights prior vs neighbour pull and does not change
the structure of the solution.
"""

from __future__ import annotations

from typing import Mapping, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import ModelError
from repro.core.rtf import RTFSlot
from repro.network.graph import TrafficNetwork


def conditional_system(
    network: TrafficNetwork,
    params: RTFSlot,
    observed: Mapping[int, float],
) -> Tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
    """Build the linear system ``A v_free = b`` of the exact maximizer.

    Args:
        network: Road graph.
        params: RTF slot parameters.
        observed: Probed speeds keyed by road index.

    Returns:
        ``(A, b, free)`` where ``free`` lists the non-observed road
        indices in the order of the system's unknowns.

    Raises:
        ModelError: On invalid observed entries.
    """
    params.check_against(network)
    n = network.n_roads
    for road, value in observed.items():
        if not 0 <= road < n:
            raise ModelError(f"observed road {road} outside 0..{n - 1}")
        if not np.isfinite(value) or value <= 0:
            raise ModelError(f"observed value for road {road} must be positive")
    free = np.array([i for i in range(n) if i not in observed], dtype=int)
    position = {int(road): k for k, road in enumerate(free)}

    sigma2 = params.sigma * params.sigma
    edge_var = params.edge_variance(network)
    mu = params.mu

    diag = np.zeros(free.size)
    rhs = np.zeros(free.size)
    rows = []
    cols = []
    vals = []
    for k, i in enumerate(free):
        diag[k] = 1.0 / sigma2[i]
        rhs[k] = mu[i] / sigma2[i]
        for j in network.neighbors(int(i)):
            w = 1.0 / edge_var[network.edge_id(int(i), int(j))]
            diag[k] += w
            rhs[k] += (mu[i] - mu[j]) * w
            if j in position:
                rows.append(k)
                cols.append(position[j])
                vals.append(-w)
            else:
                rhs[k] += w * float(observed[int(j)])
    matrix = sp.csr_matrix((vals, (rows, cols)), shape=(free.size, free.size))
    matrix = matrix + sp.diags(diag)
    return matrix.tocsr(), rhs, free


def pseudo_objective(
    network: TrafficNetwork,
    params: RTFSlot,
    speeds: np.ndarray,
) -> float:
    """The joint objective whose coordinate maximization is Eq. 18.

    Identical to :meth:`RTFSlot.log_likelihood` except each edge term is
    counted once (matching Eq. 4/18) rather than twice (Eq. 5's double
    sum); see the module docstring.
    """
    speeds = np.asarray(speeds, dtype=np.float64)
    params.check_against(network)
    if speeds.shape != (network.n_roads,):
        raise ModelError(
            f"speeds must have shape ({network.n_roads},), got {speeds.shape}"
        )
    periodic = float(np.sum(((speeds - params.mu) / params.sigma) ** 2))
    corr = 0.0
    if network.edges:
        ei, ej = np.array(network.edges).T
        resid = (speeds[ei] - speeds[ej]) - params.edge_mu(network)
        corr = float(np.sum(resid * resid / params.edge_variance(network)))
    return -(periodic + corr)


def exact_conditional_mean(
    network: TrafficNetwork,
    params: RTFSlot,
    observed: Mapping[int, float],
) -> np.ndarray:
    """The exact maximizer of Eq. 16: the GMRF conditional mean.

    Returns:
        Speeds for all roads; observed roads keep their probed values.
    """
    matrix, rhs, free = conditional_system(network, params, observed)
    speeds = params.mu.astype(np.float64).copy()
    for road, value in observed.items():
        speeds[road] = float(value)
    if free.size:
        speeds[free] = spla.spsolve(matrix, rhs)
    return speeds


def gsp_optimality_gap(
    network: TrafficNetwork,
    params: RTFSlot,
    observed: Mapping[int, float],
    gsp_speeds: np.ndarray,
) -> float:
    """Max absolute difference between a GSP result and the exact optimum.

    Small values certify that propagation converged to the true Eq. 16
    maximizer (the objective is a concave quadratic, so the optimum is
    unique whenever every road has positive prior precision).
    """
    gsp_speeds = np.asarray(gsp_speeds, dtype=np.float64)
    if gsp_speeds.shape != (network.n_roads,):
        raise ModelError(
            f"gsp_speeds must have shape ({network.n_roads},), got {gsp_speeds.shape}"
        )
    exact = exact_conditional_mean(network, params, observed)
    return float(np.max(np.abs(exact - gsp_speeds)))
