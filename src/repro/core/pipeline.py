"""The CrowdRTSE facade — the hybrid offline/online workflow of Fig. 1.

Offline, :meth:`CrowdRTSE.fit` trains the RTF model from history and
precomputes the correlation table Γ_R.  Online, :meth:`answer_query`
runs the three-step loop: OCS selects the crowdsourced roads, the crowd
market probes them, and GSP propagates the probes into a full-network
speed field from which the queried roads are answered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError, SelectionError
from repro.obs import DEFAULT_TIME_BUCKETS, get_metrics, get_tracer
from repro.core.correlation import CorrelationTable, PathWeightMode
from repro.core.gsp import GSPConfig, GSPEngine, GSPResult
from repro.core.inference import RTFInferenceConfig, fit_rtf
from repro.core.ocs import (
    OCSInstance,
    OCSResult,
    hybrid_greedy,
    objective_greedy,
    random_selection,
    ratio_greedy,
    trivial_solution,
)
from repro.core.rtf import RTFModel
from repro.crowd.market import BudgetLedger, CrowdMarket, ProbeReceipt, TruthOracle
from repro.network.graph import TrafficNetwork
from repro.traffic.history import SpeedHistory

#: Named OCS solvers accepted by :meth:`CrowdRTSE.answer_query`.
SELECTORS: Mapping[str, Callable[[OCSInstance], OCSResult]] = {
    "hybrid": hybrid_greedy,
    "ratio": ratio_greedy,
    "objective": objective_greedy,
}


@dataclass(frozen=True)
class QueryResult:
    """Answer to one realtime traffic-speed query.

    Attributes:
        queried: Queried road indices, in request order.
        estimates_kmh: Estimated speed per queried road, aligned with
            ``queried``.
        full_field_kmh: Inferred speed for every road in the network.
        selection: The OCS outcome (which roads were crowdsourced).
        probes: Aggregated crowd answers per crowdsourced road.
        receipts: Detailed probe receipts (answers, payments).
        gsp: The propagation diagnostics.
        budget_spent: Units actually paid.
    """

    queried: Tuple[int, ...]
    estimates_kmh: np.ndarray
    full_field_kmh: np.ndarray
    selection: OCSResult
    probes: Dict[int, float]
    receipts: Tuple[ProbeReceipt, ...]
    gsp: GSPResult
    budget_spent: int

    def estimate_of(self, road_index: int) -> float:
        """Estimated speed of one queried road."""
        try:
            pos = self.queried.index(road_index)
        except ValueError:
            raise ModelError(f"road {road_index} was not part of the query") from None
        return float(self.estimates_kmh[pos])


class CrowdRTSE:
    """End-to-end CrowdRTSE system (paper Fig. 1).

    Build it offline with :meth:`fit` (or construct directly from a
    fitted :class:`RTFModel` and :class:`CorrelationTable`), then answer
    queries online with :meth:`answer_query`.
    """

    def __init__(
        self,
        network: TrafficNetwork,
        model: RTFModel,
        correlations: CorrelationTable,
    ) -> None:
        if model.network is not network and model.network != network:
            raise ModelError("model was fitted on a different network")
        if correlations.network is not network and correlations.network != network:
            raise ModelError("correlation table belongs to a different network")
        self._network = network
        self._model = model
        self._correlations = correlations
        # One engine per system: repeated queries share the cached CSR
        # structures and BFS/colouring compilations across slots.
        self._gsp_engine = GSPEngine(network)

    @classmethod
    def fit(
        cls,
        network: TrafficNetwork,
        history: SpeedHistory,
        slots: Optional[Sequence[int]] = None,
        inference_config: Optional[RTFInferenceConfig] = None,
        path_mode: PathWeightMode = PathWeightMode.LOG,
    ) -> "CrowdRTSE":
        """Offline stage: train RTF and precompute Γ_R.

        Args:
            network: Road graph.
            history: Offline speed record.
            slots: Slots to fit (default: all covered by the history).
            inference_config: Alg. 1 knobs.
            path_mode: Path-weight transform for the correlation table.
        """
        model, _ = fit_rtf(network, history, slots, inference_config)
        table = CorrelationTable.precompute(model, mode=path_mode)
        return cls(network, model, table)

    @property
    def network(self) -> TrafficNetwork:
        """The road graph."""
        return self._network

    @property
    def model(self) -> RTFModel:
        """The fitted RTF model."""
        return self._model

    @property
    def correlations(self) -> CorrelationTable:
        """The precomputed correlation table Γ_R."""
        return self._correlations

    @property
    def gsp_engine(self) -> GSPEngine:
        """The propagation engine (exposes cache stats for diagnostics)."""
        return self._gsp_engine

    # ------------------------------------------------------------------
    # Online stage
    # ------------------------------------------------------------------

    def build_ocs_instance(
        self,
        queried: Sequence[int],
        slot: int,
        budget: float,
        market: CrowdMarket,
        theta: float = 0.92,
    ) -> OCSInstance:
        """Assemble the OCS problem for one query.

        Candidates are the roads that currently have workers; costs come
        from the market's cost model; σ weights from the RTF slot.
        """
        candidates = market.candidate_roads()
        if not candidates:
            raise SelectionError("no roads currently have workers (R^w is empty)")
        params = self._model.slot(slot)
        return OCSInstance(
            queried=tuple(int(q) for q in queried),
            candidates=candidates,
            costs=market.cost_model.costs_of(candidates).astype(float),
            budget=float(budget),
            theta=theta,
            corr=self._correlations.matrix(slot),
            sigma=params.sigma,
        )

    def answer_query(
        self,
        queried: Sequence[int],
        slot: int,
        budget: float,
        market: CrowdMarket,
        truth: TruthOracle,
        theta: float = 0.92,
        selector: str = "hybrid",
        gsp_config: Optional[GSPConfig] = None,
        rng: Optional[np.random.Generator] = None,
        use_trivial_fast_path: bool = True,
    ) -> QueryResult:
        """Online stage: OCS → crowd probe → GSP → answer (Fig. 1).

        Args:
            queried: Queried road indices ``R^q``.
            slot: Global time slot of the query.
            budget: Crowdsourcing budget ``K``.
            market: The crowd marketplace.
            truth: Ground-truth oracle the (simulated) workers measure.
            theta: Redundancy threshold θ.
            selector: ``"hybrid"``, ``"ratio"``, ``"objective"`` or
                ``"random"``.
            gsp_config: Propagation knobs.
            rng: RNG for the random selector.
            use_trivial_fast_path: Apply Remark 2's closed-form optima
                when they apply (θ = 1, unit costs, over-adequate budget
                or few queried roads) instead of running the greedy.

        Returns:
            A :class:`QueryResult`.
        """
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span(
            "pipeline.answer_query",
            slot=int(slot),
            budget=float(budget),
            queried=len(queried),
            selector=selector,
        ) as query_span:
            instance = self.build_ocs_instance(queried, slot, budget, market, theta)
            with tracer.span("ocs.select", selector=selector) as select_span:
                selection: Optional[OCSResult] = None
                if use_trivial_fast_path and selector != "random":
                    selection = trivial_solution(instance)
                if selection is None:
                    if selector == "random":
                        selection = random_selection(instance, rng)
                    else:
                        try:
                            solve = SELECTORS[selector]
                        except KeyError:
                            raise SelectionError(
                                f"unknown selector {selector!r}; choose from "
                                f"{sorted(SELECTORS) + ['random']}"
                            ) from None
                        selection = solve(instance)
                select_span.set_attr("algorithm", selection.algorithm)
                select_span.set_attr("selected", len(selection.selected))

            ledger = BudgetLedger(budget)
            probes, receipts = market.probe(selection.selected, truth, ledger)

            params = self._model.slot(slot)
            gsp_result = self._gsp_engine.propagate(params, probes, gsp_config)

            queried_tuple = tuple(int(q) for q in queried)
            estimates = gsp_result.speeds[np.asarray(queried_tuple, dtype=int)]
            query_span.set_attr("budget_spent", ledger.spent)
            query_span.set_attr("gsp_sweeps", gsp_result.sweeps)
        self._record_query_metrics(
            selector, ledger, time.perf_counter() - start
        )
        return QueryResult(
            queried=queried_tuple,
            estimates_kmh=estimates,
            full_field_kmh=gsp_result.speeds,
            selection=selection,
            probes=probes,
            receipts=tuple(receipts),
            gsp=gsp_result,
            budget_spent=ledger.spent,
        )

    @staticmethod
    def _record_query_metrics(
        selector: str, ledger: BudgetLedger, latency_seconds: float
    ) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        labels = {"selector": selector}
        metrics.counter("pipeline.queries", labels).inc()
        metrics.histogram(
            "pipeline.latency_seconds", DEFAULT_TIME_BUCKETS, labels
        ).observe(latency_seconds)
        metrics.counter("pipeline.budget_spent").inc(ledger.spent)

    def propagate_slots(
        self,
        observations: Mapping[int, Mapping[int, float]],
        gsp_config: Optional[GSPConfig] = None,
    ) -> Dict[int, GSPResult]:
        """Propagate probe sets for several time slots in one call.

        Batched counterpart of the GSP step of :meth:`answer_query` —
        drivers that replay a day (or answer one query across adjacent
        slots) hand every slot's probes over at once and the engine
        shares its cached structures across the batch: the BFS layers /
        colourings are keyed by the observed set alone, so slots probing
        the same roads compile the schedule exactly once.

        Args:
            observations: Probed speeds per road, keyed by slot index;
                every slot must be fitted.
            gsp_config: Propagation knobs applied to every slot.

        Returns:
            The :class:`GSPResult` per slot, keyed like the input.
        """
        slots = list(observations)
        with get_tracer().span("pipeline.propagate_slots", slots=len(slots)):
            results = self._gsp_engine.propagate_batch(
                [(self._model.slot(t), observations[t]) for t in slots], gsp_config
            )
        return dict(zip(slots, results))
