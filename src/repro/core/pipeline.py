"""The CrowdRTSE facade — the hybrid offline/online workflow of Fig. 1.

Offline, :meth:`CrowdRTSE.fit` trains the RTF model from history and
publishes it as version 1 of a :class:`~repro.core.store.ModelStore`.
Online, :meth:`answer_query` runs the three-step loop — OCS selects the
crowdsourced roads, the crowd market probes them, and GSP propagates the
probes into a full-network speed field — against **one pinned
snapshot**, so a concurrent :meth:`refresh` (which publishes a new
model version copy-on-write) can never mix parameter generations inside
a single answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.errors import (
    ModelError,
    QueryTimeoutError,
    SelectionError,
    warn_deprecated_once,
    wrap_internal,
)
from repro.obs import DEFAULT_TIME_BUCKETS, get_metrics, get_tracer
from repro.core.correlation import CorrelationTable, PathWeightMode
from repro.core.gsp import GSPConfig, GSPEngine, GSPResult, PrecisionPolicy
from repro.core.request import EstimationRequest
from repro.core.inference import InferenceDiagnostics, RTFInferenceConfig, fit_rtf
from repro.core.ocs import (
    OCSInstance,
    OCSResult,
    hybrid_greedy,
    objective_greedy,
    random_selection,
    ratio_greedy,
    trivial_solution,
)
from repro.core.rtf import RTFModel
from repro.core.store import ModelSnapshot, ModelStore
from repro.crowd.market import BudgetLedger, CrowdMarket, ProbeReceipt, TruthOracle
from repro.network.graph import TrafficNetwork
from repro.traffic.history import SpeedHistory

if TYPE_CHECKING:  # pragma: no cover - circular-import guard (typing only)
    from repro.backends.base import BackendEstimate, EstimatorBackend

#: Named OCS solvers accepted by :meth:`CrowdRTSE.answer_query`.
SELECTORS: Mapping[str, Callable[[OCSInstance], OCSResult]] = {
    "hybrid": hybrid_greedy,
    "ratio": ratio_greedy,
    "objective": objective_greedy,
}


@dataclass(frozen=True)
class Deadline:
    """A per-request wall-clock budget over the OCS → probe → GSP span.

    Built from a relative budget with :meth:`after`; stages call
    :meth:`check` at their boundary and get a typed
    :class:`~repro.errors.QueryTimeoutError` once the budget is spent.
    Times are ``time.monotonic`` based, so a system clock step cannot
    expire (or resurrect) in-flight requests.
    """

    expires_at: float
    budget_seconds: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """Deadline ``seconds`` from now."""
        return cls(time.monotonic() + float(seconds), float(seconds))

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        """Whether the budget is already spent."""
        return self.remaining() <= 0.0

    def check(self, stage: str) -> None:
        """Raise :class:`QueryTimeoutError` when expired at ``stage``."""
        remaining = self.remaining()
        if remaining <= 0.0:
            raise QueryTimeoutError(
                stage, self.budget_seconds - remaining, self.budget_seconds
            )


@dataclass(frozen=True)
class QueryResult:
    """Answer to one realtime traffic-speed query.

    Attributes:
        queried: Queried road indices, in request order.
        estimates_kmh: Estimated speed per queried road, aligned with
            ``queried``.
        full_field_kmh: Inferred speed for every road in the network.
        selection: The OCS outcome (which roads were crowdsourced).
        probes: Aggregated crowd answers per crowdsourced road.
        receipts: Detailed probe receipts (answers, payments).
        gsp: The propagation diagnostics (``None`` when a non-GSP
            estimator backend produced the field; its diagnostics live
            in the backend's provenance instead).
        budget_spent: Units actually paid.
        model_version: Version of the :class:`ModelSnapshot` the whole
            answer was served from (0 for results assembled outside a
            store, e.g. in unit tests building the dataclass directly).
        backend: Registry name of the estimator backend that produced
            the field (``"rtf_gsp"`` for the paper's default pipeline).
    """

    queried: Tuple[int, ...]
    estimates_kmh: np.ndarray
    full_field_kmh: np.ndarray
    selection: OCSResult
    probes: Dict[int, float]
    receipts: Tuple[ProbeReceipt, ...]
    gsp: Optional[GSPResult]
    budget_spent: int
    model_version: int = 0
    backend: str = "rtf_gsp"

    def estimate_of(self, road_index: int) -> float:
        """Estimated speed of one queried road."""
        try:
            pos = self.queried.index(road_index)
        except ValueError:
            raise ModelError(f"road {road_index} was not part of the query") from None
        return float(self.estimates_kmh[pos])


@dataclass(frozen=True)
class PreparedQuery:
    """A query after OCS + probing, before GSP propagation.

    Intermediate product of :meth:`CrowdRTSE._select_and_probe`; the
    serving layer collects several of these off one pinned snapshot and
    propagates them in a single :meth:`GSPEngine.propagate_batch` call.
    """

    queried: Tuple[int, ...]
    slot: int
    selector: str
    selection: OCSResult
    probes: Dict[int, float]
    receipts: Tuple[ProbeReceipt, ...]
    ledger: BudgetLedger
    snapshot: ModelSnapshot


class CrowdRTSE:
    """End-to-end CrowdRTSE system (paper Fig. 1).

    Build it offline with :meth:`fit` (or hand it an existing
    :class:`~repro.core.store.ModelStore`), then answer queries online
    with :meth:`answer_query` and absorb new days with :meth:`refresh`.
    The engine itself is stateless between queries: all model state
    lives in the store's immutable snapshots, and each query pins one
    snapshot for its whole OCS → probe → GSP span.

    The legacy ``CrowdRTSE(network, model, correlations)`` form is still
    accepted: the model becomes version 1 of an internal store and the
    eager table seeds the correlation cache.  When the table's recorded
    parameter digests do not match the model (a stale Γ_R generation),
    construction emits a :class:`DeprecationWarning` and
    :meth:`answer_query` raises :class:`ModelError` for the mismatched
    slots instead of silently serving stale correlations.
    """

    def __init__(
        self,
        network: TrafficNetwork,
        model: Optional[RTFModel] = None,
        correlations: Optional[CorrelationTable] = None,
        *,
        store: Optional[ModelStore] = None,
    ) -> None:
        if store is not None:
            if model is not None or correlations is not None:
                raise ModelError(
                    "pass either a store or a model/correlations pair, not both"
                )
            if store.network is not network and store.network != network:
                raise ModelError("store belongs to a different network")
            self._store = store
            self._stale_slots: Set[int] = set()
        else:
            if model is None:
                raise ModelError("CrowdRTSE needs a model or a store")
            if model.network is not network and model.network != network:
                raise ModelError("model was fitted on a different network")
            mode = (
                correlations.mode if correlations is not None else PathWeightMode.LOG
            )
            self._store = ModelStore(model, path_mode=mode)
            self._stale_slots = self._adopt_table(network, correlations)
        self._network = network
        self._fit_diagnostics: Optional[Dict[int, InferenceDiagnostics]] = None
        # One engine per system: repeated queries share the cached CSR
        # structures and BFS/colouring compilations across slots.  The
        # structure cache is keyed by parameter digest, so a refresh
        # invalidates exactly the touched slots' compilations.
        self._gsp_engine = GSPEngine(network)

    def _adopt_table(
        self,
        network: TrafficNetwork,
        correlations: Optional[CorrelationTable],
    ) -> Set[int]:
        """Seed the store's Γ_R cache from an eager table; flag stale slots."""
        if correlations is None:
            return set()
        if correlations.network is not network and correlations.network != network:
            raise ModelError("correlation table belongs to a different network")
        snapshot = self._store.current()
        stale: Set[int] = set()
        for slot in correlations.slots:
            if slot not in snapshot:
                continue
            table_digest = correlations.digest(slot)
            model_digest = snapshot.digest(slot)
            if table_digest is not None and table_digest != model_digest:
                stale.add(slot)
                continue
            # Digest matches (or the table predates digests and is
            # trusted, as before): adopt the eager matrix so nothing is
            # re-derived.
            self._store.seed_correlation(model_digest, correlations.matrix(slot))
        if stale:
            # Once per process, like every deprecated surface (policy in
            # docs/API.md): a replay constructing hundreds of stale
            # systems should complain once, not per construction.
            warn_deprecated_once(
                "pipeline.legacy_model_table",
                f"correlation table is stale for slots {sorted(stale)} (derived "
                f"from a different parameter generation); constructing CrowdRTSE "
                f"from a mismatched model/table pair is deprecated and will be "
                f"rejected in v2.0 — refresh the slots through the ModelStore "
                f"instead.  answer_query will raise ModelError for these slots.",
                stacklevel=4,
            )
        return stale

    @classmethod
    def fit(
        cls,
        network: TrafficNetwork,
        history: SpeedHistory,
        slots: Optional[Sequence[int]] = None,
        inference_config: Optional[RTFInferenceConfig] = None,
        path_mode: PathWeightMode = PathWeightMode.LOG,
    ) -> "CrowdRTSE":
        """Offline stage: train RTF and publish it as store version 1.

        Correlation matrices Γ_R are **not** materialized here any more;
        they are derived lazily per slot on first use, keyed by the
        slot's parameter digest (see
        :meth:`~repro.core.store.ModelSnapshot.correlation_matrix`).

        Args:
            network: Road graph.
            history: Offline speed record.
            slots: Slots to fit (default: all covered by the history).
            inference_config: Alg. 1 knobs.
            path_mode: Path-weight transform for correlation derivation.
        """
        model, diagnostics = fit_rtf(network, history, slots, inference_config)
        system = cls(network, store=ModelStore(model, path_mode=path_mode))
        system._fit_diagnostics = dict(diagnostics)
        return system

    @property
    def network(self) -> TrafficNetwork:
        """The road graph."""
        return self._network

    @property
    def store(self) -> ModelStore:
        """The versioned model store serving this system."""
        return self._store

    @property
    def model(self) -> RTFModel:
        """The current snapshot's parameters as an :class:`RTFModel` view."""
        return self._store.current().model

    @property
    def correlations(self) -> CorrelationTable:
        """Lazy Γ_R table view over the current snapshot."""
        return self._store.current().correlations

    @property
    def fit_diagnostics(self) -> Optional[Dict[int, InferenceDiagnostics]]:
        """Per-slot Alg. 1 convergence diagnostics from :meth:`fit`.

        ``None`` when the system was constructed from an existing model
        or store rather than fitted here.
        """
        return self._fit_diagnostics

    @property
    def gsp_engine(self) -> GSPEngine:
        """The propagation engine (exposes cache stats for diagnostics)."""
        return self._gsp_engine

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def refresh(
        self,
        day_samples: Mapping[int, np.ndarray],
        learning_rate: float = 0.05,
    ) -> ModelSnapshot:
        """Absorb one day of speeds and publish a new model version.

        End-to-end wiring of
        :class:`~repro.core.online_update.OnlineRTFUpdater`: moments of
        the touched slots are advanced, correlations re-derive lazily
        for exactly those slots (new digests), and GSP structure caches
        stay warm for every untouched slot.  Queries running
        concurrently keep their pinned snapshot; queries started after
        this call see the new version.

        Args:
            day_samples: Today's per-road speed vector per global slot.
            learning_rate: Forgetting factor η in (0, 1).

        Returns:
            The freshly published snapshot.
        """
        snapshot = self._store.refresh(day_samples, learning_rate)
        # A refreshed slot's parameters now own their (lazily derived)
        # correlations again, clearing any stale-table deprecation trap.
        self._stale_slots -= set(day_samples)
        return snapshot

    # ------------------------------------------------------------------
    # Estimator backends
    # ------------------------------------------------------------------

    def attach_backend(
        self,
        name: str,
        history: Optional[SpeedHistory] = None,
        state: Optional[object] = None,
        backend: Optional["EstimatorBackend"] = None,
    ) -> ModelSnapshot:
        """Fit (or adopt) an estimator backend and attach it to the store.

        After attaching, :meth:`answer_query` accepts ``backend=name``,
        :meth:`refresh` advances the backend's state blob alongside the
        RTF slots, and the serving layer can select (or shadow-score)
        the backend per request.

        Args:
            name: Registry name (see
                :func:`repro.backends.available_backends`).
            history: Offline record to fit the initial state from; the
                backend fits exactly the store's currently fitted slots.
            state: Pre-fitted state blob to adopt instead of fitting.
            backend: Pre-built backend instance (default: instantiate
                from the registry for this system's network).

        Returns:
            The freshly published :class:`ModelSnapshot` carrying the
            backend state.
        """
        # Imported lazily: repro.backends imports core modules for its
        # adapters, so a module-level import here would be circular.
        from repro.backends.registry import create_backend

        if backend is None:
            backend = create_backend(name, self._network)
        if state is None:
            if history is None:
                raise ModelError(
                    f"attach_backend({name!r}) needs a history to fit from "
                    f"or a pre-fitted state"
                )
            state = backend.fit(history, slots=self._store.current().slots)
        return self._store.attach_backend(name, backend, state)

    def estimate_with_backend(
        self,
        name: str,
        probes: Mapping[int, float],
        slot: int,
        snapshot: Optional[ModelSnapshot] = None,
        deadline: Optional[Deadline] = None,
    ) -> "BackendEstimate":
        """Run one attached backend's estimator on already-gathered probes.

        The backend-path analogue of the GSP stage: the serving layer's
        batched path and shadow mode call it directly with the probes a
        prepared query collected.

        Args:
            name: Attached backend name.
            probes: Probed speeds keyed by road index.
            slot: Global time slot.
            snapshot: Pinned model version (defaults to current).
            deadline: Optional wall-clock budget.

        Returns:
            The backend's ``BackendEstimate`` (field + provenance).
        """
        snap = snapshot if snapshot is not None else self._store.current()
        backend = self._store.backend_instance(name)
        state = snap.backend_state(name)
        estimate = getattr(backend, "estimate")
        with wrap_internal("backend"):
            return estimate(state, probes, int(slot), deadline)

    # ------------------------------------------------------------------
    # Online stage
    # ------------------------------------------------------------------

    def _check_not_stale(self, slot: int) -> None:
        """Refuse to serve a slot whose adopted Γ_R generation is stale."""
        if slot in self._stale_slots:
            raise ModelError(
                f"slot {slot}: correlation table was derived from a different "
                f"parameter generation (digest mismatch); rebuild the table or "
                f"refresh the slot instead of serving stale correlations"
            )

    def build_ocs_instance(
        self,
        queried: Sequence[int],
        slot: int,
        budget: float,
        market: CrowdMarket,
        theta: float = 0.92,
        snapshot: Optional[ModelSnapshot] = None,
    ) -> OCSInstance:
        """Assemble the OCS problem for one query.

        Candidates are the roads that currently have workers; costs come
        from the market's cost model; σ weights from the RTF slot.

        Args:
            snapshot: Pinned model version to read from (defaults to the
                store's current snapshot).
        """
        self._check_not_stale(slot)
        snap = snapshot if snapshot is not None else self._store.current()
        candidates = market.candidate_roads()
        if not candidates:
            raise SelectionError("no roads currently have workers (R^w is empty)")
        params = snap.slot(slot)
        return OCSInstance(
            queried=tuple(int(q) for q in queried),
            candidates=candidates,
            costs=market.cost_model.costs_of(candidates).astype(float),
            budget=float(budget),
            theta=theta,
            corr=snap.correlation_matrix(slot),
            sigma=params.sigma,
        )

    def _select_and_probe(
        self,
        queried: Sequence[int],
        slot: int,
        budget: float,
        market: CrowdMarket,
        truth: TruthOracle,
        theta: float,
        selector: str,
        rng: Optional[np.random.Generator],
        use_trivial_fast_path: bool,
        snapshot: ModelSnapshot,
        deadline: Optional[Deadline] = None,
    ) -> "PreparedQuery":
        """OCS selection + crowd probing against one pinned snapshot.

        The first two stages of the Fig. 1 online loop, shared by
        :meth:`answer_query` and the serving layer's coalesced batch
        path (which runs this per request and then batches the GSP
        stage).  Deadlines are checked at each stage boundary; stray
        internal exceptions are wrapped per the docs/API.md exception
        contract.
        """
        tracer = get_tracer()
        if deadline is not None:
            deadline.check("ocs")
        with wrap_internal("ocs"):
            instance = self.build_ocs_instance(
                queried, slot, budget, market, theta, snapshot=snapshot
            )
            with tracer.span("ocs.select", selector=selector) as select_span:
                selection: Optional[OCSResult] = None
                if use_trivial_fast_path and selector != "random":
                    selection = trivial_solution(instance)
                if selection is None:
                    if selector == "random":
                        selection = random_selection(instance, rng)
                    else:
                        try:
                            solve = SELECTORS[selector]
                        except KeyError:
                            raise SelectionError(
                                f"unknown selector {selector!r}; choose from "
                                f"{sorted(SELECTORS) + ['random']}"
                            ) from None
                        selection = solve(instance)
                select_span.set_attr("algorithm", selection.algorithm)
                select_span.set_attr("selected", len(selection.selected))

        if deadline is not None:
            deadline.check("probe")
        ledger = BudgetLedger(budget)
        with wrap_internal("probe"):
            probes, receipts = market.probe(selection.selected, truth, ledger)
        return PreparedQuery(
            queried=tuple(int(q) for q in queried),
            slot=int(slot),
            selector=selector,
            selection=selection,
            probes=probes,
            receipts=tuple(receipts),
            ledger=ledger,
            snapshot=snapshot,
        )

    @staticmethod
    def _assemble_result(
        prepared: "PreparedQuery", gsp_result: GSPResult
    ) -> QueryResult:
        """Slice the propagated field into the final :class:`QueryResult`."""
        estimates = gsp_result.speeds[
            np.asarray(prepared.queried, dtype=int)
        ]
        return QueryResult(
            queried=prepared.queried,
            estimates_kmh=estimates,
            full_field_kmh=gsp_result.speeds,
            selection=prepared.selection,
            probes=prepared.probes,
            receipts=prepared.receipts,
            gsp=gsp_result,
            budget_spent=prepared.ledger.spent,
            model_version=prepared.snapshot.version,
        )

    @staticmethod
    def _assemble_backend_result(
        prepared: "PreparedQuery", field_kmh: np.ndarray, backend: str
    ) -> QueryResult:
        """Assemble a :class:`QueryResult` from a backend's field."""
        estimates = field_kmh[np.asarray(prepared.queried, dtype=int)]
        return QueryResult(
            queried=prepared.queried,
            estimates_kmh=estimates,
            full_field_kmh=field_kmh,
            selection=prepared.selection,
            probes=prepared.probes,
            receipts=prepared.receipts,
            gsp=None,
            budget_spent=prepared.ledger.spent,
            model_version=prepared.snapshot.version,
            backend=backend,
        )

    def answer_query(
        self,
        request: Union[EstimationRequest, Sequence[int]],
        slot: Optional[int] = None,
        budget: Optional[float] = None,
        market: Optional[CrowdMarket] = None,
        truth: Optional[TruthOracle] = None,
        theta: float = 0.92,
        selector: str = "hybrid",
        gsp_config: Optional[GSPConfig] = None,
        rng: Optional[np.random.Generator] = None,
        use_trivial_fast_path: bool = True,
        snapshot: Optional[ModelSnapshot] = None,
        deadline: Optional[Deadline] = None,
        backend: Optional[str] = None,
    ) -> QueryResult:
        """Online stage: OCS → crowd probe → estimate → answer (Fig. 1).

        The canonical spelling takes one
        :class:`~repro.core.request.EstimationRequest`::

            system.answer_query(
                EstimationRequest(queried=(3, 7), slot=93, budget=20.0),
                market=market, truth=truth,
            )

        The legacy spelling — queried roads first, every knob as its own
        argument — still works but warns ``DeprecationWarning`` once per
        process (removal horizon v2.0; see docs/API.md) and keeps its
        pre-v2 numerics: it constructs a request with
        ``warm_start=False`` so answers stay bit-identical.

        Args:
            request: The query (an :class:`EstimationRequest`), or the
                queried road indices ``R^q`` (deprecated spelling).
            slot: Global time slot (legacy spelling only; an
                :class:`EstimationRequest` carries its own).
            budget: Crowdsourcing budget ``K`` (legacy spelling only).
            market: The crowd marketplace; fills a request whose
                ``market`` is unset.
            truth: Ground-truth oracle the (simulated) workers measure;
                fills a request whose ``truth`` is unset.
            theta: Redundancy threshold θ (legacy spelling only).
            selector: OCS solver (legacy spelling only).
            gsp_config: Propagation knobs; the request's ``precision``
                is applied on top via
                :meth:`~repro.core.gsp.GSPConfig.with_precision`.
            rng: RNG for the random selector (a request's own ``rng``
                wins).
            use_trivial_fast_path: Apply Remark 2's closed-form optima
                when they apply (θ = 1, unit costs, over-adequate budget
                or few queried roads) instead of running the greedy.
            snapshot: Pre-pinned model version to serve from.  The
                serving layer pins one snapshot per worker batch and
                passes it here; direct callers leave it ``None`` and the
                query pins the store's current version itself.
            deadline: Explicit wall-clock budget, checked at the OCS,
                probe, and GSP stage boundaries
                (:class:`~repro.errors.QueryTimeoutError` on expiry).
                When ``None``, a request's ``deadline_s`` starts its
                budget here.
            backend: Estimator backend override (legacy spelling;
                requests carry their own ``backend`` field).

        Returns:
            A :class:`QueryResult`.

        Raises:
            QueryTimeoutError: When the deadline expires mid-pipeline.
            ReproError: Every intentional failure; stray internal
                ``ValueError``/``KeyError`` surface as
                :class:`~repro.errors.InternalError`.
        """
        if isinstance(request, EstimationRequest):
            if slot is not None or budget is not None:
                raise ModelError(
                    "pass either an EstimationRequest or the legacy "
                    "(queried, slot, budget, ...) arguments, not both"
                )
            req = request.bound(market, truth)
            if backend is not None:
                from dataclasses import replace

                req = replace(req, backend=backend)
        else:
            warn_deprecated_once(
                "pipeline.answer_query_kwargs",
                "answer_query(queried, slot, budget, ...) with loose "
                "arguments is deprecated and will be removed in v2.0; "
                "pass a repro.EstimationRequest instead (the legacy "
                "spelling keeps warm_start off for bit-stable answers)",
            )
            if slot is None or budget is None:
                raise ModelError(
                    "the legacy answer_query spelling needs queried, slot "
                    "and budget"
                )
            req = EstimationRequest(
                queried=tuple(int(q) for q in request),
                slot=int(slot),
                budget=float(budget),
                theta=theta,
                selector=selector,
                market=market,
                truth=truth,
                rng=rng,
                backend=backend if backend is not None else "rtf_gsp",
                warm_start=False,
            )
        if req.market is None or req.truth is None:
            raise ModelError(
                "answer_query needs a market and a truth oracle (on the "
                "request or as arguments)"
            )
        effective_rng = req.rng if req.rng is not None else rng
        if deadline is None and req.deadline_s is not None:
            deadline = Deadline.after(req.deadline_s)

        tracer = get_tracer()
        start = time.perf_counter()
        # Pin ONE model version for the whole query: a refresh published
        # while this query is in flight must not mix generations between
        # the OCS correlations and the GSP parameters.
        snap = snapshot if snapshot is not None else self._store.current()
        with tracer.span(
            "pipeline.answer_query",
            slot=req.slot,
            budget=req.budget,
            queried=len(req.queried),
            selector=req.selector,
            model_version=snap.version,
        ) as query_span:
            prepared = self._select_and_probe(
                req.queried, req.slot, req.budget, req.market, req.truth,
                req.theta, req.selector, effective_rng,
                use_trivial_fast_path, snap, deadline,
            )
            if req.backend != "rtf_gsp":
                # Pluggable-estimator path: the attached backend turns
                # the probes into the field; GSP never runs.
                estimate = self.estimate_with_backend(
                    req.backend, prepared.probes, req.slot,
                    snapshot=snap, deadline=deadline,
                )
                query_span.set_attr("budget_spent", prepared.ledger.spent)
                query_span.set_attr("backend", req.backend)
                self._record_query_metrics(
                    req.selector, prepared.ledger, time.perf_counter() - start
                )
                return self._assemble_backend_result(
                    prepared, estimate.speeds, req.backend
                )
            if deadline is not None:
                deadline.check("gsp")
            gsp_result = self._propagate_prepared(prepared, req, gsp_config)
            query_span.set_attr("budget_spent", prepared.ledger.spent)
            query_span.set_attr("gsp_sweeps", gsp_result.sweeps)
        self._record_query_metrics(
            req.selector, prepared.ledger, time.perf_counter() - start
        )
        return self._assemble_result(prepared, gsp_result)

    # -- GSP stage helpers (shared with the serving layer's batch path) --

    @staticmethod
    def resolve_gsp_config(
        gsp_config: Optional[GSPConfig], precision: str
    ) -> Optional[GSPConfig]:
        """The effective propagation config under a request's precision.

        ``float64`` leaves ``gsp_config`` untouched (including ``None``
        → engine default), so the reference path stays bit-identical;
        any other policy is applied via
        :meth:`~repro.core.gsp.GSPConfig.with_precision`.
        """
        policy = PrecisionPolicy.coerce(precision)
        if policy is PrecisionPolicy.FLOAT64:
            return gsp_config
        base = gsp_config if gsp_config is not None else GSPConfig()
        return base.with_precision(policy)

    def _warm_seed(
        self,
        snapshot: ModelSnapshot,
        slot: int,
        observed_key: frozenset,
        enabled: bool,
    ) -> Tuple[Optional[np.ndarray], str]:
        """Fetch a warm-start seed and publish the outcome counter.

        Outcomes mirror the ``gsp.warm_start`` metric: ``used`` (seed
        found for this exact digest + R^c), ``miss`` (nothing cached),
        ``mismatch`` (cached under a different R^c), ``disabled``
        (request opted out).
        """
        if enabled:
            seed, outcome = snapshot.warm_field(slot, observed_key)
            if outcome == "hit":
                outcome = "used"
        else:
            seed, outcome = None, "disabled"
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("gsp.warm_start", {"outcome": outcome}).inc()
        return seed, outcome

    def _store_warm(
        self,
        snapshot: ModelSnapshot,
        slot: int,
        observed_key: frozenset,
        gsp_result: GSPResult,
        enabled: bool,
    ) -> None:
        """Write a converged field back as the slot's warm-start seed."""
        if enabled and gsp_result.converged:
            snapshot.store_warm_field(slot, observed_key, gsp_result.speeds)

    def _propagate_prepared(
        self,
        prepared: "PreparedQuery",
        request: EstimationRequest,
        gsp_config: Optional[GSPConfig],
    ) -> GSPResult:
        """The GSP stage of one prepared query, warm-start managed."""
        cfg = self.resolve_gsp_config(gsp_config, request.precision)
        observed_key = frozenset(prepared.probes)
        seed, _ = self._warm_seed(
            prepared.snapshot, request.slot, observed_key, request.warm_start
        )
        with wrap_internal("gsp"):
            gsp_result = self._gsp_engine.propagate(
                prepared.snapshot.slot(request.slot),
                prepared.probes,
                cfg,
                initial_field=seed,
            )
        self._store_warm(
            prepared.snapshot, request.slot, observed_key,
            gsp_result, request.warm_start,
        )
        return gsp_result

    @staticmethod
    def _record_query_metrics(
        selector: str, ledger: BudgetLedger, latency_seconds: float
    ) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        labels = {"selector": selector}
        metrics.counter("pipeline.queries", labels).inc()
        metrics.histogram(
            "pipeline.latency_seconds", DEFAULT_TIME_BUCKETS, labels
        ).observe(latency_seconds)
        metrics.counter("pipeline.budget_spent").inc(ledger.spent)

    def propagate_slots(
        self,
        observations: Mapping[int, Mapping[int, float]],
        gsp_config: Optional[GSPConfig] = None,
    ) -> Dict[int, GSPResult]:
        """Propagate probe sets for several time slots in one call.

        Batched counterpart of the GSP step of :meth:`answer_query` —
        drivers that replay a day (or answer one query across adjacent
        slots) hand every slot's probes over at once and the engine
        shares its cached structures across the batch: the BFS layers /
        colourings are keyed by the observed set alone, so slots probing
        the same roads compile the schedule exactly once.

        Args:
            observations: Probed speeds per road, keyed by slot index;
                every slot must be fitted.
            gsp_config: Propagation knobs applied to every slot.

        Returns:
            The :class:`GSPResult` per slot, keyed like the input.
        """
        slots = list(observations)
        snapshot = self._store.current()
        with get_tracer().span("pipeline.propagate_slots", slots=len(slots)):
            results = self._gsp_engine.propagate_batch(
                [(snapshot.slot(t), observations[t]) for t in slots], gsp_config
            )
        return dict(zip(slots, results))
