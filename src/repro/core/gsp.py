"""Graph-based Speed Propagation — GSP (paper §VI, Alg. 5).

Given probed speeds for the crowdsourced roads ``R^c``, GSP infers the
most-likely speeds of all other roads under the RTF model by coordinate
maximization of Eq. 16.  Each non-observed road's optimal value given
its neighbours is the precision-weighted blend of its own prior mean and
its neighbours' propagated values (Eq. 18):

.. math::

    v_i^* = \\frac{\\mu_i/\\sigma_i^2 + \\sum_{j \\in n(i)}
                   (v_j + \\mu_{ij})/\\sigma_{ij}^2}
                 {1/\\sigma_i^2 + \\sum_{j \\in n(i)} 1/\\sigma_{ij}^2}

Updates are scheduled by BFS layers from ``R^c`` (closest roads first),
swept repeatedly until the largest value change drops below ε.  Two
alternative schedules (random order, plain index order) are provided for
the ablation bench, plus a layer-parallel Jacobi variant matching the
parallelization discussion at the end of §VI.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConvergenceError, ModelError
from repro.core.rtf import RTFSlot
from repro.network.graph import TrafficNetwork


class GSPSchedule(str, enum.Enum):
    """Order in which non-observed roads are updated within one sweep."""

    #: Paper Alg. 5: ascending hop count from R^c, Gauss-Seidel.
    BFS = "bfs"
    #: Same BFS layers, but Jacobi *within* each layer (parallelizable).
    BFS_PARALLEL = "bfs-parallel"
    #: BFS layers split into independent (non-adjacent) colour groups —
    #: the exact parallelization condition of §VI: updates within one
    #: group commute, so the result equals the sequential sweep.
    BFS_COLORED = "bfs-colored"
    #: Random permutation per sweep (ablation).
    RANDOM = "random"
    #: Plain index order (ablation).
    INDEX = "index"


def independent_update_groups(
    network: TrafficNetwork, layer: Sequence[int]
) -> List[List[int]]:
    """Split one BFS layer into mutually non-adjacent groups.

    Paper §VI: two variables can be updated in parallel iff they are in
    the same partitioned group *and* not adjacent.  A greedy colouring
    realizes that: within each returned group no two roads share an
    edge, so their Eq. 18 updates read disjoint state and commute.

    Args:
        network: Road graph.
        layer: Road indices of one BFS layer.

    Returns:
        Colour groups, each a list of road indices; their union is the
        input layer.
    """
    color_of: Dict[int, int] = {}
    groups: List[List[int]] = []
    for road in layer:
        used = {
            color_of[j] for j in network.neighbors(road) if j in color_of
        }
        color = 0
        while color in used:
            color += 1
        color_of[road] = color
        while len(groups) <= color:
            groups.append([])
        groups[color].append(road)
    return groups


@dataclass(frozen=True)
class GSPConfig:
    """Knobs of Alg. 5.

    Attributes:
        epsilon: Convergence threshold on the max per-road change.
        max_sweeps: Sweep cap; a sweep updates every non-observed road.
        schedule: Update ordering; see :class:`GSPSchedule`.
        strict: Raise :class:`ConvergenceError` when the sweep budget is
            exhausted (default: return the last iterate).
        seed: RNG seed for the RANDOM schedule.
    """

    epsilon: float = 1e-3
    max_sweeps: int = 200
    schedule: GSPSchedule = GSPSchedule.BFS
    strict: bool = False
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ModelError(f"epsilon must be positive, got {self.epsilon}")
        if self.max_sweeps <= 0:
            raise ModelError(f"max_sweeps must be positive, got {self.max_sweeps}")


@dataclass(frozen=True)
class GSPResult:
    """Outcome of one propagation.

    Attributes:
        speeds: Inferred speed per road, shape ``(n_roads,)``; observed
            roads keep their probed values.
        sweeps: Sweeps performed.
        converged: Whether the ε threshold was met.
        max_delta_history: Largest per-road change after each sweep.
        runtime_seconds: Wall-clock time.
    """

    speeds: np.ndarray
    sweeps: int
    converged: bool
    max_delta_history: Tuple[float, ...]
    runtime_seconds: float


def _build_update_structure(
    network: TrafficNetwork, params: RTFSlot
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray], List[np.ndarray]]:
    """Precompute, per road, its neighbour arrays and edge precisions.

    Returns ``(prior_precision, prior_pull, neighbor_idx, edge_weight)``
    where for road i the Eq. 18 update is::

        v_i = (prior_pull[i] + Σ_k edge_weight[i][k] * (v[neighbor_idx[i][k]] + mu_ij))
              / (prior_precision[i] + Σ_k edge_weight[i][k])

    The ``mu_ij`` pull is folded into a constant, so the loop only
    gathers neighbour values.
    """
    n = network.n_roads
    sigma2 = params.sigma * params.sigma
    prior_precision = 1.0 / sigma2
    prior_pull = params.mu / sigma2
    edge_var = params.edge_variance(network)
    neighbor_idx: List[np.ndarray] = []
    edge_weight: List[np.ndarray] = []
    mu = params.mu
    for i in range(n):
        neigh = np.array(network.neighbors(i), dtype=int)
        if neigh.size:
            weights = np.array(
                [1.0 / edge_var[network.edge_id(i, int(j))] for j in neigh]
            )
        else:
            weights = np.zeros(0)
        neighbor_idx.append(neigh)
        edge_weight.append(weights)
    return prior_precision, prior_pull, neighbor_idx, edge_weight


def propagate(
    network: TrafficNetwork,
    params: RTFSlot,
    observed: Mapping[int, float],
    config: Optional[GSPConfig] = None,
) -> GSPResult:
    """Run GSP (Alg. 5).

    Args:
        network: Road graph.
        params: RTF parameters of the query slot.
        observed: Probed speeds keyed by road index (the crowdsourced
            data ``V̂_{R^c}``); these roads stay clamped.
        config: Solver knobs.

    Returns:
        A :class:`GSPResult` with the inferred full speed field.

    Raises:
        ModelError: On index/shape problems.
        ConvergenceError: In ``strict`` mode when ε is not reached.
    """
    cfg = config or GSPConfig()
    params.check_against(network)
    n = network.n_roads
    for road, value in observed.items():
        if not 0 <= road < n:
            raise ModelError(f"observed road index {road} outside 0..{n - 1}")
        if not np.isfinite(value) or value <= 0:
            raise ModelError(f"observed speed for road {road} must be positive")

    start = time.perf_counter()
    speeds = params.mu.astype(np.float64).copy()
    for road, value in observed.items():
        speeds[road] = float(value)
    clamped = np.zeros(n, dtype=bool)
    for road in observed:
        clamped[road] = True

    free = [i for i in range(n) if not clamped[i]]
    if not free:
        return GSPResult(
            speeds=speeds,
            sweeps=0,
            converged=True,
            max_delta_history=(),
            runtime_seconds=time.perf_counter() - start,
        )

    prior_precision, prior_pull, neighbor_idx, edge_weight = _build_update_structure(
        network, params
    )
    mu = params.mu

    # Update schedule.
    rng = np.random.default_rng(cfg.seed)
    sources = sorted(observed)
    if cfg.schedule in (
        GSPSchedule.BFS,
        GSPSchedule.BFS_PARALLEL,
        GSPSchedule.BFS_COLORED,
    ):
        if sources:
            layers = [
                [i for i in layer if not clamped[i]]
                for layer in network.bfs_layers(sources)
            ]
            layers = [layer for layer in layers if layer]
        else:
            layers = [free]
        if cfg.schedule is GSPSchedule.BFS_COLORED:
            # Refine each layer into independent groups; groups are then
            # swept Gauss-Seidel, but within a group every update could
            # run on its own core with an identical result.
            layers = [
                group
                for layer in layers
                for group in independent_update_groups(network, layer)
            ]
    elif cfg.schedule is GSPSchedule.INDEX:
        layers = [free]
    elif cfg.schedule is GSPSchedule.RANDOM:
        layers = [free]  # permuted per sweep below
    else:  # pragma: no cover - enum is exhaustive
        raise ModelError(f"unknown schedule {cfg.schedule!r}")

    def updated_value(i: int, values: np.ndarray) -> float:
        neigh = neighbor_idx[i]
        if neigh.size:
            w = edge_weight[i]
            # mu_ij = mu_i - mu_j folded in: neighbour j contributes
            # (v_j + mu_i - mu_j) * w_ij.
            pull = prior_pull[i] + float(np.dot(w, values[neigh] + mu[i] - mu[neigh]))
            precision = prior_precision[i] + float(w.sum())
        else:
            pull = prior_pull[i]
            precision = prior_precision[i]
        return pull / precision

    history: List[float] = []
    converged = False
    sweeps = 0
    for sweep in range(1, cfg.max_sweeps + 1):
        sweeps = sweep
        max_delta = 0.0
        if cfg.schedule is GSPSchedule.RANDOM:
            order_layers = [list(rng.permutation(free))]
        else:
            order_layers = layers
        if cfg.schedule is GSPSchedule.BFS_PARALLEL:
            for layer in order_layers:
                # Jacobi within the layer: all reads before any write.
                new_values = [updated_value(int(i), speeds) for i in layer]
                for i, value in zip(layer, new_values):
                    max_delta = max(max_delta, abs(value - speeds[int(i)]))
                    speeds[int(i)] = value
        else:
            for layer in order_layers:
                for i in layer:
                    value = updated_value(int(i), speeds)
                    max_delta = max(max_delta, abs(value - speeds[int(i)]))
                    speeds[int(i)] = value
        history.append(max_delta)
        if max_delta < cfg.epsilon:
            converged = True
            break

    if not converged and cfg.strict:
        raise ConvergenceError(
            f"GSP did not reach epsilon={cfg.epsilon} within {cfg.max_sweeps} sweeps "
            f"(last delta {history[-1]:.4g})"
        )
    return GSPResult(
        speeds=speeds,
        sweeps=sweeps,
        converged=converged,
        max_delta_history=tuple(history),
        runtime_seconds=time.perf_counter() - start,
    )
