"""Graph-based Speed Propagation — GSP (paper §VI, Alg. 5).

Given probed speeds for the crowdsourced roads ``R^c``, GSP infers the
most-likely speeds of all other roads under the RTF model by coordinate
maximization of Eq. 16.  Each non-observed road's optimal value given
its neighbours is the precision-weighted blend of its own prior mean and
its neighbours' propagated values (Eq. 18):

.. math::

    v_i^* = \\frac{\\mu_i/\\sigma_i^2 + \\sum_{j \\in n(i)}
                   (v_j + \\mu_{ij})/\\sigma_{ij}^2}
                 {1/\\sigma_i^2 + \\sum_{j \\in n(i)} 1/\\sigma_{ij}^2}

Updates are scheduled by BFS layers from ``R^c`` (closest roads first),
swept repeatedly until the largest value change drops below ε.  Two
alternative schedules (random order, plain index order) are provided for
the ablation bench, plus a layer-parallel Jacobi variant matching the
parallelization discussion at the end of §VI.

Two kernels implement the sweep:

* the **reference** kernel — the per-node Python loop of Alg. 5, kept
  verbatim as the correctness oracle, and
* the **vectorized** kernel — a CSR-style flat neighbour structure
  (:class:`PropagationStructure`) plus per-group gather/segment-sum
  arrays (:class:`CompiledSchedule`), which updates a whole BFS layer
  (``BFS_PARALLEL``) or colour group (``BFS_COLORED``) in one fused
  numpy operation.  §VI's parallelization condition (same group, not
  adjacent) is exactly what makes the fused group update equal the
  sequential sweep.

:class:`GSPEngine` owns both kernels for one network and caches the
expensive precomputations: the propagation structure per slot-parameter
signature, and the BFS layers / colourings per ``frozenset(R^c)``, so
repeated queries with overlapping selections skip the graph work.
"""

from __future__ import annotations

import enum
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    ConvergenceError,
    ConvergenceWarning,
    ModelError,
    warn_deprecated_once,
)
from repro.core.rtf import RTFSlot, params_signature
from repro.network.graph import TrafficNetwork
from repro.obs import DEFAULT_ITERATION_BUCKETS, DEFAULT_TIME_BUCKETS, get_metrics, get_tracer


class GSPSchedule(str, enum.Enum):
    """Order in which non-observed roads are updated within one sweep."""

    #: Paper Alg. 5: ascending hop count from R^c, Gauss-Seidel.
    BFS = "bfs"
    #: Same BFS layers, but Jacobi *within* each layer (parallelizable).
    BFS_PARALLEL = "bfs-parallel"
    #: BFS layers split into independent (non-adjacent) colour groups —
    #: the exact parallelization condition of §VI: updates within one
    #: group commute, so the result equals the sequential sweep.
    BFS_COLORED = "bfs-colored"
    #: Random permutation per sweep (ablation).
    RANDOM = "random"
    #: Plain index order (ablation).
    INDEX = "index"


class GSPKernel(str, enum.Enum):
    """Which sweep implementation to run."""

    #: Vectorized for parallel schedules, reference otherwise.
    AUTO = "auto"
    #: The per-node Python loop (Alg. 5 verbatim) — the testing oracle.
    REFERENCE = "reference"
    #: Fused numpy group updates; requires ``BFS_PARALLEL``/``BFS_COLORED``.
    VECTORIZED = "vectorized"


class PrecisionPolicy(str, enum.Enum):
    """Numeric precision of the propagation sweep.

    The **tolerance contract**: ``FLOAT64`` is the reference precision —
    every differential test and the batched/coalesced serving paths are
    bit-identical under it.  ``FLOAT32`` is an opt-in speed/memory mode
    for the vectorized kernel: the sweep state and folded parameters are
    cast down once, sweeps run in single precision, and the returned
    field is upcast with observed roads re-clamped to their exact probed
    values.  Non-observed roads are guaranteed within
    :attr:`field_rtol` relative divergence of the float64 field on
    converged runs (enforced by ``tests/test_precision.py``); selections
    and everything upstream of GSP are precision-independent.
    """

    FLOAT64 = "float64"
    FLOAT32 = "float32"

    @property
    def dtype(self) -> "np.dtype":
        """The numpy dtype sweeps run in."""
        return np.dtype(np.float32 if self is PrecisionPolicy.FLOAT32 else np.float64)

    @property
    def field_rtol(self) -> float:
        """Documented relative divergence bound vs the float64 field."""
        return 5e-4 if self is PrecisionPolicy.FLOAT32 else 0.0

    @classmethod
    def coerce(cls, value: "str | PrecisionPolicy") -> "PrecisionPolicy":
        """Accept a policy or its string spelling (``"float32"``)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            raise ModelError(
                f"unknown precision {value!r}; expected one of "
                f"{sorted(p.value for p in cls)}"
            ) from None


#: Schedules whose group updates commute, so the vectorized kernel's
#: fused group update reproduces the sequential result exactly.
VECTORIZABLE_SCHEDULES = frozenset(
    {GSPSchedule.BFS_PARALLEL, GSPSchedule.BFS_COLORED}
)


def independent_update_groups(
    network: TrafficNetwork, layer: Sequence[int]
) -> List[List[int]]:
    """Split one BFS layer into mutually non-adjacent groups.

    Paper §VI: two variables can be updated in parallel iff they are in
    the same partitioned group *and* not adjacent.  A greedy colouring
    realizes that: within each returned group no two roads share an
    edge, so their Eq. 18 updates read disjoint state and commute.

    Args:
        network: Road graph.
        layer: Road indices of one BFS layer.

    Returns:
        Colour groups, each a list of road indices; their union is the
        input layer.
    """
    color_of: Dict[int, int] = {}
    groups: List[List[int]] = []
    for road in layer:
        used = {
            color_of[j] for j in network.neighbors(road) if j in color_of
        }
        color = 0
        while color in used:
            color += 1
        color_of[road] = color
        while len(groups) <= color:
            groups.append([])
        groups[color].append(road)
    return groups


@dataclass(frozen=True)
class GSPConfig:
    """Knobs of Alg. 5.

    Attributes:
        epsilon: Convergence threshold on the max per-road change.
        max_sweeps: Sweep cap; a sweep updates every non-observed road.
        schedule: Update ordering; see :class:`GSPSchedule`.
        kernel: Sweep implementation; see :class:`GSPKernel`.  The
            vectorized kernel only supports the parallel schedules
            (``BFS_PARALLEL``, ``BFS_COLORED``) whose group updates
            commute; requesting it with any other schedule raises
            :class:`ModelError` at propagation time.
        strict: Raise :class:`ConvergenceError` when the sweep budget is
            exhausted (default: return the last iterate).
        seed: RNG seed for the RANDOM schedule.
        precision: Sweep precision; see :class:`PrecisionPolicy`.
            ``FLOAT32`` requires the vectorized kernel (use
            :meth:`with_precision` to adjust the schedule when needed).
    """

    epsilon: float = 1e-3
    max_sweeps: int = 200
    schedule: GSPSchedule = GSPSchedule.BFS
    kernel: GSPKernel = GSPKernel.AUTO
    strict: bool = False
    seed: Optional[int] = None
    precision: PrecisionPolicy = PrecisionPolicy.FLOAT64

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ModelError(f"epsilon must be positive, got {self.epsilon}")
        if self.max_sweeps <= 0:
            raise ModelError(f"max_sweeps must be positive, got {self.max_sweeps}")
        object.__setattr__(self, "precision", PrecisionPolicy.coerce(self.precision))

    def with_precision(self, precision: "str | PrecisionPolicy") -> "GSPConfig":
        """This config adjusted to run under ``precision``.

        ``FLOAT32`` only runs on the vectorized kernel; when the current
        schedule is not vectorizable and the kernel is ``AUTO``, the
        schedule is upgraded to ``BFS_PARALLEL`` (an explicitly
        ``REFERENCE`` kernel raises :class:`ModelError` instead).
        """
        from dataclasses import replace

        policy = PrecisionPolicy.coerce(precision)
        if policy is PrecisionPolicy.FLOAT64:
            return replace(self, precision=policy)
        if self.schedule in VECTORIZABLE_SCHEDULES:
            if self.kernel is GSPKernel.REFERENCE:
                raise ModelError(
                    "float32 precision requires the vectorized kernel; "
                    "the reference kernel is float64-only"
                )
            return replace(self, precision=policy)
        if self.kernel is not GSPKernel.AUTO:
            raise ModelError(
                "float32 precision requires a vectorizable schedule "
                f"({sorted(s.value for s in VECTORIZABLE_SCHEDULES)}); "
                f"got {self.schedule.value!r} with kernel {self.kernel.value!r}"
            )
        return replace(
            self, precision=policy, schedule=GSPSchedule.BFS_PARALLEL
        )

    def resolved_kernel(self) -> GSPKernel:
        """The concrete kernel AUTO resolves to for this schedule."""
        if self.kernel is GSPKernel.AUTO:
            if self.schedule in VECTORIZABLE_SCHEDULES:
                return GSPKernel.VECTORIZED
            return GSPKernel.REFERENCE
        if (
            self.kernel is GSPKernel.VECTORIZED
            and self.schedule not in VECTORIZABLE_SCHEDULES
        ):
            raise ModelError(
                f"vectorized kernel requires a parallel schedule "
                f"({sorted(s.value for s in VECTORIZABLE_SCHEDULES)}), "
                f"got {self.schedule.value!r}"
            )
        return self.kernel


@dataclass(frozen=True)
class GSPProvenance:
    """Cache provenance of one propagation.

    Mirrors the ``gsp.cache.lookups`` metric series; kept on the result
    so a single propagation stays self-describing without reading the
    registry.

    Attributes:
        structure_cache_hit: Whether the propagation structure came out
            of the engine cache (False for cold runs and the stateless
            reference builder).
        schedule_cache_hit: Whether the BFS layers / colouring came out
            of the engine cache.
        warm_start: Whether the sweep was seeded from a caller-provided
            field instead of the prior means μ.
    """

    structure_cache_hit: bool = False
    schedule_cache_hit: bool = False
    warm_start: bool = False


@dataclass(frozen=True)
class GSPResult:
    """Outcome of one propagation.

    Attributes:
        speeds: Inferred speed per road, shape ``(n_roads,)``; observed
            roads keep their probed values.
        sweeps: Sweeps performed.
        converged: Whether the ε threshold was met.
        max_delta_history: Largest per-road change after each sweep.
        runtime_seconds: Wall-clock time.
        schedule: Update ordering that produced this result.
        kernel: Code path that produced it (``REFERENCE``/``VECTORIZED``).
        provenance: Cache hit/miss provenance of this propagation; the
            same facts are published on the ``gsp.cache.lookups`` metric
            and the ``gsp.cache`` trace events.
    """

    speeds: np.ndarray
    sweeps: int
    converged: bool
    max_delta_history: Tuple[float, ...]
    runtime_seconds: float
    schedule: GSPSchedule = GSPSchedule.BFS
    kernel: GSPKernel = GSPKernel.REFERENCE
    provenance: GSPProvenance = field(default_factory=GSPProvenance)

    @property
    def structure_cache_hit(self) -> bool:
        """Deprecated alias for ``provenance.structure_cache_hit``.

        Warns once per process (see the deprecation policy in
        docs/API.md); scheduled for removal in v2.0.
        """
        warn_deprecated_once(
            "gsp.result.structure_cache_hit",
            "GSPResult.structure_cache_hit is deprecated and will be removed "
            "in v2.0; read result.provenance.structure_cache_hit (or the "
            "gsp.cache.lookups metric) instead",
        )
        return self.provenance.structure_cache_hit

    @property
    def schedule_cache_hit(self) -> bool:
        """Deprecated alias for ``provenance.schedule_cache_hit``.

        Warns once per process (see the deprecation policy in
        docs/API.md); scheduled for removal in v2.0.
        """
        warn_deprecated_once(
            "gsp.result.schedule_cache_hit",
            "GSPResult.schedule_cache_hit is deprecated and will be removed "
            "in v2.0; read result.provenance.schedule_cache_hit (or the "
            "gsp.cache.lookups metric) instead",
        )
        return self.provenance.schedule_cache_hit


# ----------------------------------------------------------------------
# Cached precomputations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PropagationStructure:
    """CSR-style neighbour structure for one ``(network, slot)`` pair.

    Flat arrays over all *directed* neighbour slots: road ``i``'s
    neighbours occupy ``indices[indptr[i]:indptr[i+1]]`` with edge
    precisions ``weights`` (``1/σ_ij²``) in the matching positions.  The
    value-independent parts of Eq. 18 are folded once:

    * ``const_pull[i] = μ_i/σ_i² + Σ_j (μ_i - μ_j)/σ_ij²`` and
    * ``denom[i]      = 1/σ_i²  + Σ_j 1/σ_ij²``,

    so a sweep only gathers neighbour values and segment-sums
    ``weights * v[indices]``.

    Attributes:
        indptr: Row pointers, shape ``(n_roads + 1,)``.
        indices: Flat neighbour indices, shape ``(2·n_edges,)``.
        weights: Edge precisions per flat slot, shape ``(2·n_edges,)``.
        const_pull: Value-independent numerator per road.
        denom: Eq. 18 denominator per road.
        mu: Prior means (the propagation's initial iterate).
        signature: Content digest of the slot parameters this structure
            was compiled from — the engine's cache key.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    const_pull: np.ndarray
    denom: np.ndarray
    mu: np.ndarray
    signature: bytes

    @property
    def n_roads(self) -> int:
        """Number of roads the structure covers."""
        return self.denom.shape[0]


@dataclass(frozen=True)
class _GroupKernel:
    """Gather/segment-sum arrays for one fused group update.

    ``nodes`` are the group's road indices; ``flat`` indexes the
    structure's CSR arrays (all neighbour slots of the group's nodes,
    concatenated in node order) and ``owner`` maps each flat slot back
    to its position within ``nodes``.
    """

    nodes: np.ndarray
    flat: np.ndarray
    owner: np.ndarray


@dataclass(frozen=True)
class CompiledSchedule:
    """BFS layers / colour groups compiled against the CSR layout.

    Depends only on the topology and ``frozenset(R^c)`` — never on slot
    parameters — so one compilation serves every slot.

    Attributes:
        schedule: The ordering this compilation realizes.
        groups: Fused-update groups, swept in order (layers for
            ``BFS_PARALLEL``, colour groups for ``BFS_COLORED``).
        node_groups: The same groups as plain index lists, for the
            reference kernel.
    """

    schedule: GSPSchedule
    groups: Tuple[_GroupKernel, ...]
    node_groups: Tuple[Tuple[int, ...], ...]


def build_propagation_structure(
    network: TrafficNetwork, params: RTFSlot
) -> PropagationStructure:
    """Compile the CSR neighbour structure for one slot (vectorized).

    Uses :meth:`RTFSlot.propagation_arrays` for the per-road and
    per-edge precisions; every step below is array work, no per-node
    Python loop.
    """
    params.check_against(network)
    n = network.n_roads
    prior_precision, prior_pull, edge_precision, edge_mu = params.propagation_arrays(
        network
    )
    if network.edges:
        ei, ej = np.array(network.edges, dtype=np.intp).T
        src = np.concatenate([ei, ej])
        dst = np.concatenate([ej, ei])
        w = np.concatenate([edge_precision, edge_precision])
        # mu_ij is order-sensitive: from i's viewpoint the pull constant
        # is w_ij * (mu_i - mu_j) = w_ij * mu_src-to-dst difference.
        pull_const = np.concatenate([edge_mu * edge_precision, -edge_mu * edge_precision])
        order = np.argsort(src, kind="stable")
        src = src[order]
        indices = dst[order]
        weights = w[order]
        pull_const = pull_const[order]
        counts = np.bincount(src, minlength=n)
        const_pull = prior_pull + np.bincount(src, weights=pull_const, minlength=n)
        denom = prior_precision + np.bincount(src, weights=weights, minlength=n)
    else:
        indices = np.zeros(0, dtype=np.intp)
        weights = np.zeros(0)
        counts = np.zeros(n, dtype=np.intp)
        const_pull = prior_pull.copy()
        denom = prior_precision.copy()
    indptr = np.zeros(n + 1, dtype=np.intp)
    np.cumsum(counts, out=indptr[1:])
    return PropagationStructure(
        indptr=indptr,
        indices=indices,
        weights=weights,
        const_pull=const_pull,
        denom=denom,
        mu=params.mu.astype(np.float64, copy=True),
        signature=params_signature(params),
    )


def _compile_groups(
    structure_indptr: np.ndarray, node_groups: Sequence[Sequence[int]]
) -> Tuple[_GroupKernel, ...]:
    """Build the gather/segment arrays for each update group."""
    kernels: List[_GroupKernel] = []
    for group in node_groups:
        nodes = np.asarray(group, dtype=np.intp)
        starts = structure_indptr[nodes]
        counts = structure_indptr[nodes + 1] - starts
        total = int(counts.sum())
        owner = np.repeat(np.arange(nodes.size, dtype=np.intp), counts)
        offsets = np.zeros(nodes.size, dtype=np.intp)
        np.cumsum(counts[:-1], out=offsets[1:])
        flat = np.arange(total, dtype=np.intp) - offsets[owner] + starts[owner]
        kernels.append(_GroupKernel(nodes=nodes, flat=flat, owner=owner))
    return tuple(kernels)


def _schedule_node_groups(
    network: TrafficNetwork,
    schedule: GSPSchedule,
    sources: Sequence[int],
    clamped: np.ndarray,
    free: Sequence[int],
) -> List[List[int]]:
    """The update groups of one sweep (sweep-invariant schedules only)."""
    if schedule in (
        GSPSchedule.BFS,
        GSPSchedule.BFS_PARALLEL,
        GSPSchedule.BFS_COLORED,
    ):
        if sources:
            layers = [
                [i for i in layer if not clamped[i]]
                for layer in network.bfs_layers(sorted(sources))
            ]
            layers = [layer for layer in layers if layer]
        else:
            layers = [list(free)] if free else []
        if schedule is GSPSchedule.BFS_COLORED:
            # Refine each layer into independent groups; groups are then
            # swept Gauss-Seidel, but within a group every update could
            # run on its own core with an identical result.
            layers = [
                group
                for layer in layers
                for group in independent_update_groups(network, layer)
            ]
        return layers
    if schedule is GSPSchedule.INDEX:
        return [list(free)] if free else []
    if schedule is GSPSchedule.RANDOM:
        return [list(free)] if free else []  # permuted per sweep by the kernel
    raise ModelError(f"unknown schedule {schedule!r}")  # pragma: no cover


@dataclass
class GSPCacheStats:
    """Hit/miss counters of one :class:`GSPEngine`."""

    structure_hits: int = 0
    structure_misses: int = 0
    schedule_hits: int = 0
    schedule_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (for logs and tests)."""
        return {
            "structure_hits": self.structure_hits,
            "structure_misses": self.structure_misses,
            "schedule_hits": self.schedule_hits,
            "schedule_misses": self.schedule_misses,
        }


class GSPEngine:
    """Vectorized GSP solver with cached precomputations for one network.

    The engine owns two keyed LRU caches:

    * **structures** — :class:`PropagationStructure` per slot-parameter
      content digest (:func:`params_signature`).  Changing ``mu`` /
      ``sigma`` / ``rho`` changes the digest, so stale precisions can
      never be reused.
    * **schedules** — :class:`CompiledSchedule` per
      ``(schedule, frozenset(R^c))``.  Layers and colourings depend only
      on topology and the observed set, so one compilation serves every
      slot and every repeated query with the same selection.

    The engine is bound to one immutable :class:`TrafficNetwork`;
    propagating with parameters of mismatched dimensions raises
    :class:`ModelError` (networks themselves are immutable, so a changed
    road graph is necessarily a *different* network object and gets a
    fresh engine — see :func:`engine_for`).

    Args:
        network: The road graph.
        max_structures: LRU capacity of the structure cache.
        max_schedules: LRU capacity of the schedule cache.
    """

    def __init__(
        self,
        network: TrafficNetwork,
        max_structures: int = 8,
        max_schedules: int = 64,
    ) -> None:
        if max_structures <= 0 or max_schedules <= 0:
            raise ModelError("cache capacities must be positive")
        self._network = network
        self._max_structures = max_structures
        self._max_schedules = max_schedules
        self._structures: "OrderedDict[bytes, PropagationStructure]" = OrderedDict()
        self._schedules: "OrderedDict[Tuple[GSPSchedule, frozenset], CompiledSchedule]" = (
            OrderedDict()
        )
        # Guards the two LRU OrderedDicts: concurrent readers (snapshot-
        # isolated answer_query calls) share one engine, and OrderedDict
        # mutation is not thread-safe.  Compilation on miss happens
        # outside the lock; a racing duplicate build is harmless (last
        # write wins on identical immutable values).
        self._lock = threading.RLock()
        self.stats = GSPCacheStats()

    @property
    def network(self) -> TrafficNetwork:
        """The road graph this engine is compiled against."""
        return self._network

    def clear(self) -> None:
        """Drop both caches (counters are kept)."""
        with self._lock:
            self._structures.clear()
            self._schedules.clear()

    # -- cache plumbing -------------------------------------------------

    def structure_for(
        self, params: RTFSlot
    ) -> Tuple[PropagationStructure, bool]:
        """The CSR structure for one slot, compiling on miss.

        Returns:
            ``(structure, cache_hit)``.
        """
        key = params_signature(params)
        metrics = get_metrics()
        with self._lock:
            cached = self._structures.get(key)
            if cached is not None:
                self._structures.move_to_end(key)
                self.stats.structure_hits += 1
                metrics.counter(
                    "gsp.cache.lookups", {"cache": "structure", "result": "hit"}
                ).inc()
                return cached, True
        structure = build_propagation_structure(self._network, params)
        with self._lock:
            self._structures[key] = structure
            if len(self._structures) > self._max_structures:
                self._structures.popitem(last=False)
            self.stats.structure_misses += 1
        metrics.counter(
            "gsp.cache.lookups", {"cache": "structure", "result": "miss"}
        ).inc()
        return structure, False

    def schedule_for(
        self,
        schedule: GSPSchedule,
        observed_roads: frozenset,
        structure: PropagationStructure,
    ) -> Tuple[CompiledSchedule, bool]:
        """The compiled update groups for one ``(schedule, R^c)`` pair.

        Returns:
            ``(compiled, cache_hit)``.
        """
        key = (schedule, observed_roads)
        metrics = get_metrics()
        with self._lock:
            cached = self._schedules.get(key)
            if cached is not None:
                self._schedules.move_to_end(key)
                self.stats.schedule_hits += 1
                metrics.counter(
                    "gsp.cache.lookups", {"cache": "schedule", "result": "hit"}
                ).inc()
                return cached, True
        n = self._network.n_roads
        clamped = np.zeros(n, dtype=bool)
        for road in observed_roads:
            clamped[road] = True
        free = [i for i in range(n) if not clamped[i]]
        node_groups = _schedule_node_groups(
            self._network, schedule, sorted(observed_roads), clamped, free
        )
        compiled = CompiledSchedule(
            schedule=schedule,
            groups=_compile_groups(structure.indptr, node_groups),
            node_groups=tuple(tuple(int(i) for i in g) for g in node_groups),
        )
        with self._lock:
            self._schedules[key] = compiled
            if len(self._schedules) > self._max_schedules:
                self._schedules.popitem(last=False)
            self.stats.schedule_misses += 1
        metrics.counter(
            "gsp.cache.lookups", {"cache": "schedule", "result": "miss"}
        ).inc()
        return compiled, False

    # -- solving --------------------------------------------------------

    def propagate(
        self,
        params: RTFSlot,
        observed: Mapping[int, float],
        config: Optional[GSPConfig] = None,
        *,
        initial_field: Optional[np.ndarray] = None,
    ) -> GSPResult:
        """Run GSP for one slot (Alg. 5), using the cached structures.

        Args:
            params: RTF parameters of the query slot.
            observed: Probed speeds keyed by road index; clamped.
            config: Solver knobs.
            initial_field: Optional warm-start seed, shape
                ``(n_roads,)`` — the sweep starts from this field instead
                of the prior means μ (observed roads are still clamped to
                their probed values).  Converges to the same fixed point;
                a seed near it (e.g. the previous slot's converged field)
                cuts sweeps-to-convergence.  Callers are responsible for
                the seed's freshness — see
                ``ModelSnapshot.warm_field``/``store_warm_field``.

        Returns:
            A :class:`GSPResult`.

        Raises:
            ModelError: On index/shape problems or an impossible
                kernel/schedule/precision combination.
            ConvergenceError: In ``strict`` mode when ε is not reached.

        Warns:
            ConvergenceWarning: In non-strict mode when the sweep budget
                is exhausted before ε (also counted on the
                ``gsp.convergence.failures`` metric).
        """
        cfg = config or GSPConfig()
        kernel = cfg.resolved_kernel()
        if cfg.precision is PrecisionPolicy.FLOAT32 and kernel is not GSPKernel.VECTORIZED:
            raise ModelError(
                "float32 precision requires the vectorized kernel "
                "(see GSPConfig.with_precision)"
            )
        params.check_against(self._network)
        n = self._network.n_roads
        for road, value in observed.items():
            if not 0 <= road < n:
                raise ModelError(f"observed road index {road} outside 0..{n - 1}")
            if not np.isfinite(value) or value <= 0:
                raise ModelError(f"observed speed for road {road} must be positive")
        if initial_field is not None:
            seed_field = np.asarray(initial_field, dtype=np.float64)
            if seed_field.shape != (n,):
                raise ModelError(
                    f"initial_field shape {seed_field.shape} does not match "
                    f"{n} roads"
                )
            if not np.all(np.isfinite(seed_field)):
                raise ModelError("initial_field must be finite")
        else:
            seed_field = None

        tracer = get_tracer()
        with tracer.span(
            "gsp.propagate",
            slot=int(params.slot),
            schedule=cfg.schedule.value,
            kernel=kernel.value,
            observed_roads=len(observed),
            warm_start=seed_field is not None,
        ) as span:
            start = time.perf_counter()
            if seed_field is not None:
                speeds = seed_field.copy()
            else:
                speeds = params.mu.astype(np.float64).copy()
            for road, value in observed.items():
                speeds[road] = float(value)
            observed_set = frozenset(int(road) for road in observed)
            if len(observed_set) == n:
                runtime = time.perf_counter() - start
                span.set_attr("sweeps", 0)
                span.set_attr("converged", True)
                self._record_metrics(cfg, kernel, 0, True, (), runtime, observed_set)
                return GSPResult(
                    speeds=speeds,
                    sweeps=0,
                    converged=True,
                    max_delta_history=(),
                    runtime_seconds=runtime,
                    schedule=cfg.schedule,
                    kernel=kernel,
                    provenance=GSPProvenance(warm_start=seed_field is not None),
                )

            if kernel is GSPKernel.VECTORIZED:
                structure, structure_hit = self.structure_for(params)
                compiled, schedule_hit = self.schedule_for(
                    cfg.schedule, observed_set, structure
                )
                tracer.event(
                    "gsp.cache", structure_hit=structure_hit, schedule_hit=schedule_hit
                )
                speeds, sweeps, converged, history = _vectorized_sweeps(
                    structure, compiled, speeds, cfg
                )
                if cfg.precision is PrecisionPolicy.FLOAT32:
                    # Upcast and re-clamp: observed roads keep their exact
                    # probed values regardless of the sweep precision.
                    speeds = speeds.astype(np.float64)
                    for road, value in observed.items():
                        speeds[road] = float(value)
            else:
                structure_hit = schedule_hit = False
                speeds, sweeps, converged, history = _reference_sweeps(
                    self._network, params, observed_set, speeds, cfg
                )

            runtime = time.perf_counter() - start
            span.set_attr("sweeps", sweeps)
            span.set_attr("converged", converged)
            self._record_metrics(
                cfg, kernel, sweeps, converged, history, runtime, observed_set
            )
            if not converged:
                residual = history[-1] if history else float("inf")
                if cfg.strict:
                    raise ConvergenceError(
                        f"GSP did not reach epsilon={cfg.epsilon} within "
                        f"{cfg.max_sweeps} sweeps (last delta {residual:.4g})"
                    )
                warnings.warn(
                    f"GSP stopped at the max_sweeps={cfg.max_sweeps} cap without "
                    f"reaching epsilon={cfg.epsilon} (residual {residual:.4g}); "
                    f"returning the last iterate",
                    ConvergenceWarning,
                    stacklevel=3,
                )
            return GSPResult(
                speeds=speeds,
                sweeps=sweeps,
                converged=converged,
                max_delta_history=tuple(history),
                runtime_seconds=runtime,
                schedule=cfg.schedule,
                kernel=kernel,
                provenance=GSPProvenance(
                    structure_cache_hit=structure_hit,
                    schedule_cache_hit=schedule_hit,
                    warm_start=seed_field is not None,
                ),
            )

    def _record_metrics(
        self,
        cfg: GSPConfig,
        kernel: GSPKernel,
        sweeps: int,
        converged: bool,
        history: Sequence[float],
        runtime: float,
        observed_set: frozenset,
    ) -> None:
        """Publish one propagation's counters (no-op while disabled)."""
        metrics = get_metrics()
        if not metrics.enabled:
            return
        labels = {"schedule": cfg.schedule.value, "kernel": kernel.value}
        metrics.counter("gsp.propagations", labels).inc()
        metrics.histogram("gsp.sweeps", DEFAULT_ITERATION_BUCKETS, labels).observe(sweeps)
        metrics.histogram("gsp.runtime_seconds", DEFAULT_TIME_BUCKETS, labels).observe(
            runtime
        )
        metrics.counter("gsp.clamped_roads").inc(len(observed_set))
        metrics.gauge("gsp.last_max_delta").set(history[-1] if history else 0.0)
        if not converged:
            metrics.counter("gsp.convergence.failures", labels).inc()

    def propagate_batch(
        self,
        items: Sequence[Tuple[RTFSlot, Mapping[int, float]]],
        config: Optional[GSPConfig] = None,
        *,
        initial_fields: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[GSPResult]:
        """Answer several time slots in one call.

        Each item is a ``(slot parameters, observed speeds)`` pair; the
        BFS/colouring compilation is shared across items whose observed
        sets coincide, and structures are shared across items that reuse
        a slot's parameters.

        Args:
            items: Per-slot propagation inputs.
            config: Solver knobs applied to every item.
            initial_fields: Optional per-item warm-start seeds, aligned
                with ``items`` (``None`` entries cold-start from μ).

        Returns:
            One :class:`GSPResult` per item, in input order.
        """
        if initial_fields is not None and len(initial_fields) != len(items):
            raise ModelError(
                f"initial_fields length {len(initial_fields)} does not match "
                f"{len(items)} items"
            )
        seeds: Sequence[Optional[np.ndarray]]
        seeds = initial_fields if initial_fields is not None else [None] * len(items)
        return [
            self.propagate(params, observed, config, initial_field=seed)
            for (params, observed), seed in zip(items, seeds)
        ]


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------


def _vectorized_sweeps(
    structure: PropagationStructure,
    compiled: CompiledSchedule,
    speeds: np.ndarray,
    cfg: GSPConfig,
) -> Tuple[np.ndarray, int, bool, List[float]]:
    """Fused group updates until ε-convergence (Eq. 18, whole groups)."""
    # Gather the per-group parameter slices once per call; only the
    # neighbour-value gather remains inside the sweep loop.  Under the
    # FLOAT32 policy the folded parameters and the iterate are cast down
    # once here and the whole sweep runs single-precision.
    dtype = cfg.precision.dtype
    if speeds.dtype != dtype:
        speeds = speeds.astype(dtype)
    prepared = []
    for group in compiled.groups:
        prepared.append(
            (
                group.nodes,
                structure.indices[group.flat],
                structure.weights[group.flat].astype(dtype, copy=False),
                group.owner,
                structure.const_pull[group.nodes].astype(dtype, copy=False),
                structure.denom[group.nodes].astype(dtype, copy=False),
                group.nodes.size,
            )
        )
    tracer = get_tracer()
    trace_sweeps = tracer.enabled  # one bool check per sweep when disabled
    history: List[float] = []
    converged = False
    sweeps = 0
    for sweep in range(1, cfg.max_sweeps + 1):
        sweeps = sweep
        max_delta = 0.0
        for nodes, gather, weights, owner, const_pull, denom, size in prepared:
            contrib = np.bincount(owner, weights=weights * speeds[gather], minlength=size)
            new = (const_pull + contrib) / denom
            if size:
                delta = float(np.max(np.abs(new - speeds[nodes])))
                if delta > max_delta:
                    max_delta = delta
                speeds[nodes] = new
        history.append(max_delta)
        if trace_sweeps:
            tracer.event("gsp.sweep", sweep=sweep, max_delta=max_delta)
        if max_delta < cfg.epsilon:
            converged = True
            break
    return speeds, sweeps, converged, history


def _build_update_structure(
    network: TrafficNetwork, params: RTFSlot
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray], List[np.ndarray]]:
    """Precompute, per road, its neighbour arrays and edge precisions.

    Returns ``(prior_precision, prior_pull, neighbor_idx, edge_weight)``
    where for road i the Eq. 18 update is::

        v_i = (prior_pull[i] + Σ_k edge_weight[i][k] * (v[neighbor_idx[i][k]] + mu_ij))
              / (prior_precision[i] + Σ_k edge_weight[i][k])

    The ``mu_ij`` pull is folded into a constant, so the loop only
    gathers neighbour values.  This is the reference kernel's builder;
    it deliberately goes through the per-node ``neighbors``/``edge_id``
    API rather than the CSR export, so the two kernels compute their
    precisions through independent code paths.
    """
    n = network.n_roads
    sigma2 = params.sigma * params.sigma
    prior_precision = 1.0 / sigma2
    prior_pull = params.mu / sigma2
    edge_var = params.edge_variance(network)
    neighbor_idx: List[np.ndarray] = []
    edge_weight: List[np.ndarray] = []
    for i in range(n):
        neigh = np.array(network.neighbors(i), dtype=int)
        if neigh.size:
            weights = np.array(
                [1.0 / edge_var[network.edge_id(i, int(j))] for j in neigh]
            )
        else:
            weights = np.zeros(0)
        neighbor_idx.append(neigh)
        edge_weight.append(weights)
    return prior_precision, prior_pull, neighbor_idx, edge_weight


def _reference_sweeps(
    network: TrafficNetwork,
    params: RTFSlot,
    observed_set: frozenset,
    speeds: np.ndarray,
    cfg: GSPConfig,
) -> Tuple[np.ndarray, int, bool, List[float]]:
    """The per-node Alg. 5 loop — the oracle the fast path is tested against."""
    n = network.n_roads
    clamped = np.zeros(n, dtype=bool)
    for road in observed_set:
        clamped[road] = True
    free = [i for i in range(n) if not clamped[i]]
    prior_precision, prior_pull, neighbor_idx, edge_weight = _build_update_structure(
        network, params
    )
    mu = params.mu
    rng = np.random.default_rng(cfg.seed)
    layers = _schedule_node_groups(network, cfg.schedule, sorted(observed_set), clamped, free)

    def updated_value(i: int, values: np.ndarray) -> float:
        neigh = neighbor_idx[i]
        if neigh.size:
            w = edge_weight[i]
            # mu_ij = mu_i - mu_j folded in: neighbour j contributes
            # (v_j + mu_i - mu_j) * w_ij.
            pull = prior_pull[i] + float(np.dot(w, values[neigh] + mu[i] - mu[neigh]))
            precision = prior_precision[i] + float(w.sum())
        else:
            pull = prior_pull[i]
            precision = prior_precision[i]
        return pull / precision

    tracer = get_tracer()
    trace_sweeps = tracer.enabled
    history: List[float] = []
    converged = False
    sweeps = 0
    for sweep in range(1, cfg.max_sweeps + 1):
        sweeps = sweep
        max_delta = 0.0
        if cfg.schedule is GSPSchedule.RANDOM:
            order_layers = [list(rng.permutation(free))]
        else:
            order_layers = layers
        if cfg.schedule is GSPSchedule.BFS_PARALLEL:
            for layer in order_layers:
                # Jacobi within the layer: all reads before any write.
                new_values = [updated_value(int(i), speeds) for i in layer]
                for i, value in zip(layer, new_values):
                    max_delta = max(max_delta, abs(value - speeds[int(i)]))
                    speeds[int(i)] = value
        else:
            for layer in order_layers:
                for i in layer:
                    value = updated_value(int(i), speeds)
                    max_delta = max(max_delta, abs(value - speeds[int(i)]))
                    speeds[int(i)] = value
        history.append(max_delta)
        if trace_sweeps:
            tracer.event("gsp.sweep", sweep=sweep, max_delta=max_delta)
        if max_delta < cfg.epsilon:
            converged = True
            break
    return speeds, sweeps, converged, history


# ----------------------------------------------------------------------
# Module-level facade
# ----------------------------------------------------------------------

#: Engines keyed by network, LRU-bounded.  Keyed by network *content*
#: (TrafficNetwork is immutable with value equality/hash), so an equal
#: rebuild of the same city shares its engine while any topology change
#: necessarily maps to a fresh one.
_ENGINES: "OrderedDict[TrafficNetwork, GSPEngine]" = OrderedDict()
_MAX_ENGINES = 4
_ENGINES_LOCK = threading.Lock()


def engine_for(network: TrafficNetwork) -> GSPEngine:
    """The shared :class:`GSPEngine` for a network (created on demand)."""
    with _ENGINES_LOCK:
        engine = _ENGINES.get(network)
        if engine is None:
            engine = GSPEngine(network)
            _ENGINES[network] = engine
            if len(_ENGINES) > _MAX_ENGINES:
                _ENGINES.popitem(last=False)
        else:
            _ENGINES.move_to_end(network)
        return engine


def clear_engine_cache() -> None:
    """Drop every shared engine (mainly for tests)."""
    with _ENGINES_LOCK:
        _ENGINES.clear()


def propagate(
    network: TrafficNetwork,
    params: RTFSlot,
    observed: Mapping[int, float],
    config: Optional[GSPConfig] = None,
) -> GSPResult:
    """Run GSP (Alg. 5).

    Stateless facade over the shared per-network :class:`GSPEngine`, so
    repeated calls on the same network reuse cached structures.

    Args:
        network: Road graph.
        params: RTF parameters of the query slot.
        observed: Probed speeds keyed by road index (the crowdsourced
            data ``V̂_{R^c}``); these roads stay clamped.
        config: Solver knobs.

    Returns:
        A :class:`GSPResult` with the inferred full speed field.

    Raises:
        ModelError: On index/shape problems.
        ConvergenceError: In ``strict`` mode when ε is not reached.
    """
    return engine_for(network).propagate(params, observed, config)


def propagate_batch(
    network: TrafficNetwork,
    items: Sequence[Tuple[RTFSlot, Mapping[int, float]]],
    config: Optional[GSPConfig] = None,
) -> List[GSPResult]:
    """Answer several time slots in one call (see :meth:`GSPEngine.propagate_batch`)."""
    return engine_for(network).propagate_batch(items, config)
