"""The canonical request type of the estimation stack.

Before v2 every layer spelled "one query" its own way: the pipeline took
a dozen positional arguments, the serving layer had ``ServeRequest``,
workload traces a third ``WorkloadItem`` spelling with ``deadline_ms``.
:class:`EstimationRequest` is the single shared type: the pipeline
(:meth:`~repro.core.pipeline.CrowdRTSE.answer_query`), the serving layer
(:meth:`~repro.serve.service.QueryService.submit`), the workload JSONL
format, and the CLI all construct and consume it.  The old spellings
remain as deprecated shims (see the deprecation table in docs/API.md).

The request also carries the two per-query latency knobs introduced with
it:

* ``precision`` — the GSP sweep precision
  (:class:`~repro.core.gsp.PrecisionPolicy` spelling; ``"float64"`` is
  the bit-exact reference, ``"float32"`` the opt-in fast mode with a
  documented tolerance contract);
* ``warm_start`` — seed the propagation from the previous converged
  field of the same ``(parameter digest, R^c)`` pair when one is cached
  (:meth:`~repro.core.store.ModelSnapshot.warm_field`).  Warm-started
  runs converge to the same fixed point within the solver's ε, not
  bit-identically — the deprecated legacy spellings therefore default it
  off to stay byte-stable with pre-v2 answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ModelError
from repro.core.gsp import PrecisionPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids crowd import at runtime
    from repro.crowd.market import CrowdMarket, TruthOracle


@dataclass(frozen=True)
class EstimationRequest:
    """One realtime speed-estimation query, end to end.

    Attributes:
        queried: Queried road indices ``R^q`` (normalized to a tuple of
            ints).
        slot: Global time slot of the query.
        budget: Crowdsourcing budget ``K``.
        theta: Redundancy threshold θ of the OCS instance.
        selector: OCS solver — ``"hybrid"``, ``"ratio"``, ``"objective"``
            or ``"random"``.
        deadline_s: Wall-clock budget over the whole OCS → probe →
            estimate span (``None`` → no deadline; the serving layer may
            substitute its configured default).
        market: Crowd marketplace to probe (``None`` → the callee's
            default: the ``market`` argument of ``answer_query`` or the
            service-level market).
        truth: Ground-truth oracle the simulated workers measure
            (``None`` → callee default, as for ``market``).
        rng: RNG for the ``"random"`` selector.
        coalescable: Whether the serving layer may batch this request
            with same-slot neighbours.
        backend: Estimator backend that turns the probes into the speed
            field (``"rtf_gsp"`` is the paper's GSP pipeline).
        precision: GSP sweep precision, ``"float64"`` (reference) or
            ``"float32"`` (opt-in; see
            :class:`~repro.core.gsp.PrecisionPolicy` for the tolerance
            contract).
        warm_start: Seed GSP from the previous converged field of the
            same ``(parameter digest, R^c)`` when cached.  Converges to
            the same fixed point within ε, not bit-identically.
        day: Test-day index used by workload replay drivers to bind
            per-day markets/truth oracles; ignored by the pipeline.
    """

    queried: Tuple[int, ...]
    slot: int
    budget: float
    theta: float = 0.92
    selector: str = "hybrid"
    deadline_s: Optional[float] = None
    market: Optional["CrowdMarket"] = None
    truth: Optional["TruthOracle"] = None
    rng: Optional[np.random.Generator] = None
    coalescable: bool = True
    backend: str = "rtf_gsp"
    precision: str = "float64"
    warm_start: bool = True
    day: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "queried", tuple(int(q) for q in self.queried)
        )
        object.__setattr__(self, "slot", int(self.slot))
        object.__setattr__(self, "budget", float(self.budget))
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ModelError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        # Normalize to the canonical string spelling, rejecting unknown
        # precisions at construction instead of deep inside the solver.
        object.__setattr__(
            self, "precision", PrecisionPolicy.coerce(self.precision).value
        )

    @property
    def precision_policy(self) -> PrecisionPolicy:
        """The request's precision as a :class:`PrecisionPolicy`."""
        return PrecisionPolicy.coerce(self.precision)

    def bound(
        self,
        market: Optional["CrowdMarket"] = None,
        truth: Optional["TruthOracle"] = None,
    ) -> "EstimationRequest":
        """This request with unset market/truth filled from defaults.

        Returns ``self`` when nothing needs binding, so the common
        fully-specified request costs no copy.
        """
        from dataclasses import replace

        updates = {}
        if self.market is None and market is not None:
            updates["market"] = market
        if self.truth is None and truth is not None:
            updates["truth"] = truth
        if not updates:
            return self
        return replace(self, **updates)


def as_request(
    request: Union[EstimationRequest, Sequence[int]],
    **overrides: object,
) -> EstimationRequest:
    """Coerce a request-or-queried-sequence into an :class:`EstimationRequest`.

    Helper for shims that accept both the canonical type and the legacy
    "first argument is the queried roads" spelling.  ``overrides`` are
    only applied on the legacy path; passing an
    :class:`EstimationRequest` returns it unchanged.
    """
    if isinstance(request, EstimationRequest):
        return request
    return EstimationRequest(
        queried=tuple(int(q) for q in request), **overrides  # type: ignore[arg-type]
    )
