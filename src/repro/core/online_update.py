"""Online (streaming) RTF parameter maintenance.

The paper fits RTF offline from a fixed three-month crawl.  A deployed
system keeps receiving new days of data, and traffic statistics drift
(roadworks, seasonal shifts).  :class:`OnlineRTFUpdater` maintains the
per-slot parameters incrementally with exponential forgetting:

.. math::

    m_i \\leftarrow (1-\\eta)\\, m_i + \\eta\\, v_i, \\qquad
    s_i \\leftarrow (1-\\eta)\\, s_i + \\eta\\,(v_i - m_i)^2, \\qquad
    c_{ij} \\leftarrow (1-\\eta)\\, c_{ij} + \\eta\\,(v_i - m_i)(v_j - m_j)

so the effective memory is about ``1/eta`` days.  Because the
normalized pseudo-likelihood's stationary point *is* the (weighted)
moment set (see :mod:`repro.core.inference`), these running moments stay
the maximum-likelihood parameters of the drifting model — no gradient
loop is needed per day.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.errors import ModelError, warn_once
from repro.core.rtf import RTFModel, RTFSlot, SIGMA_FLOOR
from repro.network.graph import TrafficNetwork
from repro.obs import get_metrics


def note_unfitted_slots(dropped: Sequence[int], available: Sequence[int]) -> None:
    """Account for observations targeting slots the model never fitted.

    Historically :func:`refresh_model` filtered such slots silently — a
    stream wired to the wrong slot window would feed a model that never
    moved, with no trace.  Every dropped slot now lands in the
    ``stream.dropped{reason="unfitted_slot"}`` counter, and the first
    occurrence warns (once per process; the condition repeats every
    batch, so more would be noise).
    """
    if not dropped:
        return
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter(
            "stream.dropped", {"reason": "unfitted_slot"}
        ).inc(len(dropped))
    warn_once(
        "online_update.unfitted_slots",
        f"dropping observations for slot(s) {sorted(set(dropped))}: not in "
        f"the model's fitted slot range {sorted(available)} (warned once "
        "per process; see the stream.dropped{reason=\"unfitted_slot\"} "
        "counter for the running total)",
    )


class OnlineRTFUpdater:
    """Maintains one slot's RTF parameters from a stream of daily samples.

    Args:
        network: Road graph.
        initial: Starting parameters (e.g. from the offline fit).
        learning_rate: Forgetting factor η in (0, 1); memory ≈ 1/η days.
        sigma_floor: Lower bound kept on σ.
    """

    def __init__(
        self,
        network: TrafficNetwork,
        initial: RTFSlot,
        learning_rate: float = 0.05,
        sigma_floor: float = SIGMA_FLOOR,
    ) -> None:
        if not 0.0 < learning_rate < 1.0:
            raise ModelError(
                f"learning_rate must be in (0, 1), got {learning_rate}"
            )
        initial.check_against(network)
        self._network = network
        self._eta = learning_rate
        self._sigma_floor = sigma_floor
        self._slot = initial.slot
        self._mean = initial.mu.astype(np.float64).copy()
        self._var = (initial.sigma.astype(np.float64) ** 2).copy()
        if network.edges:
            ei, ej = np.array(network.edges).T
            self._ei, self._ej = ei, ej
            self._cov = (
                initial.rho * initial.sigma[ei] * initial.sigma[ej]
            ).astype(np.float64)
        else:
            self._ei = np.zeros(0, dtype=int)
            self._ej = np.zeros(0, dtype=int)
            self._cov = np.zeros(0)
        self._n_updates = 0

    @property
    def n_updates(self) -> int:
        """Number of daily samples absorbed so far."""
        return self._n_updates

    @property
    def learning_rate(self) -> float:
        """The forgetting factor η."""
        return self._eta

    def update(self, sample: np.ndarray) -> RTFSlot:
        """Absorb one day's speeds for this slot and return new params.

        Args:
            sample: Speeds of every road in this slot today, shape
                ``(n_roads,)``.

        Returns:
            The refreshed :class:`RTFSlot`.
        """
        sample = np.asarray(sample, dtype=np.float64)
        if sample.shape != (self._network.n_roads,):
            raise ModelError(
                f"sample must have shape ({self._network.n_roads},), "
                f"got {sample.shape}"
            )
        if np.any(~np.isfinite(sample)) or np.any(sample <= 0):
            raise ModelError("sample speeds must be finite and positive")
        eta = self._eta
        residual = sample - self._mean
        self._mean += eta * residual
        # Use the post-update mean for the second moments (EW moments).
        centered = sample - self._mean
        self._var = (1 - eta) * self._var + eta * centered * centered
        if self._ei.size:
            self._cov = (1 - eta) * self._cov + eta * (
                centered[self._ei] * centered[self._ej]
            )
        self._n_updates += 1
        return self.current()

    def update_many(self, samples: Iterable[np.ndarray]) -> RTFSlot:
        """Absorb several days in order; returns the final parameters."""
        params = self.current()
        for sample in samples:
            params = self.update(sample)
        return params

    def current(self) -> RTFSlot:
        """The present parameters as an :class:`RTFSlot`."""
        sigma = np.sqrt(np.maximum(self._var, self._sigma_floor**2))
        if self._ei.size:
            rho = np.clip(
                self._cov / (sigma[self._ei] * sigma[self._ej]), 0.0, 1.0
            )
        else:
            rho = np.zeros(0)
        return RTFSlot(slot=self._slot, mu=self._mean.copy(), sigma=sigma, rho=rho)


def refresh_slots(
    network: TrafficNetwork,
    current: Mapping[int, RTFSlot],
    day_samples: Mapping[int, np.ndarray],
    learning_rate: float = 0.05,
) -> List[RTFSlot]:
    """Advance exactly the touched slots by one daily sample.

    The shared building block of :func:`refresh_model` and
    :meth:`repro.core.store.ModelStore.refresh`: only slots named in
    ``day_samples`` are updated and returned; everything else is left to
    the caller's sharing strategy (copy-on-write in the store).

    Args:
        network: Road graph.
        current: Present parameters per slot (must cover every key of
            ``day_samples``).
        day_samples: Mapping slot → today's speed vector for that slot.
        learning_rate: Forgetting factor η.

    Returns:
        The refreshed :class:`RTFSlot` per touched slot, in mapping
        order.

    Raises:
        ModelError: When a sampled slot has no current parameters.
    """
    refreshed: List[RTFSlot] = []
    for slot, sample in day_samples.items():
        if slot not in current:
            raise ModelError(
                f"cannot refresh slot {slot}: no current parameters "
                f"(available: {sorted(current)})"
            )
        updater = OnlineRTFUpdater(network, current[slot], learning_rate)
        refreshed.append(updater.update(sample))
    return refreshed


def refresh_model(
    network: TrafficNetwork,
    model: RTFModel,
    day_samples: Dict[int, np.ndarray],
    learning_rate: float = 0.05,
) -> RTFModel:
    """One-shot convenience: absorb one new day into several slots.

    Args:
        network: Road graph.
        model: Current RTF model.
        day_samples: Mapping slot → today's speed vector for that slot.
            Slots absent from the mapping keep their parameters; sampled
            slots the model never fitted are dropped — counted under
            ``stream.dropped{reason="unfitted_slot"}`` and warned once.
        learning_rate: Forgetting factor η.

    Returns:
        A new :class:`RTFModel` with the refreshed slots.
    """
    current = {slot: model.slot(slot) for slot in model.slots}
    touched = {
        slot: sample for slot, sample in day_samples.items() if slot in current
    }
    note_unfitted_slots(
        [slot for slot in day_samples if slot not in current], sorted(current)
    )
    replacements = {
        params.slot: params
        for params in refresh_slots(network, current, touched, learning_rate)
    }
    return RTFModel(
        network,
        [replacements.get(slot, current[slot]) for slot in model.slots],
    )
