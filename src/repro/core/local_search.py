"""Local-search refinement for OCS solutions.

Hybrid-Greedy has the (1 − 1/e)/2 guarantee, but how far is it from
optimal in practice on instances too large for brute force?  This module
answers that with a swap/add/drop local search: starting from any
feasible selection it repeatedly applies the best improving move until a
local optimum.  Because every accepted move strictly improves Eq. 13,
the result upper-bounds how much any small perturbation could gain —
the gap it closes over Hybrid-Greedy is an empirical measure of the
greedy's slack.

The default *incremental* mode evaluates each trial move from a cached
per-queried-road coverage state (best and second-best correlation over
the current selection) instead of re-scoring the whole selection with
``instance.objective`` — ``O(|R^q|)`` per trial instead of
``O(|R^q| · |R^c|)``.  The trial values are the same maxima the full
rescore computes, reduced by the same ``np.dot``, so move decisions are
bit-identical to the oracle (``incremental=False``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.ocs import OCSInstance, OCSResult
from repro.errors import SelectionError
from repro.obs import DEFAULT_ITERATION_BUCKETS, get_metrics, get_tracer


def _is_feasible_swap(
    instance: OCSInstance,
    selected: Set[int],
    remove: Optional[int],
    add: Optional[int],
) -> bool:
    trial = set(selected)
    if remove is not None:
        trial.discard(remove)
    if add is not None:
        if add in trial:
            return False
        trial.add(add)
    return instance.is_feasible(sorted(trial))


class _CoverState:
    """Cached coverage of the current selection for O(|R^q|) trial moves.

    For every queried road, tracks the best and second-best correlation
    over the selected roads (and which selected road provides the best),
    so an *add* trial is ``max(best, corr[·, road])`` and a *swap* trial
    replaces the outgoing road's contribution with the runner-up before
    taking the max.  Feasibility checks reduce to one vectorized
    redundancy row test plus an O(1) cost comparison because the current
    selection is feasible by invariant.
    """

    def __init__(self, instance: OCSInstance) -> None:
        self.instance = instance
        self.q = np.asarray(instance.queried, dtype=int)
        self.sigma_q = instance.sigma[self.q]
        self.cost_of: Dict[int, float] = {
            int(road): float(c) for road, c in zip(instance.candidates, instance.costs)
        }
        self.sel: List[int] = []
        self.total_cost = 0.0
        self.best = np.full(len(self.q), -np.inf)
        self.best_road = np.full(len(self.q), -1, dtype=int)
        self.second = np.full(len(self.q), -np.inf)

    def rebuild(self, selected: Set[int]) -> None:
        """Recompute the coverage caches for a new current selection."""
        self.sel = sorted(int(r) for r in selected)
        self.total_cost = sum(self.cost_of[r] for r in self.sel)
        n_q = len(self.q)
        if not self.sel:
            self.best = np.full(n_q, -np.inf)
            self.best_road = np.full(n_q, -1, dtype=int)
            self.second = np.full(n_q, -np.inf)
            return
        sel_arr = np.asarray(self.sel, dtype=int)
        cover = self.instance.corr[np.ix_(self.q, sel_arr)]
        arg = cover.argmax(axis=1)
        self.best = cover[np.arange(n_q), arg]
        self.best_road = sel_arr[arg]
        if len(self.sel) > 1:
            runner = cover.copy()
            runner[np.arange(n_q), arg] = -np.inf
            self.second = runner.max(axis=1)
        else:
            self.second = np.full(n_q, -np.inf)

    def add_objective(self, road: int) -> float:
        """Eq. 13 of ``sel ∪ {road}`` without rescanning the selection."""
        values = np.maximum(self.best, self.instance.corr[self.q, road])
        return float(np.dot(self.sigma_q, values))

    def swap_objective(self, out: int, road: int) -> float:
        """Eq. 13 of ``(sel − {out}) ∪ {road}``."""
        excl = np.where(self.best_road == out, self.second, self.best)
        values = np.maximum(excl, self.instance.corr[self.q, road])
        return float(np.dot(self.sigma_q, values))

    def feasible_add(self, road: int) -> bool:
        if road not in self.cost_of or road in self.sel:
            return False
        if self.total_cost + self.cost_of[road] > self.instance.budget + 1e-9:
            return False
        return self._redundancy_ok(road, exclude=None)

    def feasible_swap(self, out: int, road: int) -> bool:
        if road not in self.cost_of or road in self.sel:
            return False
        cost = self.total_cost - self.cost_of[out] + self.cost_of[road]
        if cost > self.instance.budget + 1e-9:
            return False
        return self._redundancy_ok(road, exclude=out)

    def _redundancy_ok(self, road: int, exclude: Optional[int]) -> bool:
        others = [r for r in self.sel if r != exclude]
        if not others:
            return True
        row = self.instance.corr[road, np.asarray(others, dtype=int)]
        return bool(np.all(row <= self.instance.theta + 1e-12))


def local_search(
    instance: OCSInstance,
    initial: Sequence[int] = (),
    max_rounds: int = 200,
    *,
    incremental: bool = True,
) -> OCSResult:
    """Best-improvement local search over add / drop / swap moves.

    Args:
        instance: The OCS problem.
        initial: Feasible starting selection (e.g. Hybrid-Greedy's
            output); empty to start from scratch.
        max_rounds: Cap on improving rounds.
        incremental: Evaluate trial moves from the cached coverage state
            (default).  ``False`` re-scores every trial with
            ``instance.objective`` — the slow oracle the incremental
            mode is differential-tested against; both modes apply the
            same move sequence.

    Returns:
        An :class:`OCSResult` at a local optimum (no single add, drop or
        swap improves the objective).

    Raises:
        SelectionError: When the starting selection is infeasible.
    """
    if not instance.is_feasible(list(initial)):
        raise SelectionError("local search needs a feasible starting selection")
    start = time.perf_counter()
    tracer = get_tracer()
    selected: Set[int] = {int(r) for r in initial}
    candidates = list(instance.candidates)
    best_objective = instance.objective(sorted(selected))
    cover = _CoverState(instance) if incremental else None
    if cover is not None:
        cover.rebuild(selected)
    rounds = 0
    objective_evaluations = 1
    moves_applied = {"add": 0, "swap": 0}
    for _ in range(max_rounds):
        rounds += 1
        best_move: Optional[Tuple[Optional[int], Optional[int]]] = None
        best_gain = 1e-9
        # Adds.
        for road in candidates:
            if road in selected:
                continue
            if cover is not None:
                if not cover.feasible_add(road):
                    continue
                trial = cover.add_objective(road)
            else:
                if not _is_feasible_swap(instance, selected, None, road):
                    continue
                trial = instance.objective(sorted(selected | {road}))
            gain = trial - best_objective
            objective_evaluations += 1
            if gain > best_gain:
                best_gain, best_move = gain, (None, road)
        # Swaps (drop one, add one).
        for out in list(selected):
            without = selected - {out}
            for road in candidates:
                if road in selected:
                    continue
                if cover is not None:
                    if not cover.feasible_swap(out, road):
                        continue
                    trial = cover.swap_objective(out, road)
                else:
                    if not _is_feasible_swap(instance, without, None, road):
                        continue
                    trial = instance.objective(sorted(without | {road}))
                gain = trial - best_objective
                objective_evaluations += 1
                if gain > best_gain:
                    best_gain, best_move = gain, (out, road)
            # Pure drops can never improve a monotone objective; skip.
        if best_move is None:
            break
        out, into = best_move
        if out is not None:
            selected.discard(out)
        if into is not None:
            selected.add(into)
        if cover is not None:
            cover.rebuild(selected)
        kind = "add" if out is None else "swap"
        moves_applied[kind] += 1
        tracer.event(
            "ocs.local_search.move", kind=kind, gain=best_gain, round=rounds
        )
        best_objective += best_gain
    final = sorted(selected)
    result = OCSResult(
        selected=tuple(final),
        objective=instance.objective(final),
        cost=instance.selection_cost(final),
        iterations=rounds,
        runtime_seconds=time.perf_counter() - start,
        algorithm="local-search",
    )
    metrics = get_metrics()
    if metrics.enabled:
        labels = {"algorithm": "local-search"}
        metrics.counter("ocs.solves", labels).inc()
        metrics.counter("ocs.objective_evaluations", labels).inc(objective_evaluations)
        metrics.histogram(
            "ocs.local_search.rounds", DEFAULT_ITERATION_BUCKETS
        ).observe(rounds)
        for kind, count in moves_applied.items():
            if count:
                metrics.counter("ocs.local_search.moves", {"kind": kind}).inc(count)
    return result


def greedy_plus_local_search(
    instance: OCSInstance, max_rounds: int = 200
) -> Tuple[OCSResult, float]:
    """Hybrid-Greedy followed by local search; returns (result, gap).

    ``gap`` is the relative improvement the local search found over the
    greedy solution — 0.0 means the greedy was already locally optimal.
    """
    from repro.core.ocs import hybrid_greedy

    greedy = hybrid_greedy(instance)
    refined = local_search(instance, greedy.selected, max_rounds)
    if greedy.objective > 0:
        gap = (refined.objective - greedy.objective) / greedy.objective
    else:
        gap = 0.0
    return refined, float(max(gap, 0.0))
