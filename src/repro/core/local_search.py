"""Local-search refinement for OCS solutions.

Hybrid-Greedy has the (1 − 1/e)/2 guarantee, but how far is it from
optimal in practice on instances too large for brute force?  This module
answers that with a swap/add/drop local search: starting from any
feasible selection it repeatedly applies the best improving move until a
local optimum.  Because every accepted move strictly improves Eq. 13,
the result upper-bounds how much any small perturbation could gain —
the gap it closes over Hybrid-Greedy is an empirical measure of the
greedy's slack.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Set, Tuple


from repro.errors import SelectionError
from repro.core.ocs import OCSInstance, OCSResult
from repro.obs import DEFAULT_ITERATION_BUCKETS, get_metrics, get_tracer


def _is_feasible_swap(
    instance: OCSInstance,
    selected: Set[int],
    remove: Optional[int],
    add: Optional[int],
) -> bool:
    trial = set(selected)
    if remove is not None:
        trial.discard(remove)
    if add is not None:
        if add in trial:
            return False
        trial.add(add)
    return instance.is_feasible(sorted(trial))


def local_search(
    instance: OCSInstance,
    initial: Sequence[int] = (),
    max_rounds: int = 200,
) -> OCSResult:
    """Best-improvement local search over add / drop / swap moves.

    Args:
        instance: The OCS problem.
        initial: Feasible starting selection (e.g. Hybrid-Greedy's
            output); empty to start from scratch.
        max_rounds: Cap on improving rounds.

    Returns:
        An :class:`OCSResult` at a local optimum (no single add, drop or
        swap improves the objective).

    Raises:
        SelectionError: When the starting selection is infeasible.
    """
    if not instance.is_feasible(list(initial)):
        raise SelectionError("local search needs a feasible starting selection")
    start = time.perf_counter()
    tracer = get_tracer()
    selected: Set[int] = {int(r) for r in initial}
    candidates = list(instance.candidates)
    best_objective = instance.objective(sorted(selected))
    rounds = 0
    objective_evaluations = 1
    moves_applied = {"add": 0, "swap": 0}
    for _ in range(max_rounds):
        rounds += 1
        best_move: Optional[Tuple[Optional[int], Optional[int]]] = None
        best_gain = 1e-9
        # Adds.
        for road in candidates:
            if road in selected:
                continue
            if not _is_feasible_swap(instance, selected, None, road):
                continue
            gain = instance.objective(sorted(selected | {road})) - best_objective
            objective_evaluations += 1
            if gain > best_gain:
                best_gain, best_move = gain, (None, road)
        # Swaps (drop one, add one).
        for out in list(selected):
            without = selected - {out}
            base_without = instance.objective(sorted(without))
            objective_evaluations += 1
            for road in candidates:
                if road in selected:
                    continue
                if not _is_feasible_swap(instance, without, None, road):
                    continue
                gain = (
                    instance.objective(sorted(without | {road})) - best_objective
                )
                objective_evaluations += 1
                if gain > best_gain:
                    best_gain, best_move = gain, (out, road)
            # Pure drops can never improve a monotone objective; skip.
            del base_without
        if best_move is None:
            break
        out, into = best_move
        if out is not None:
            selected.discard(out)
        if into is not None:
            selected.add(into)
        kind = "add" if out is None else "swap"
        moves_applied[kind] += 1
        tracer.event(
            "ocs.local_search.move", kind=kind, gain=best_gain, round=rounds
        )
        best_objective += best_gain
    final = sorted(selected)
    result = OCSResult(
        selected=tuple(final),
        objective=instance.objective(final),
        cost=instance.selection_cost(final),
        iterations=rounds,
        runtime_seconds=time.perf_counter() - start,
        algorithm="local-search",
    )
    metrics = get_metrics()
    if metrics.enabled:
        labels = {"algorithm": "local-search"}
        metrics.counter("ocs.solves", labels).inc()
        metrics.counter("ocs.objective_evaluations", labels).inc(objective_evaluations)
        metrics.histogram(
            "ocs.local_search.rounds", DEFAULT_ITERATION_BUCKETS
        ).observe(rounds)
        for kind, count in moves_applied.items():
            if count:
                metrics.counter("ocs.local_search.moves", {"kind": kind}).inc(count)
    return result


def greedy_plus_local_search(
    instance: OCSInstance, max_rounds: int = 200
) -> Tuple[OCSResult, float]:
    """Hybrid-Greedy followed by local search; returns (result, gap).

    ``gap`` is the relative improvement the local search found over the
    greedy solution — 0.0 means the greedy was already locally optimal.
    """
    from repro.core.ocs import hybrid_greedy

    greedy = hybrid_greedy(instance)
    refined = local_search(instance, greedy.selected, max_rounds)
    if greedy.objective > 0:
        gap = (refined.objective - greedy.objective) / greedy.objective
    else:
        gap = 0.0
    return refined, float(max(gap, 0.0))
