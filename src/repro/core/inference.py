"""Offline RTF parameter inference (paper §IV-B, Alg. 1).

Given the historical record ``H`` the parameters ``M`` (means), ``Ω``
(std devs) and ``P`` (edge correlations) are fitted by cyclic coordinate
ascent: for each block the gradient of the joint likelihood is taken and
a step ``x ← x + λ ∂L/∂x`` applied, until the maximum gradient over
``M`` falls below the threshold (this is also the convergence criterion
the paper uses for Fig. 5).

Two objectives are supported:

* ``normalized=True`` (default) — Eq. 5 *plus* the Gaussian
  normalization terms ``-log sigma^2`` that Eq. 5 drops.  Without them
  the objective is unbounded in ``sigma`` (penalties only shrink as
  ``sigma → ∞``), so the paper's raw objective admits no finite
  maximizer over Ω/P.  The normalized pseudo-likelihood is the standard
  well-posed completion; its stationary points are the empirical
  moments, which is what the paper's parameters mean in Remark 1.
* ``normalized=False`` — the paper's literal Eq. 5.  Useful to study μ
  convergence (whose gradient is identical in both variants) and for
  the fidelity ablation; σ and ρ are kept inside their bounds by
  clipping.

Everything is vectorized over roads/edges; each CCD iteration costs
``O(S(|R| + |E|))`` for ``S`` history samples.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConvergenceError, ConvergenceWarning, ModelError
from repro.core.rtf import PAIR_VARIANCE_FLOOR, RTFModel, RTFSlot, SIGMA_FLOOR
from repro.network.graph import TrafficNetwork
from repro.obs import DEFAULT_ITERATION_BUCKETS, get_metrics, get_tracer
from repro.traffic.history import SpeedHistory


@dataclass(frozen=True)
class RTFInferenceConfig:
    """Knobs of Alg. 1.

    Attributes:
        step: Gradient-ascent step size λ (paper uses 0.1).
        max_iters: Iteration cap C_v.
        tol: Convergence threshold on ``max_i |∂L/∂mu_i|``.
        init: ``"empirical"`` starts from sample moments (fast path);
            ``"random"`` perturbs them (paper Alg. 1 line 2), which is
            what Fig. 5 measures.
        init_scale: Std dev of the random perturbation of μ (km/h).
        normalized: Include the ``-log sigma^2`` normalization terms.
        adaptive: Backtrack the per-block step when a gradient step
            would *decrease* the objective (halving until it ascends).
            The paper uses a fixed λ; with random initialization that
            can diverge when an edge variance collapses, so adaptive
            damping is the default.  Set False for the literal Alg. 1.
        sigma_floor: Lower clip for σ.
        rho_min / rho_max: Clip range for edge correlations.
        strict: Raise :class:`ConvergenceError` instead of returning the
            last iterate when ``max_iters`` is exhausted.
        seed: RNG seed for random initialization.
    """

    step: float = 0.1
    max_iters: int = 500
    tol: float = 1e-2
    init: str = "empirical"
    init_scale: float = 5.0
    normalized: bool = True
    adaptive: bool = True
    sigma_floor: float = SIGMA_FLOOR
    rho_min: float = 0.0
    rho_max: float = 0.999
    strict: bool = False
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ModelError(f"step must be positive, got {self.step}")
        if self.max_iters <= 0:
            raise ModelError(f"max_iters must be positive, got {self.max_iters}")
        if self.tol <= 0:
            raise ModelError(f"tol must be positive, got {self.tol}")
        if self.init not in ("empirical", "random"):
            raise ModelError(f"init must be 'empirical' or 'random', got {self.init!r}")
        if not 0.0 <= self.rho_min < self.rho_max <= 1.0:
            raise ModelError(f"bad rho bounds [{self.rho_min}, {self.rho_max}]")
        if self.sigma_floor <= 0:
            raise ModelError("sigma_floor must be positive")


@dataclass
class InferenceDiagnostics:
    """Convergence record of one slot fit.

    Attributes:
        iterations: CCD iterations performed.
        converged: Whether ``max |∂L/∂mu|`` fell below the tolerance.
        final_grad_mu: Final maximum μ-gradient magnitude.
        grad_mu_history: Max μ-gradient per iteration (Fig. 5's series).
        objective_history: Objective value per iteration.
    """

    iterations: int = 0
    converged: bool = False
    final_grad_mu: float = float("inf")
    grad_mu_history: List[float] = field(default_factory=list)
    objective_history: List[float] = field(default_factory=list)


def _validate_samples(network: TrafficNetwork, samples: np.ndarray) -> np.ndarray:
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2 or samples.shape[1] != network.n_roads:
        raise ModelError(
            f"samples must have shape (n_days, {network.n_roads}), got {samples.shape}"
        )
    if samples.shape[0] < 2:
        raise ModelError("need at least 2 history samples to infer parameters")
    return samples


def empirical_slot_parameters(
    network: TrafficNetwork,
    samples: np.ndarray,
    slot: int,
    sigma_floor: float = SIGMA_FLOOR,
) -> RTFSlot:
    """Closed-form moment estimates for one slot.

    ``mu`` and ``sigma`` are the per-road sample mean/std across days;
    ``rho`` is the per-edge Pearson correlation clipped to ``[0, 1]``
    (the paper constrains edge weights to be non-negative).

    These are exactly the stationary points of the normalized objective
    for μ/σ, and an excellent warm start for ρ.
    """
    samples = _validate_samples(network, samples)
    mu = samples.mean(axis=0)
    sigma = np.maximum(samples.std(axis=0, ddof=1), sigma_floor)
    if network.edges:
        ei, ej = np.array(network.edges).T
        centered = samples - mu
        cov = (centered[:, ei] * centered[:, ej]).sum(axis=0) / (samples.shape[0] - 1)
        rho = np.clip(cov / (sigma[ei] * sigma[ej]), 0.0, 1.0)
    else:
        rho = np.zeros(0)
    return RTFSlot(slot=slot, mu=mu, sigma=sigma, rho=rho)


class _SlotObjective:
    """Vectorized objective + gradients for one slot's parameters."""

    def __init__(
        self, network: TrafficNetwork, samples: np.ndarray, normalized: bool
    ) -> None:
        self.samples = samples
        self.n_samples = samples.shape[0]
        self.n_roads = network.n_roads
        self.normalized = normalized
        if network.edges:
            edge_array = np.array(network.edges)
            self.ei = edge_array[:, 0]
            self.ej = edge_array[:, 1]
            # Per-sample speed differences along each edge (S, E).
            self.diffs = samples[:, self.ei] - samples[:, self.ej]
        else:
            self.ei = np.zeros(0, dtype=int)
            self.ej = np.zeros(0, dtype=int)
            self.diffs = np.zeros((self.n_samples, 0))

    def edge_variance(self, sigma: np.ndarray, rho: np.ndarray) -> np.ndarray:
        si, sj = sigma[self.ei], sigma[self.ej]
        return np.maximum(si * si + sj * sj - 2.0 * rho * si * sj, PAIR_VARIANCE_FLOOR)

    def value(self, mu: np.ndarray, sigma: np.ndarray, rho: np.ndarray) -> float:
        """Mean (over samples) objective; higher is better."""
        resid = self.samples - mu
        var_i = sigma * sigma
        periodic = np.mean(np.sum(resid * resid / var_i, axis=1))
        total = -periodic
        if self.normalized:
            total -= float(np.sum(np.log(var_i)))
        if self.ei.size:
            var_e = self.edge_variance(sigma, rho)
            c = self.diffs - (mu[self.ei] - mu[self.ej])
            corr = np.mean(np.sum(c * c / var_e, axis=1))
            total -= 2.0 * corr
            if self.normalized:
                total -= 2.0 * float(np.sum(np.log(var_e)))
        return float(total)

    def grad_mu(self, mu: np.ndarray, sigma: np.ndarray, rho: np.ndarray) -> np.ndarray:
        resid_mean = (self.samples - mu).mean(axis=0)
        grad = 2.0 * resid_mean / (sigma * sigma)
        if self.ei.size:
            var_e = self.edge_variance(sigma, rho)
            c_mean = self.diffs.mean(axis=0) - (mu[self.ei] - mu[self.ej])
            edge_pull = 4.0 * c_mean / var_e
            np.add.at(grad, self.ei, edge_pull)
            np.add.at(grad, self.ej, -edge_pull)
        return grad

    def grad_sigma(self, mu: np.ndarray, sigma: np.ndarray, rho: np.ndarray) -> np.ndarray:
        resid_sq = ((self.samples - mu) ** 2).mean(axis=0)
        grad = 2.0 * resid_sq / sigma**3
        if self.normalized:
            grad -= 2.0 / sigma
        if self.ei.size:
            g_var = self._grad_edge_variance(mu, sigma, rho)
            si, sj = sigma[self.ei], sigma[self.ej]
            np.add.at(grad, self.ei, g_var * (2.0 * si - 2.0 * rho * sj))
            np.add.at(grad, self.ej, g_var * (2.0 * sj - 2.0 * rho * si))
        return grad

    def grad_rho(self, mu: np.ndarray, sigma: np.ndarray, rho: np.ndarray) -> np.ndarray:
        if not self.ei.size:
            return np.zeros(0)
        g_var = self._grad_edge_variance(mu, sigma, rho)
        return g_var * (-2.0 * sigma[self.ei] * sigma[self.ej])

    def _grad_edge_variance(
        self, mu: np.ndarray, sigma: np.ndarray, rho: np.ndarray
    ) -> np.ndarray:
        """``∂J/∂sigma_ij^2`` per edge (includes the paper's double count)."""
        var_e = self.edge_variance(sigma, rho)
        c_sq = ((self.diffs - (mu[self.ei] - mu[self.ej])) ** 2).mean(axis=0)
        grad = 2.0 * c_sq / (var_e * var_e)
        if self.normalized:
            grad -= 2.0 / var_e
        return grad


def infer_slot_parameters(
    network: TrafficNetwork,
    samples: np.ndarray,
    slot: int,
    config: Optional[RTFInferenceConfig] = None,
) -> Tuple[RTFSlot, InferenceDiagnostics]:
    """Fit one slot's parameters by cyclic coordinate ascent (Alg. 1).

    Args:
        network: Road graph.
        samples: Historical speeds of this slot, shape
            ``(n_days, n_roads)``.
        slot: Global slot index being fitted.
        config: Solver knobs; defaults to :class:`RTFInferenceConfig`.

    Returns:
        The fitted :class:`RTFSlot` and convergence diagnostics.

    Raises:
        ConvergenceError: Only in ``strict`` mode when the iteration
            budget is exhausted before the tolerance is met.

    Warns:
        ConvergenceWarning: In non-strict mode when the iteration budget
            is exhausted; the last iterate is still returned.
    """
    cfg = config or RTFInferenceConfig()
    samples = _validate_samples(network, samples)
    objective = _SlotObjective(network, samples, cfg.normalized)

    start = empirical_slot_parameters(network, samples, slot, cfg.sigma_floor)
    mu = start.mu.copy()
    sigma = start.sigma.copy()
    rho = start.rho.copy()
    if cfg.init == "random":
        rng = np.random.default_rng(cfg.seed)
        mu = mu + rng.normal(scale=cfg.init_scale, size=mu.shape)
        sigma = np.maximum(sigma * rng.uniform(0.5, 1.5, size=sigma.shape), cfg.sigma_floor)
        rho = np.clip(rng.uniform(0.0, 0.3, size=rho.shape), cfg.rho_min, cfg.rho_max)

    def project_sigma(values: np.ndarray) -> np.ndarray:
        return np.maximum(values, cfg.sigma_floor)

    def project_rho(values: np.ndarray) -> np.ndarray:
        return np.clip(values, cfg.rho_min, cfg.rho_max)

    def ascend(block: str, grad: np.ndarray, step: float) -> Tuple[float, float]:
        """One (possibly backtracked) gradient step on a parameter block.

        Returns the step actually used and a step suggestion for the
        next iteration (shrunk on backtracking, re-grown on success).
        """
        nonlocal mu, sigma, rho
        if block == "mu":
            current = mu
            apply = lambda x: (x, sigma, rho)  # noqa: E731
            projector = lambda x: x  # noqa: E731
        elif block == "sigma":
            current = sigma
            apply = lambda x: (mu, x, rho)  # noqa: E731
            projector = project_sigma
        else:
            current = rho
            apply = lambda x: (mu, sigma, x)  # noqa: E731
            projector = project_rho
        if not cfg.adaptive:
            updated = projector(current + step * grad)
            mu, sigma, rho = apply(updated)
            return step, step
        before = objective.value(mu, sigma, rho)
        trial = step
        for _ in range(40):
            updated = projector(current + trial * grad)
            after = objective.value(*apply(updated))
            if after >= before - 1e-12:
                mu, sigma, rho = apply(updated)
                return trial, min(trial * 1.5, cfg.step)
            trial /= 2.0
        # Gradient step cannot improve even when tiny: keep parameters.
        return 0.0, trial

    diagnostics = InferenceDiagnostics()
    tracer = get_tracer()
    trace_iters = tracer.enabled
    step_mu = step_sigma = step_rho = cfg.step
    with tracer.span(
        "inference.fit_slot",
        slot=int(slot),
        init=cfg.init,
        n_samples=int(samples.shape[0]),
        n_roads=int(network.n_roads),
    ) as span:
        for iteration in range(1, cfg.max_iters + 1):
            g_mu = objective.grad_mu(mu, sigma, rho)
            _, step_mu = ascend("mu", g_mu, step_mu)
            g_sigma = objective.grad_sigma(mu, sigma, rho)
            _, step_sigma = ascend("sigma", g_sigma, step_sigma)
            g_rho = objective.grad_rho(mu, sigma, rho)
            _, step_rho = ascend("rho", g_rho, step_rho)

            max_grad = float(np.max(np.abs(g_mu))) if g_mu.size else 0.0
            diagnostics.iterations = iteration
            diagnostics.final_grad_mu = max_grad
            diagnostics.grad_mu_history.append(max_grad)
            diagnostics.objective_history.append(objective.value(mu, sigma, rho))
            if trace_iters:
                tracer.event(
                    "inference.iteration",
                    iteration=iteration,
                    max_grad_mu=max_grad,
                    objective=diagnostics.objective_history[-1],
                )
            if max_grad < cfg.tol:
                diagnostics.converged = True
                break
        span.set_attr("iterations", diagnostics.iterations)
        span.set_attr("converged", diagnostics.converged)

    metrics = get_metrics()
    if metrics.enabled:
        labels = {"init": cfg.init}
        metrics.counter("inference.fits", labels).inc()
        metrics.histogram(
            "inference.iterations", DEFAULT_ITERATION_BUCKETS, labels
        ).observe(diagnostics.iterations)
        metrics.gauge("inference.final_grad_mu").set(diagnostics.final_grad_mu)
        if not diagnostics.converged:
            metrics.counter("inference.nonconverged", labels).inc()

    if not diagnostics.converged:
        if cfg.strict:
            raise ConvergenceError(
                f"slot {slot}: max |∂L/∂mu| = {diagnostics.final_grad_mu:.4g} after "
                f"{cfg.max_iters} iterations (tol {cfg.tol})"
            )
        warnings.warn(
            f"RTF inference for slot {slot} stopped at the max_iters="
            f"{cfg.max_iters} cap without reaching tol={cfg.tol} "
            f"(max |∂L/∂mu| {diagnostics.final_grad_mu:.4g}); "
            "returning the last iterate",
            ConvergenceWarning,
            stacklevel=2,
        )
    return RTFSlot(slot=slot, mu=mu, sigma=sigma, rho=rho), diagnostics


def fit_rtf(
    network: TrafficNetwork,
    history: SpeedHistory,
    slots: Optional[Sequence[int]] = None,
    config: Optional[RTFInferenceConfig] = None,
) -> Tuple[RTFModel, Dict[int, InferenceDiagnostics]]:
    """Fit RTF parameters for several slots from a speed history.

    Args:
        network: Road graph; must cover the same roads as ``history``.
        history: Offline record; each covered slot provides one sample
            per day.
        slots: Global slots to fit (default: all slots the history
            covers).
        config: Solver knobs.

    Returns:
        The fitted :class:`RTFModel` and per-slot diagnostics.
    """
    if tuple(history.road_ids) != network.road_ids:
        raise ModelError("history road ids do not match the network")
    fit_slots = list(slots) if slots is not None else list(history.global_slots)
    if not fit_slots:
        raise ModelError("no slots to fit")
    fitted: List[RTFSlot] = []
    diagnostics: Dict[int, InferenceDiagnostics] = {}
    for t in fit_slots:
        params, diag = infer_slot_parameters(
            network, history.slot_samples(t), t, config
        )
        fitted.append(params)
        diagnostics[t] = diag
    return RTFModel(network, fitted), diagnostics
