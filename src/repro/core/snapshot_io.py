"""mmap-backed snapshot serialization for near zero-copy cold starts.

:meth:`~repro.core.rtf.RTFModel.save` writes a compressed ``.npz``:
compact on disk, but a cold start pays decompression plus a full copy of
every array — and :class:`~repro.core.store.ModelStore` then pays a
second full pass hashing each slot into its digest.  This module trades
disk compactness for load latency with an aligned binary layout read
through ``np.memmap``:

* a JSON header carries the format tag, the network fingerprint, the
  slot list, per-slot parameter digests, and one ``{dtype, shape,
  offset, nbytes}`` record per array;
* every array blob starts on a 64-byte boundary, so a memory-mapped
  view is cache-line (and SIMD-lane) aligned and pages in lazily on
  first touch instead of being copied eagerly;
* the precomputed digests let :func:`load_store` skip the SHA-1 pass
  over the parameter arrays, and the persisted propagation arrays are
  seeded straight into the store's artifact cache.

File layout::

    magic "RPSNAP01" | uint64-LE header length | JSON header | pad to 64
    | array blob | pad to 64 | array blob | ...

All failures surface as :class:`~repro.errors.ModelError` — a truncated
file, a foreign magic, a tampered header, or a fingerprint from a
different network never escapes as a raw ``ValueError``/``KeyError``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.correlation import PathWeightMode
from repro.core.rtf import RTFModel, RTFSlot, network_fingerprint, params_signature
from repro.core.store import ModelStore
from repro.errors import ModelError
from repro.network.graph import TrafficNetwork
from repro.obs import DEFAULT_TIME_BUCKETS, get_metrics

#: First 8 bytes of every snapshot file.
MAGIC = b"RPSNAP01"

#: ``format`` field of the JSON header.
FORMAT = "repro.snapshot/v1"

#: Array blobs start on multiples of this (cache line / SIMD lane).
ALIGNMENT = 64

#: Per-slot parameter arrays, persisted in this order.
_PARAM_ARRAYS = ("mu", "sigma", "rho")

#: Per-slot derived propagation arrays (optional section), in the order
#: :meth:`repro.core.rtf.RTFSlot.propagation_arrays` returns them.
_PROPAGATION_ARRAYS = ("prior_precision", "prior_pull", "edge_precision", "edge_mu")


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _array_key(name: str, slot: int) -> str:
    return f"{name}_{slot}"


def write_snapshot(
    path: Union[str, Path],
    model: RTFModel,
    *,
    include_propagation: bool = True,
) -> None:
    """Write a model as an aligned, mmap-loadable snapshot file.

    Args:
        path: Destination file (overwritten).
        model: The fitted parameters to persist.
        include_propagation: Also persist each slot's derived GSP
            precision arrays so :func:`load_store` can seed the
            artifact cache without re-deriving them.

    Raises:
        ModelError: When the destination cannot be written.
    """
    network = model.network
    arrays: Dict[str, np.ndarray] = {}
    digests: Dict[str, str] = {}
    for t in model.slots:
        params = model.slot(t)
        digests[str(t)] = params_signature(params).hex()
        arrays[_array_key("mu", t)] = np.ascontiguousarray(params.mu, dtype=np.float64)
        arrays[_array_key("sigma", t)] = np.ascontiguousarray(
            params.sigma, dtype=np.float64
        )
        arrays[_array_key("rho", t)] = np.ascontiguousarray(params.rho, dtype=np.float64)
        if include_propagation:
            for name, arr in zip(_PROPAGATION_ARRAYS, params.propagation_arrays(network)):
                arrays[_array_key(name, t)] = np.ascontiguousarray(
                    arr, dtype=np.float64
                )

    header: Dict[str, object] = {
        "format": FORMAT,
        "network_fingerprint": network_fingerprint(network).tobytes().hex(),
        "slots": [int(t) for t in model.slots],
        "digests": digests,
        "propagation": bool(include_propagation),
        "arrays": {},
    }
    # Two-pass offset assignment: header length shifts the data region,
    # and the header embeds absolute offsets, so sizes must settle first.
    # JSON lengths are stable here because the offsets only grow when the
    # header does, and the second pass starts from the first pass's size.
    records: Dict[str, Dict[str, object]] = {}
    header_blob = b""
    for _ in range(8):
        offset = _align(len(MAGIC) + 8 + len(header_blob))
        records = {}
        for key, arr in arrays.items():
            offset = _align(offset)
            records[key] = {
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": arr.nbytes,
            }
            offset += arr.nbytes
        header["arrays"] = records
        trial = json.dumps(header, sort_keys=True).encode("utf-8")
        if len(trial) == len(header_blob):
            header_blob = trial
            break
        header_blob = trial
    else:  # pragma: no cover - offsets converge in two passes in practice
        raise ModelError("snapshot header layout did not converge")

    try:
        with open(Path(path), "wb") as fh:
            fh.write(MAGIC)
            fh.write(np.uint64(len(header_blob)).tobytes())
            fh.write(header_blob)
            position = len(MAGIC) + 8 + len(header_blob)
            for key, arr in arrays.items():
                target = int(records[key]["offset"])  # type: ignore[arg-type]
                fh.write(b"\0" * (target - position))
                fh.write(arr.tobytes())
                position = target + arr.nbytes
    except OSError as exc:
        raise ModelError(f"cannot write snapshot {path}: {exc}") from exc
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("store.snapshot_io.writes").inc()


def _read_header(path: Path) -> Tuple[Dict[str, object], int]:
    """Parse and validate the header; returns ``(header, file size)``."""
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise ModelError(
                    f"{path} is not a repro snapshot (bad magic {magic!r})"
                )
            length_bytes = fh.read(8)
            if len(length_bytes) != 8:
                raise ModelError(f"snapshot {path} is truncated (no header length)")
            header_len = int(np.frombuffer(length_bytes, dtype="<u8")[0])
            if header_len <= 0 or len(MAGIC) + 8 + header_len > size:
                raise ModelError(
                    f"snapshot {path} header length {header_len} exceeds file size"
                )
            header_blob = fh.read(header_len)
    except OSError as exc:
        raise ModelError(f"cannot read snapshot {path}: {exc}") from exc
    try:
        header = json.loads(header_blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ModelError(f"snapshot {path} has a corrupted header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != FORMAT:
        raise ModelError(
            f"snapshot {path} has format {header.get('format')!r}, "
            f"expected {FORMAT!r}"
        )
    return header, size


def _validate_record(
    path: Path, key: str, record: object, size: int
) -> Tuple[np.dtype, Tuple[int, ...], int, int]:
    if not isinstance(record, dict):
        raise ModelError(f"snapshot {path}: array record {key!r} is not an object")
    try:
        dtype = np.dtype(record["dtype"])
        shape = tuple(int(d) for d in record["shape"])
        offset = int(record["offset"])
        nbytes = int(record["nbytes"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelError(
            f"snapshot {path}: malformed array record {key!r}: {exc}"
        ) from exc
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else 0
    if nbytes != expected or any(d < 0 for d in shape):
        raise ModelError(
            f"snapshot {path}: array {key!r} claims {nbytes} bytes for "
            f"shape {shape} of {dtype}"
        )
    if offset < 0 or offset % ALIGNMENT != 0 or offset + nbytes > size:
        raise ModelError(
            f"snapshot {path}: array {key!r} at offset {offset} "
            f"(+{nbytes} bytes) falls outside the {size}-byte file"
        )
    return dtype, shape, offset, nbytes


class SnapshotFile:
    """Parsed view of one snapshot file (header + lazy array access)."""

    def __init__(self, path: Union[str, Path], *, mmap: bool = True) -> None:
        self.path = Path(path)
        self.header, self._size = _read_header(self.path)
        slots = self.header.get("slots")
        digests = self.header.get("digests")
        records = self.header.get("arrays")
        if (
            not isinstance(slots, list)
            or not isinstance(digests, dict)
            or not isinstance(records, dict)
        ):
            raise ModelError(f"snapshot {self.path} has a corrupted header")
        try:
            self.slots: Tuple[int, ...] = tuple(int(t) for t in slots)
            self.digests: Dict[int, bytes] = {
                int(t): bytes.fromhex(h) for t, h in digests.items()
            }
        except (TypeError, ValueError) as exc:
            raise ModelError(
                f"snapshot {self.path} has a corrupted header: {exc}"
            ) from exc
        if sorted(self.digests) != sorted(self.slots):
            raise ModelError(
                f"snapshot {self.path}: digest table does not cover the slot list"
            )
        self.has_propagation = bool(self.header.get("propagation"))
        self._records = {
            key: _validate_record(self.path, key, record, self._size)
            for key, record in records.items()
        }
        for t in self.slots:
            names = _PARAM_ARRAYS + (
                _PROPAGATION_ARRAYS if self.has_propagation else ()
            )
            for name in names:
                if _array_key(name, t) not in self._records:
                    raise ModelError(
                        f"snapshot {self.path}: missing array "
                        f"{_array_key(name, t)!r}"
                    )
        self._mmap = mmap
        self._buffer: Optional[np.memmap] = None
        if mmap:
            try:
                self._buffer = np.memmap(self.path, dtype=np.uint8, mode="r")
            except (OSError, ValueError) as exc:
                raise ModelError(
                    f"cannot memory-map snapshot {self.path}: {exc}"
                ) from exc

    def check_network(self, network: TrafficNetwork) -> None:
        """Reject a file written for a different road graph.

        Raises:
            ModelError: On a fingerprint mismatch.
        """
        stored = self.header.get("network_fingerprint")
        expected = network_fingerprint(network).tobytes().hex()
        if stored != expected:
            raise ModelError(
                f"snapshot {self.path} was saved for a different network "
                f"(fingerprint mismatch: expected {network.n_roads} roads / "
                f"{network.n_edges} edges)"
            )

    def array(self, name: str, slot: int) -> np.ndarray:
        """One persisted array — a read-only mmap view when enabled.

        Raises:
            ModelError: When the array is not in the file.
        """
        key = _array_key(name, slot)
        record = self._records.get(key)
        if record is None:
            raise ModelError(f"snapshot {self.path}: missing array {key!r}")
        dtype, shape, offset, nbytes = record
        if self._buffer is not None:
            view = self._buffer[offset : offset + nbytes].view(dtype).reshape(shape)
            return view
        try:
            with open(self.path, "rb") as fh:
                fh.seek(offset)
                data = fh.read(nbytes)
        except OSError as exc:
            raise ModelError(f"cannot read snapshot {self.path}: {exc}") from exc
        if len(data) != nbytes:
            raise ModelError(f"snapshot {self.path} is truncated at array {key!r}")
        arr = np.frombuffer(data, dtype=dtype).reshape(shape)
        arr.setflags(write=False)
        return arr

    def slot_params(self, slot: int) -> RTFSlot:
        """One slot's parameters backed by the file's arrays."""
        return RTFSlot(
            slot=slot,
            mu=self.array("mu", slot),
            sigma=self.array("sigma", slot),
            rho=self.array("rho", slot),
        )

    def propagation_arrays(
        self, slot: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One slot's persisted GSP precision arrays.

        Raises:
            ModelError: When the file was written without propagation
                arrays (``include_propagation=False``).
        """
        if not self.has_propagation:
            raise ModelError(
                f"snapshot {self.path} was written without propagation arrays"
            )
        return (
            self.array("prior_precision", slot),
            self.array("prior_pull", slot),
            self.array("edge_precision", slot),
            self.array("edge_mu", slot),
        )


def read_snapshot(
    path: Union[str, Path], network: TrafficNetwork, *, mmap: bool = True
) -> SnapshotFile:
    """Open and validate a snapshot file against a network.

    Raises:
        ModelError: On any corruption or a network mismatch.
    """
    snapshot = SnapshotFile(path, mmap=mmap)
    snapshot.check_network(network)
    return snapshot


def load_model(
    path: Union[str, Path], network: TrafficNetwork, *, mmap: bool = True
) -> RTFModel:
    """Load an :class:`RTFModel` whose arrays view the file directly."""
    snapshot = read_snapshot(path, network, mmap=mmap)
    return RTFModel(network, [snapshot.slot_params(t) for t in snapshot.slots])


def load_store(
    path: Union[str, Path],
    network: TrafficNetwork,
    path_mode: PathWeightMode = PathWeightMode.LOG,
    *,
    mmap: bool = True,
    max_artifacts: int = 512,
) -> ModelStore:
    """Cold-start a :class:`ModelStore` from a snapshot file.

    Three savings over ``RTFModel.load`` + ``ModelStore(...)``:

    * parameter arrays are read-only mmap views (no decompress/copy);
    * the store adopts the file's per-slot digests instead of re-hashing
      every parameter array;
    * persisted propagation arrays are seeded into the artifact cache,
      so the first GSP propagation skips its derivation too.

    Raises:
        ModelError: On any corruption or a network mismatch.
    """
    start = time.perf_counter()
    snapshot = read_snapshot(path, network, mmap=mmap)
    model = RTFModel(network, [snapshot.slot_params(t) for t in snapshot.slots])
    store = ModelStore(
        model, path_mode, max_artifacts, digests=dict(snapshot.digests)
    )
    if snapshot.has_propagation:
        for t in snapshot.slots:
            store.seed_propagation(snapshot.digests[t], snapshot.propagation_arrays(t))
    elapsed = time.perf_counter() - start
    metrics = get_metrics()
    if metrics.enabled:
        labels = {"mmap": "true" if mmap else "false"}
        metrics.counter("store.snapshot_io.loads", labels).inc()
        metrics.histogram(
            "store.snapshot_io.load_seconds", DEFAULT_TIME_BUCKETS, labels
        ).observe(elapsed)
    return store


def verify_digests(snapshot: SnapshotFile) -> None:
    """Recompute every slot digest and compare against the header.

    :func:`load_store` trusts the header digests for speed; this is the
    paranoid full check for operators validating a file after transfer.

    Raises:
        ModelError: When any slot's content does not match its digest.
    """
    for t in snapshot.slots:
        actual = params_signature(snapshot.slot_params(t))
        if actual != snapshot.digests[t]:
            raise ModelError(
                f"snapshot {snapshot.path}: slot {t} content does not match "
                f"its header digest (file tampered or corrupted)"
            )
