"""Realtime Traffic-speed Field (RTF) — the paper's GMRF (§IV).

For each time slot ``t`` the field carries three parameter sets:

* ``mu``    — expected speed per road (paper ``mu_i^t``),
* ``sigma`` — std dev per road, the *intensity of periodicity*
  (``sigma_i^t``; small = strongly periodic),
* ``rho``   — correlation per adjacent pair, the edge weights
  (``rho_ij^t`` in ``[0, 1]``).

Derived pairwise quantities (paper Eq. 2):

.. math::

    \\mu_{ij} = \\mu_i - \\mu_j, \\qquad
    \\sigma_{ij}^2 = \\sigma_i^2 + \\sigma_j^2 - 2\\rho_{ij}\\sigma_i\\sigma_j

The joint (pseudo-)log-likelihood of a speed assignment (paper Eq. 5) is

.. math::

    \\mathcal{L}_{G^t} = -\\sum_i \\Big( \\frac{(v_i - \\mu_i)^2}{\\sigma_i^2}
      + \\sum_{j \\in n(i)} \\frac{((v_i - v_j) - \\mu_{ij})^2}{\\sigma_{ij}^2} \\Big).

Note that Eq. 5 drops the Gaussian normalization terms.  That is fine
for *speed inference* (GSP maximizes over ``v`` with parameters fixed),
but makes *parameter inference* degenerate (the objective grows without
bound as ``sigma → ∞``).  :mod:`repro.core.inference` therefore offers a
normalized variant; see its module docstring.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Sequence, Tuple, Union

import numpy as np

from repro.errors import ModelError, NotFittedError
from repro.network.graph import TrafficNetwork

#: Smallest admissible std dev — keeps every 1/sigma^2 finite.
SIGMA_FLOOR = 1e-3

#: Smallest admissible pairwise variance sigma_ij^2.
PAIR_VARIANCE_FLOOR = 1e-6


def params_signature(params: "RTFSlot") -> bytes:
    """Content digest of one slot's parameters.

    The digest keys every derived artifact (GSP propagation structures,
    correlation matrices, :class:`repro.core.store.ModelSnapshot`
    artifacts): any change to ``mu`` / ``sigma`` / ``rho`` changes the
    digest, so stale derivations can never be served for fresh
    parameters.
    """
    digest = hashlib.sha1()
    digest.update(np.int64(params.slot).tobytes())
    digest.update(np.ascontiguousarray(params.mu, dtype=np.float64).tobytes())
    digest.update(np.ascontiguousarray(params.sigma, dtype=np.float64).tobytes())
    digest.update(np.ascontiguousarray(params.rho, dtype=np.float64).tobytes())
    return digest.digest()


def network_fingerprint(network: TrafficNetwork) -> np.ndarray:
    """Identity fingerprint of a network for persistence checks.

    Returns a small ``uint8`` array holding ``n_roads``, ``n_edges``
    and a SHA-1 over the edge list, so a model file can be validated
    against the network it is loaded for (see :meth:`RTFModel.load`).
    """
    digest = hashlib.sha1()
    digest.update(np.int64(network.n_roads).tobytes())
    digest.update(np.int64(network.n_edges).tobytes())
    if network.edges:
        digest.update(np.ascontiguousarray(network.edges, dtype=np.int64).tobytes())
    header = np.array([network.n_roads, network.n_edges], dtype=np.int64)
    return np.concatenate(
        [header.view(np.uint8), np.frombuffer(digest.digest(), dtype=np.uint8)]
    )


@dataclass(frozen=True)
class RTFSlot:
    """RTF parameters for one time slot.

    Attributes:
        slot: Global slot index (0..287).
        mu: Expected speed per road, shape ``(n_roads,)``.
        sigma: Std dev per road, shape ``(n_roads,)``; all > 0.
        rho: Correlation per edge, shape ``(n_edges,)`` aligned with
            :attr:`TrafficNetwork.edges`; all in ``[0, 1]``.
    """

    slot: int
    mu: np.ndarray
    sigma: np.ndarray
    rho: np.ndarray

    def __post_init__(self) -> None:
        if self.mu.ndim != 1 or self.sigma.shape != self.mu.shape:
            raise ModelError(
                f"mu {self.mu.shape} and sigma {self.sigma.shape} must be 1-d and aligned"
            )
        if self.rho.ndim != 1:
            raise ModelError(f"rho must be 1-d, got shape {self.rho.shape}")
        if np.any(~np.isfinite(self.mu)) or np.any(~np.isfinite(self.sigma)):
            raise ModelError("mu/sigma contain NaN or infinity")
        if np.any(self.sigma <= 0):
            raise ModelError("sigma must be strictly positive")
        if np.any((self.rho < 0) | (self.rho > 1)):
            raise ModelError("rho must lie in [0, 1]")

    @property
    def n_roads(self) -> int:
        """Number of roads this slot parameterizes."""
        return self.mu.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of edges this slot parameterizes."""
        return self.rho.shape[0]

    def check_against(self, network: TrafficNetwork) -> None:
        """Validate alignment with a network.

        Raises:
            ModelError: On any dimension mismatch.
        """
        if self.n_roads != network.n_roads:
            raise ModelError(
                f"slot {self.slot}: {self.n_roads} roads vs network {network.n_roads}"
            )
        if self.n_edges != network.n_edges:
            raise ModelError(
                f"slot {self.slot}: {self.n_edges} edges vs network {network.n_edges}"
            )

    # ------------------------------------------------------------------
    # Pairwise (edge) quantities, paper Eq. 2
    # ------------------------------------------------------------------

    def edge_mu(self, network: TrafficNetwork) -> np.ndarray:
        """``mu_ij = mu_i - mu_j`` per edge, shape ``(n_edges,)``."""
        self.check_against(network)
        if not network.edges:
            return np.zeros(0)
        ei, ej = np.array(network.edges).T
        return self.mu[ei] - self.mu[ej]

    def edge_variance(self, network: TrafficNetwork) -> np.ndarray:
        """``sigma_ij^2`` per edge, floored at :data:`PAIR_VARIANCE_FLOOR`.

        The floor guards against the degenerate ``rho = 1`` with equal
        sigmas, where the paper's formula gives exactly zero.
        """
        self.check_against(network)
        if not network.edges:
            return np.zeros(0)
        ei, ej = np.array(network.edges).T
        si, sj = self.sigma[ei], self.sigma[ej]
        var = si * si + sj * sj - 2.0 * self.rho * si * sj
        return np.maximum(var, PAIR_VARIANCE_FLOOR)

    def pairwise_mu(self, network: TrafficNetwork, i: int, j: int) -> float:
        """``mu_ij`` for a single adjacent pair (order-sensitive)."""
        network.edge_id(i, j)  # validates adjacency
        return float(self.mu[i] - self.mu[j])

    def pairwise_sigma(self, network: TrafficNetwork, i: int, j: int) -> float:
        """``sigma_ij`` for a single adjacent pair."""
        e = network.edge_id(i, j)
        si, sj = float(self.sigma[i]), float(self.sigma[j])
        var = si * si + sj * sj - 2.0 * float(self.rho[e]) * si * sj
        return float(np.sqrt(max(var, PAIR_VARIANCE_FLOOR)))

    # ------------------------------------------------------------------
    # Array export for the propagation kernels
    # ------------------------------------------------------------------

    def propagation_arrays(
        self, network: TrafficNetwork
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Precision arrays the GSP kernels are compiled from.

        Returns:
            ``(prior_precision, prior_pull, edge_precision, edge_mu)``:

            * ``prior_precision`` — ``1/σ_i²`` per road, shape ``(n_roads,)``;
            * ``prior_pull`` — ``μ_i/σ_i²`` per road;
            * ``edge_precision`` — ``1/σ_ij²`` per edge, aligned with
              :attr:`TrafficNetwork.edges`, shape ``(n_edges,)``;
            * ``edge_mu`` — ``μ_ij = μ_i - μ_j`` per edge (``i < j``
              orientation; callers negate for the reverse direction).

        Everything is derived vectorized — no per-node Python loop — so
        :func:`repro.core.gsp.build_propagation_structure` can compile a
        2k-road city in milliseconds.
        """
        self.check_against(network)
        prior_precision = 1.0 / (self.sigma * self.sigma)
        prior_pull = self.mu * prior_precision
        edge_precision = (
            1.0 / self.edge_variance(network) if network.edges else np.zeros(0)
        )
        return prior_precision, prior_pull, edge_precision, self.edge_mu(network)

    # ------------------------------------------------------------------
    # Likelihoods
    # ------------------------------------------------------------------

    def log_likelihood(self, network: TrafficNetwork, speeds: np.ndarray) -> float:
        """Paper Eq. 5 for one speed assignment.

        Each edge term is counted twice (once per endpoint), exactly as
        the double sum in Eq. 5 does.

        Args:
            network: The road graph.
            speeds: Speed assignment, shape ``(n_roads,)``.
        """
        speeds = np.asarray(speeds, dtype=np.float64)
        if speeds.shape != (self.n_roads,):
            raise ModelError(
                f"speeds shape {speeds.shape} does not match {self.n_roads} roads"
            )
        self.check_against(network)
        periodic = float(np.sum(((speeds - self.mu) / self.sigma) ** 2))
        if network.edges:
            ei, ej = np.array(network.edges).T
            diffs = speeds[ei] - speeds[ej]
            resid = diffs - self.edge_mu(network)
            corr_term = 2.0 * float(np.sum(resid * resid / self.edge_variance(network)))
        else:
            corr_term = 0.0
        return -(periodic + corr_term)

    def conditional_log_likelihood(
        self, network: TrafficNetwork, road: int, speeds: np.ndarray
    ) -> float:
        """Paper Eq. 4: conditional (pseudo) log-likelihood of one road.

        Args:
            network: The road graph.
            road: Road index whose conditional likelihood to evaluate.
            speeds: Full speed assignment; only ``road`` and its
                neighbours are read.
        """
        self.check_against(network)
        speeds = np.asarray(speeds, dtype=np.float64)
        v_i = speeds[road]
        total = ((v_i - self.mu[road]) / self.sigma[road]) ** 2
        for j in network.neighbors(road):
            mu_ij = self.mu[road] - self.mu[j]
            sig_ij = self.pairwise_sigma(network, road, j)
            total += ((v_i - speeds[j] - mu_ij) / sig_ij) ** 2
        return -float(total)


class RTFModel:
    """Collection of per-slot RTF parameters for one network.

    A model may cover any subset of the 288 daily slots (experiments
    typically train a handful).  Access a slot with :meth:`slot`.
    """

    def __init__(self, network: TrafficNetwork, slots: Iterable[RTFSlot]) -> None:
        self._network = network
        self._slots: Dict[int, RTFSlot] = {}
        for slot_params in slots:
            slot_params.check_against(network)
            if slot_params.slot in self._slots:
                raise ModelError(f"duplicate parameters for slot {slot_params.slot}")
            self._slots[slot_params.slot] = slot_params
        if not self._slots:
            raise ModelError("RTFModel needs at least one slot")

    @property
    def network(self) -> TrafficNetwork:
        """The road graph the model is defined on."""
        return self._network

    @property
    def slots(self) -> Tuple[int, ...]:
        """Covered global slot indices, sorted."""
        return tuple(sorted(self._slots))

    def __contains__(self, slot: int) -> bool:
        return slot in self._slots

    def __repr__(self) -> str:
        return f"RTFModel(n_roads={self._network.n_roads}, slots={list(self.slots)})"

    def slot(self, slot: int) -> RTFSlot:
        """Parameters for one slot.

        Raises:
            NotFittedError: When the slot was never fitted.
        """
        try:
            return self._slots[slot]
        except KeyError:
            raise NotFittedError(
                f"slot {slot} not fitted (available: {list(self.slots)})"
            ) from None

    def periodicity_weights(self, slot: int, roads: Sequence[int]) -> np.ndarray:
        """``sigma_i^t`` for the given roads — OCS's periodicity weights."""
        params = self.slot(slot)
        return params.sigma[np.asarray(list(roads), dtype=int)]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Save all slots to a compressed ``.npz`` file.

        The file carries a network fingerprint (road/edge counts plus an
        edge-list hash) so :meth:`load` can reject a model that belongs
        to a different network up front.
        """
        payload: Dict[str, np.ndarray] = {
            "slots": np.array(sorted(self._slots), dtype=np.int64),
            "network_fingerprint": network_fingerprint(self._network),
        }
        for t, params in self._slots.items():
            payload[f"mu_{t}"] = params.mu
            payload[f"sigma_{t}"] = params.sigma
            payload[f"rho_{t}"] = params.rho
        np.savez_compressed(Path(path), **payload)

    @classmethod
    def load(cls, path: Union[str, Path], network: TrafficNetwork) -> "RTFModel":
        """Load a model previously written by :meth:`save`.

        Raises:
            ModelError: When the file's network fingerprint does not
                match ``network`` (files written before fingerprints
                existed are accepted and fall back to shape checks).
        """
        with np.load(Path(path), allow_pickle=False) as payload:
            if "network_fingerprint" in payload:
                stored = np.asarray(payload["network_fingerprint"], dtype=np.uint8)
                expected = network_fingerprint(network)
                if stored.shape != expected.shape or not np.array_equal(
                    stored, expected
                ):
                    raise ModelError(
                        f"model file {path} was saved for a different network "
                        f"(fingerprint mismatch: expected "
                        f"{network.n_roads} roads / {network.n_edges} edges)"
                    )
            slot_ids = [int(t) for t in payload["slots"]]
            slots = [
                RTFSlot(
                    slot=t,
                    mu=np.asarray(payload[f"mu_{t}"], dtype=np.float64),
                    sigma=np.asarray(payload[f"sigma_{t}"], dtype=np.float64),
                    rho=np.asarray(payload[f"rho_{t}"], dtype=np.float64),
                )
                for t in slot_ids
            ]
        return cls(network, slots)
