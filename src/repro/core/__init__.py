"""CrowdRTSE core: the paper's primary contribution.

* :mod:`repro.core.rtf` — the Realtime Traffic-speed Field (GMRF).
* :mod:`repro.core.inference` — offline parameter inference (Alg. 1).
* :mod:`repro.core.correlation` — road/set correlations (Eq. 7–13).
* :mod:`repro.core.ocs` — Optimal Crowdsourced-road Selection (Alg. 2–4).
* :mod:`repro.core.gsp` — Graph-based Speed Propagation (Alg. 5).
* :mod:`repro.core.pipeline` — the offline/online facade (Fig. 1).
"""

from repro.core.rtf import RTFModel, RTFSlot, network_fingerprint, params_signature
from repro.core.inference import (
    InferenceDiagnostics,
    RTFInferenceConfig,
    empirical_slot_parameters,
    fit_rtf,
    infer_slot_parameters,
)
from repro.core.correlation import (
    CorrelationTable,
    PathWeightMode,
    road_road_correlation_matrix,
)
from repro.core.ocs import (
    OCSInstance,
    OCSResult,
    brute_force_ocs,
    hybrid_greedy,
    objective_greedy,
    random_selection,
    ratio_greedy,
    trivial_solution,
)
from repro.core.gsp import (
    CompiledSchedule,
    GSPCacheStats,
    GSPConfig,
    GSPEngine,
    GSPKernel,
    GSPProvenance,
    GSPResult,
    GSPSchedule,
    PrecisionPolicy,
    PropagationStructure,
    build_propagation_structure,
    engine_for,
    independent_update_groups,
    propagate,
    propagate_batch,
)
from repro.core.allocation import allocate_budget, slot_need
from repro.core.exact_inference import (
    exact_conditional_mean,
    gsp_optimality_gap,
    pseudo_objective,
)
from repro.core.uncertainty import (
    conditional_variances,
    confidence_intervals,
    most_uncertain_roads,
)
from repro.core.online_update import OnlineRTFUpdater, refresh_model, refresh_slots
from repro.core.batch import BatchResult, answer_batch, sequential_baseline
from repro.core.local_search import greedy_plus_local_search, local_search
from repro.core.store import (
    ModelSnapshot,
    ModelStore,
    SnapshotCorrelations,
    StoreStats,
)
from repro.core.snapshot_io import (
    SnapshotFile,
    load_model,
    load_store,
    read_snapshot,
    verify_digests,
    write_snapshot,
)
from repro.core.request import EstimationRequest, as_request
from repro.core.pipeline import CrowdRTSE, QueryResult

__all__ = [
    "RTFModel",
    "RTFSlot",
    "network_fingerprint",
    "params_signature",
    "InferenceDiagnostics",
    "RTFInferenceConfig",
    "empirical_slot_parameters",
    "fit_rtf",
    "infer_slot_parameters",
    "CorrelationTable",
    "PathWeightMode",
    "road_road_correlation_matrix",
    "OCSInstance",
    "OCSResult",
    "brute_force_ocs",
    "hybrid_greedy",
    "objective_greedy",
    "random_selection",
    "ratio_greedy",
    "trivial_solution",
    "CompiledSchedule",
    "GSPCacheStats",
    "GSPConfig",
    "GSPEngine",
    "GSPKernel",
    "GSPProvenance",
    "GSPResult",
    "GSPSchedule",
    "PrecisionPolicy",
    "PropagationStructure",
    "build_propagation_structure",
    "engine_for",
    "independent_update_groups",
    "propagate",
    "propagate_batch",
    "allocate_budget",
    "slot_need",
    "exact_conditional_mean",
    "gsp_optimality_gap",
    "pseudo_objective",
    "conditional_variances",
    "confidence_intervals",
    "most_uncertain_roads",
    "OnlineRTFUpdater",
    "refresh_model",
    "refresh_slots",
    "ModelSnapshot",
    "ModelStore",
    "SnapshotCorrelations",
    "StoreStats",
    "SnapshotFile",
    "load_model",
    "load_store",
    "read_snapshot",
    "verify_digests",
    "write_snapshot",
    "EstimationRequest",
    "as_request",
    "BatchResult",
    "answer_batch",
    "sequential_baseline",
    "greedy_plus_local_search",
    "local_search",
    "CrowdRTSE",
    "QueryResult",
]
