"""Versioned model lifecycle: snapshots, copy-on-write publishes, refresh.

The paper's offline/online split (Fig. 1) fits the RTF once and serves
it forever.  A deployed estimator instead absorbs new days continuously
while answering concurrent queries, which needs three properties the
plain :class:`~repro.core.rtf.RTFModel` + eager
:class:`~repro.core.correlation.CorrelationTable` pair cannot give:

* **Snapshot isolation** — a query pins one :class:`ModelSnapshot` for
  its whole OCS → probe → GSP span; a refresh published halfway through
  never mixes parameter generations inside one answer.
* **Copy-on-write publish** — refreshing ``k`` slots produces a new
  version whose untouched slots share the *same* parameter objects and
  derived artifacts as the previous version (``is``-shared, not copied),
  so version churn costs O(k), not O(S).
* **Lazy, digest-keyed derivation** — correlation matrices Γ_R and
  propagation arrays are derived per slot on first use and cached by the
  content digest of the slot parameters
  (:func:`~repro.core.rtf.params_signature`).  A 288-slot model no
  longer materializes 288 dense ``(n, n)`` matrices up front, and a
  refreshed slot's new digest can never collide with its stale artifact.

:class:`ModelStore` is the mutable coordinator: it holds the current
snapshot behind a lock and publishes new versions atomically.
Everything handed to readers is immutable.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.errors import BackendError, ModelError, NotFittedError
from repro.core.correlation import (
    CorrelationTable,
    PathWeightMode,
    road_road_correlation_matrix,
)
from repro.core.online_update import refresh_slots
from repro.core.rtf import RTFModel, RTFSlot, params_signature
from repro.network.graph import TrafficNetwork
from repro.obs import get_metrics, get_tracer

#: Artifact kinds the cache tracks (label values of ``store.artifacts.*``).
_KIND_CORRELATION = "correlation"
_KIND_PROPAGATION = "propagation"
#: Warm-start GSP seed fields, keyed by slot-parameter digest.  Unlike
#: the derived kinds these are *written back* after a propagation and
#: explicitly dropped when a refresh replaces the slot (same atomic
#: publish), so a stale seed can never outlive its parameters.
_KIND_WARM_START = "warm_start"


@dataclass
class StoreStats:
    """Derivation/publish counters of one :class:`ModelStore`.

    Mirrors the ``store.*`` metric series so tests and drivers can
    assert derivation economy without enabling the metrics registry.
    """

    publishes: int = 0
    published_slots: int = 0
    refreshes: int = 0
    refreshed_slots: int = 0
    correlation_derivations: int = 0
    correlation_hits: int = 0
    propagation_derivations: int = 0
    propagation_hits: int = 0
    backend_derivations: int = 0
    backend_hits: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (for logs and tests)."""
        return {
            "publishes": self.publishes,
            "published_slots": self.published_slots,
            "refreshes": self.refreshes,
            "refreshed_slots": self.refreshed_slots,
            "correlation_derivations": self.correlation_derivations,
            "correlation_hits": self.correlation_hits,
            "propagation_derivations": self.propagation_derivations,
            "propagation_hits": self.propagation_hits,
            "backend_derivations": self.backend_derivations,
            "backend_hits": self.backend_hits,
        }


class _ArtifactCache:
    """Digest-keyed LRU of derived artifacts, shared across snapshots.

    Keys are ``(kind, digest)``; values are whatever the deriving
    callable produced (a dense Γ_R matrix, a propagation-array tuple).
    Because snapshots share one cache and untouched slots keep their
    digest across publishes, a refresh of ``k`` slots invalidates
    exactly ``k`` correlation entries — the rest keep hitting.

    Derivations are single-flight: concurrent readers asking for the
    same missing key block on one in-flight computation instead of
    deriving duplicates, which keeps the derivation counters exact even
    under concurrency.
    """

    def __init__(self, stats: StoreStats, max_entries: int = 512) -> None:
        if max_entries <= 0:
            raise ModelError("artifact cache capacity must be positive")
        self._entries: "OrderedDict[Tuple[str, bytes], object]" = OrderedDict()
        self._inflight: Dict[Tuple[str, bytes], threading.Event] = {}
        self._lock = threading.Lock()
        self._max_entries = max_entries
        self._stats = stats

    def get_or_derive(self, kind: str, digest: bytes, derive) -> object:
        """Return the cached artifact, deriving it exactly once on miss."""
        key = (kind, digest)
        metrics = get_metrics()
        while True:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self._entries.move_to_end(key)
                    self._record_lookup(metrics, kind, hit=True)
                    return cached
                waiter = self._inflight.get(key)
                if waiter is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    break
            waiter.wait()
        try:
            artifact = derive()
        except BaseException:
            with self._lock:
                self._inflight.pop(key, None)
            event.set()
            raise
        with self._lock:
            self._entries[key] = artifact
            if len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
            self._inflight.pop(key, None)
            self._record_lookup(metrics, kind, hit=False)
        event.set()
        return artifact

    def seed(self, kind: str, digest: bytes, artifact: object) -> None:
        """Insert a precomputed artifact (no derivation counted)."""
        with self._lock:
            self._entries[(kind, digest)] = artifact
            self._entries.move_to_end((kind, digest))
            if len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def peek(self, kind: str, digest: bytes) -> Optional[object]:
        """The cached artifact, or ``None`` — never derives, no counters."""
        key = (kind, digest)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
            return cached

    def drop(self, kind: str, digest: bytes) -> bool:
        """Remove one entry; returns whether it was present."""
        with self._lock:
            return self._entries.pop((kind, digest), None) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _record_lookup(self, metrics, kind: str, hit: bool) -> None:
        if kind == _KIND_CORRELATION:
            if hit:
                self._stats.correlation_hits += 1
            else:
                self._stats.correlation_derivations += 1
        elif kind == _KIND_PROPAGATION:
            if hit:
                self._stats.propagation_hits += 1
            else:
                self._stats.propagation_derivations += 1
        else:
            # Backend-owned artifacts (kinds prefixed "backend."): the
            # pluggable estimators route their derived factorizations /
            # precision matrices through this cache on attach.
            if hit:
                self._stats.backend_hits += 1
            else:
                self._stats.backend_derivations += 1
        if metrics.enabled:
            metrics.counter(
                "store.artifacts.lookups",
                {"kind": kind, "result": "hit" if hit else "miss"},
            ).inc()
            if not hit:
                metrics.counter("store.artifacts.derivations", {"kind": kind}).inc()


class SnapshotCorrelations(CorrelationTable):
    """Lazy :class:`CorrelationTable` view over one snapshot.

    Duck-compatible with the eager table (Eq. 7–13 lookups, ``matrix``,
    ``slots``, ``mode``) but derives each slot's Γ_R on first use via
    the snapshot's digest-keyed artifact cache.
    """

    def __init__(self, snapshot: "ModelSnapshot") -> None:
        # Deliberately skip CorrelationTable.__init__: there is no eager
        # matrix dict; `matrix`/`slots`/`digest` are overridden below.
        self._network = snapshot.network
        self._mode = snapshot.path_mode
        self._snapshot = snapshot

    @property
    def slots(self) -> Tuple[int, ...]:
        """Covered slots (every fitted slot of the snapshot), sorted."""
        return self._snapshot.slots

    def matrix(self, slot: int) -> np.ndarray:
        """The ``(n, n)`` matrix of one slot, derived on first use."""
        return self._snapshot.correlation_matrix(slot)

    def digest(self, slot: int) -> Optional[bytes]:
        """Digest of the parameters the slot's matrix derives from."""
        return self._snapshot.digest(slot)


class ModelSnapshot:
    """One immutable published version of the RTF model.

    Readers obtain a snapshot from :meth:`ModelStore.current` and use it
    for a whole query; nothing reachable from it ever changes.  Derived
    artifacts (Γ_R matrices, propagation arrays) are materialized lazily
    through the store's shared digest-keyed cache, so structurally
    shared slots reuse the previous version's work.
    """

    def __init__(
        self,
        version: int,
        network: TrafficNetwork,
        params: Mapping[int, RTFSlot],
        digests: Mapping[int, bytes],
        path_mode: PathWeightMode,
        artifacts: _ArtifactCache,
        backend_states: Optional[Mapping[str, object]] = None,
    ) -> None:
        if not params:
            raise ModelError("a snapshot needs at least one fitted slot")
        self._version = version
        self._network = network
        self._params = dict(params)
        self._digests = dict(digests)
        self._path_mode = path_mode
        self._artifacts = artifacts
        self._backend_states: Dict[str, object] = dict(backend_states or {})
        self._lazy_lock = threading.Lock()
        self._model: Optional[RTFModel] = None
        self._correlations: Optional[SnapshotCorrelations] = None

    # -- identity -------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic version number (1 for the initial publish)."""
        return self._version

    @property
    def network(self) -> TrafficNetwork:
        """The road graph the snapshot is defined on."""
        return self._network

    @property
    def path_mode(self) -> PathWeightMode:
        """Path-weight transform used for correlation derivation."""
        return self._path_mode

    @property
    def slots(self) -> Tuple[int, ...]:
        """Fitted global slot indices, sorted."""
        return tuple(sorted(self._params))

    def __contains__(self, slot: int) -> bool:
        return slot in self._params

    def __repr__(self) -> str:
        return (
            f"ModelSnapshot(version={self._version}, "
            f"n_roads={self._network.n_roads}, slots={list(self.slots)})"
        )

    # -- parameters -----------------------------------------------------

    def slot(self, slot: int) -> RTFSlot:
        """Parameters of one slot.

        Raises:
            NotFittedError: When the slot was never fitted.
        """
        try:
            return self._params[slot]
        except KeyError:
            raise NotFittedError(
                f"slot {slot} not fitted (available: {list(self.slots)})"
            ) from None

    def digest(self, slot: int) -> bytes:
        """Content digest of one slot's parameters (artifact cache key)."""
        try:
            return self._digests[slot]
        except KeyError:
            raise NotFittedError(
                f"slot {slot} not fitted (available: {list(self.slots)})"
            ) from None

    @property
    def model(self) -> RTFModel:
        """This version's parameters as a plain :class:`RTFModel` view."""
        with self._lazy_lock:
            if self._model is None:
                self._model = RTFModel(self._network, self._params.values())
            return self._model

    # -- backend state blobs --------------------------------------------

    @property
    def backend_names(self) -> Tuple[str, ...]:
        """Names of the estimator backends with state in this version."""
        return tuple(sorted(self._backend_states))

    def backend_state(self, name: str) -> object:
        """The immutable state blob of one attached backend.

        Raises:
            BackendError: When no state for ``name`` was ever attached
                (see :meth:`ModelStore.attach_backend`).
        """
        try:
            return self._backend_states[name]
        except KeyError:
            raise BackendError(
                f"no state for backend {name!r} in snapshot "
                f"v{self._version} (attached: {list(self.backend_names)}); "
                f"attach it via CrowdRTSE.attach_backend first"
            ) from None

    # -- derived artifacts ----------------------------------------------

    def correlation_matrix(self, slot: int) -> np.ndarray:
        """Γ_R of one slot (Eq. 7–10), derived on first use.

        The matrix is keyed by the slot's parameter digest, so an
        untouched slot keeps hitting the artifact derived under an
        earlier version, and a refreshed slot can never be served its
        stale matrix.
        """
        params = self.slot(slot)
        return self._artifacts.get_or_derive(
            _KIND_CORRELATION,
            self.digest(slot),
            lambda: road_road_correlation_matrix(
                self._network, params.rho, self._path_mode
            ),
        )

    def propagation_arrays(
        self, slot: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The slot's GSP precision arrays, derived on first use.

        Same cache discipline as :meth:`correlation_matrix`; the GSP
        engine keeps its own digest-keyed CSR compilation on top.
        """
        params = self.slot(slot)
        return self._artifacts.get_or_derive(
            _KIND_PROPAGATION,
            self.digest(slot),
            lambda: params.propagation_arrays(self._network),
        )

    @property
    def correlations(self) -> SnapshotCorrelations:
        """Lazy Γ_R table view bound to this snapshot (Eq. 7–13 API)."""
        with self._lazy_lock:
            if self._correlations is None:
                self._correlations = SnapshotCorrelations(self)
            return self._correlations

    # -- warm-start seed fields -----------------------------------------

    def warm_field(
        self, slot: int, observed_key: frozenset
    ) -> Tuple[Optional[np.ndarray], str]:
        """A previous converged GSP field usable as a warm-start seed.

        The seed is keyed by the slot's parameter digest and guarded by
        the observed set ``R^c`` it converged under: a refreshed slot's
        new digest misses (and the refresh *also* drops the old entry in
        the same publish — see :meth:`ModelStore._publish`), and a
        different crowdsourced selection falls back to cold start.

        Returns:
            ``(field, outcome)`` where ``outcome`` is ``"hit"``,
            ``"miss"`` (nothing cached) or ``"mismatch"`` (cached under a
            different ``R^c``); ``field`` is a read-only float64 array on
            hit, else ``None``.
        """
        entry = self._artifacts.peek(_KIND_WARM_START, self.digest(slot))
        if entry is None:
            return None, "miss"
        field, cached_key = entry  # type: ignore[misc]
        if cached_key != observed_key:
            return None, "mismatch"
        return field, "hit"

    def store_warm_field(
        self, slot: int, observed_key: frozenset, field: np.ndarray
    ) -> None:
        """Cache a converged GSP field as the slot's warm-start seed.

        Raises:
            ModelError: On a shape mismatch with the network.
        """
        arr = np.array(field, dtype=np.float64, copy=True)
        if arr.shape != (self._network.n_roads,):
            raise ModelError(
                f"warm field shape {arr.shape} does not match "
                f"{self._network.n_roads} roads"
            )
        arr.setflags(write=False)
        self._artifacts.seed(
            _KIND_WARM_START, self.digest(slot), (arr, frozenset(observed_key))
        )


class ModelStore:
    """Versioned holder of RTF parameters with atomic publishes.

    One store owns a sequence of immutable :class:`ModelSnapshot`
    versions over a fixed network.  :meth:`current` is a lock-protected
    pointer read; :meth:`publish` swaps in a new version built
    copy-on-write from the previous one; :meth:`refresh` wires
    :class:`~repro.core.online_update.OnlineRTFUpdater` end to end.

    Args:
        model: Initial parameters (version 1).
        path_mode: Path-weight transform for Γ_R derivation.
        max_artifacts: LRU capacity of the shared derived-artifact cache.
        digests: Precomputed per-slot content digests (as written by
            :mod:`repro.core.snapshot_io`); slots not covered are hashed
            here.  Trusting the file's digests skips a full pass over
            every parameter array on cold start — run
            :func:`repro.core.snapshot_io.verify_digests` when the file
            crossed a trust boundary.
    """

    def __init__(
        self,
        model: RTFModel,
        path_mode: PathWeightMode = PathWeightMode.LOG,
        max_artifacts: int = 512,
        digests: Optional[Mapping[int, bytes]] = None,
    ) -> None:
        self.stats = StoreStats()
        self._network = model.network
        self._path_mode = path_mode
        self._artifacts = _ArtifactCache(self.stats, max_artifacts)
        # Attached estimator backends (duck-typed: anything exposing
        # refresh(state, day_samples, learning_rate) and
        # estimate(state, probes, slot, deadline)); their *state* lives
        # in the snapshots, the instances here are the stateless math
        # that advances it on refresh.
        self._backends: Dict[str, object] = {}
        self._lock = threading.RLock()
        self._created_monotonic = time.monotonic()
        params = {t: model.slot(t) for t in model.slots}
        given = dict(digests) if digests is not None else {}
        digest_map = {
            t: given.get(t) or params_signature(p) for t, p in params.items()
        }
        self._current = ModelSnapshot(
            1, self._network, params, digest_map, path_mode, self._artifacts
        )
        self._count_publish(len(params))

    @classmethod
    def from_slots(
        cls,
        network: TrafficNetwork,
        slots: Iterable[RTFSlot],
        path_mode: PathWeightMode = PathWeightMode.LOG,
        max_artifacts: int = 512,
    ) -> "ModelStore":
        """Build a store directly from per-slot parameters."""
        return cls(RTFModel(network, slots), path_mode, max_artifacts)

    @property
    def network(self) -> TrafficNetwork:
        """The road graph every version is defined on."""
        return self._network

    @property
    def path_mode(self) -> PathWeightMode:
        """Path-weight transform used for correlation derivation."""
        return self._path_mode

    @property
    def version(self) -> int:
        """Version number of the current snapshot."""
        return self.current().version

    @property
    def uptime_seconds(self) -> float:
        """Seconds since this store was constructed (monotonic clock)."""
        return time.monotonic() - self._created_monotonic

    def health_info(self) -> Dict[str, object]:
        """Static facts the health layer reports on ``/healthz``.

        The dict is one consistent read: version and publish/refresh
        counters come from the same lock hold, so a concurrent publish
        cannot show a new version with the old counters.
        """
        with self._lock:
            return {
                "store_version": self._current.version,
                "uptime_seconds": self.uptime_seconds,
                "slots": len(self._current.slots),
                "roads": self._network.n_roads,
                "publishes": self.stats.publishes,
                "refreshes": self.stats.refreshes,
            }

    def current(self) -> ModelSnapshot:
        """The current published snapshot (atomic pointer read).

        Readers must call this **once** per query and use the returned
        snapshot throughout — that is what makes a concurrent publish
        invisible to an in-flight answer.
        """
        with self._lock:
            return self._current

    @contextlib.contextmanager
    def pinned(self):
        """Pin the current snapshot for a multi-request serving span.

        The serving layer wraps each coalesced batch in this context so
        every request of the batch — OCS, probing, and the shared GSP
        propagation — reads one model version, and the
        ``store.pinned_readers`` gauge shows how many such spans are
        live while a hot :meth:`refresh` publishes underneath them.

        Yields:
            The pinned :class:`ModelSnapshot`.
        """
        snapshot = self.current()
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge("store.pinned_readers").inc()
        try:
            yield snapshot
        finally:
            if metrics.enabled:
                metrics.gauge("store.pinned_readers").dec()

    # -- publishing -----------------------------------------------------

    def publish(self, new_slots: Iterable[RTFSlot]) -> ModelSnapshot:
        """Atomically publish a new version with the given slots replaced.

        Copy-on-write: only the passed slots get new parameter objects
        and digests; every other slot of the new snapshot shares the
        previous version's :class:`RTFSlot` instances (``is``-identity),
        so their cached artifacts and GSP compilations stay warm.  Slots
        not previously fitted are added.

        Returns:
            The freshly published :class:`ModelSnapshot`.
        """
        replacements = list(new_slots)
        if not replacements:
            raise ModelError("publish needs at least one slot")
        return self._publish(replacements, backend_states=None)

    def _publish(
        self,
        replacements: "list[RTFSlot]",
        backend_states: Optional[Mapping[str, object]],
    ) -> ModelSnapshot:
        """Shared publish path: validate, swap the snapshot, count.

        ``backend_states=None`` carries the previous version's blobs
        forward unchanged (plain slot publish); a mapping replaces them
        atomically with the slot swap (refresh / attach).
        """
        seen = set()
        for slot_params in replacements:
            slot_params.check_against(self._network)
            if slot_params.slot in seen:
                raise ModelError(
                    f"duplicate parameters for slot {slot_params.slot} in publish"
                )
            seen.add(slot_params.slot)
        with get_tracer().span("store.publish", slots=len(replacements)) as span:
            with self._lock:
                previous = self._current
                params = dict(previous._params)
                digests = dict(previous._digests)
                stale_digests = []
                for slot_params in replacements:
                    old_digest = digests.get(slot_params.slot)
                    params[slot_params.slot] = slot_params
                    new_digest = params_signature(slot_params)
                    digests[slot_params.slot] = new_digest
                    if old_digest is not None and old_digest != new_digest:
                        stale_digests.append(old_digest)
                states = (
                    previous._backend_states
                    if backend_states is None
                    else backend_states
                )
                snapshot = ModelSnapshot(
                    previous.version + 1,
                    self._network,
                    params,
                    digests,
                    self._path_mode,
                    self._artifacts,
                    backend_states=states,
                )
                self._current = snapshot
                # Same atomic publish: a refreshed slot's warm-start seed
                # is dropped before any reader can observe the new
                # version.  A reader still pinned on the old snapshot at
                # worst cold-starts (miss); a reader of the new version
                # can never be seeded from pre-refresh parameters.
                for stale in stale_digests:
                    self._artifacts.drop(_KIND_WARM_START, stale)
            span.set_attr("version", snapshot.version)
        self._count_publish(len(replacements))
        return snapshot

    def refresh(
        self,
        day_samples: Mapping[int, np.ndarray],
        learning_rate: float = 0.05,
    ) -> ModelSnapshot:
        """Absorb one day of speeds into the touched slots and publish.

        For each ``slot → sample`` pair the slot's moments are advanced
        with :class:`~repro.core.online_update.OnlineRTFUpdater`
        (exponential forgetting) and the result published as one new
        version.  Exactly ``len(day_samples)`` slots change digest;
        everything else is structurally shared with the previous
        version.

        Args:
            day_samples: Today's per-road speed vector per global slot;
                every key must already be fitted.
            learning_rate: Forgetting factor η in (0, 1).

        Returns:
            The freshly published :class:`ModelSnapshot`.

        Raises:
            NotFittedError: When a key was never fitted.
            ModelError: On an empty mapping or malformed samples.
        """
        if not day_samples:
            raise ModelError("refresh needs at least one slot sample")
        with get_tracer().span("store.refresh", slots=len(day_samples)):
            # Hold the lock across read-modify-write so two concurrent
            # refreshes cannot base themselves on the same version and
            # silently drop each other's updates.  Attached backend
            # states advance inside the same hold and publish with the
            # RTF slots in one version — a reader never sees RTF
            # parameters from day d next to a backend state from d-1.
            with self._lock:
                snapshot = self.current()
                for slot in day_samples:
                    snapshot.slot(slot)  # NotFittedError on unknown slots
                refreshed = refresh_slots(
                    self._network, snapshot._params, day_samples, learning_rate
                )
                states: Optional[Dict[str, object]] = None
                if self._backends:
                    states = dict(snapshot._backend_states)
                    for name, backend in self._backends.items():
                        state = states.get(name)
                        if state is None:
                            continue
                        states[name] = backend.refresh(  # type: ignore[attr-defined]
                            state, day_samples, learning_rate
                        )
                published = self._publish(refreshed, states)
                self.stats.refreshes += 1
                self.stats.refreshed_slots += len(refreshed)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("store.refreshes").inc()
            metrics.counter("store.refreshed_slots").inc(len(refreshed))
        return published

    # -- estimator backends ---------------------------------------------

    def attach_backend(
        self, name: str, backend: object, state: object
    ) -> ModelSnapshot:
        """Attach an estimator backend's fitted state to the store.

        Publishes a new version whose snapshot carries ``state`` under
        ``name``; every subsequent :meth:`refresh` advances the blob via
        ``backend.refresh(state, day_samples, learning_rate)`` and
        publishes it atomically with the RTF slots.  The backend object
        itself is stateless math — it is kept on the store (not the
        snapshot) purely to drive refreshes and per-query estimates.

        The store deliberately duck-types ``backend`` rather than
        importing :mod:`repro.backends` (which depends on this module):
        anything exposing ``refresh``/``estimate`` qualifies, and a
        ``bind_artifacts`` hook, when present, is wired to the store's
        digest-keyed artifact cache under ``backend.``-prefixed kinds.

        Returns:
            The freshly published :class:`ModelSnapshot`.

        Raises:
            BackendError: When ``backend`` lacks the protocol methods.
        """
        if not name or not isinstance(name, str):
            raise BackendError(f"invalid backend name {name!r}")
        for attr in ("refresh", "estimate"):
            if not callable(getattr(backend, attr, None)):
                raise BackendError(
                    f"backend {name!r} does not implement {attr}(); "
                    f"estimator backends must follow the "
                    f"fit/refresh/estimate protocol"
                )
        bind = getattr(backend, "bind_artifacts", None)
        if callable(bind):
            bind(self._derive_backend_artifact)
        with get_tracer().span("store.attach_backend", backend=name):
            with self._lock:
                states = dict(self._current._backend_states)
                states[name] = state
                self._backends[name] = backend
                return self._publish([], states)

    def backend_instance(self, name: str) -> object:
        """The attached backend object registered under ``name``.

        Raises:
            BackendError: When ``name`` was never attached.
        """
        with self._lock:
            backend = self._backends.get(name)
        if backend is None:
            raise BackendError(
                f"backend {name!r} is not attached to this store "
                f"(attached: {sorted(self._backends)})"
            )
        return backend

    @property
    def attached_backends(self) -> Tuple[str, ...]:
        """Names of the attached estimator backends, sorted."""
        with self._lock:
            return tuple(sorted(self._backends))

    def _derive_backend_artifact(self, kind: str, digest: bytes, derive):
        """Digest-keyed derivation hook handed to attached backends."""
        return self._artifacts.get_or_derive(f"backend.{kind}", digest, derive)

    # -- cache plumbing -------------------------------------------------

    def seed_correlation(self, digest: bytes, matrix: np.ndarray) -> None:
        """Warm the artifact cache with a precomputed Γ_R matrix.

        Used when adopting an eagerly built
        :class:`~repro.core.correlation.CorrelationTable` whose digests
        match the current parameters, so legacy construction does not
        re-derive work it already has in hand.
        """
        n = self._network.n_roads
        if matrix.shape != (n, n):
            raise ModelError(
                f"correlation matrix shape {matrix.shape} != ({n}, {n})"
            )
        self._artifacts.seed(_KIND_CORRELATION, digest, matrix)

    def seed_propagation(
        self,
        digest: bytes,
        arrays: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> None:
        """Warm the artifact cache with precomputed propagation arrays.

        Used by :func:`repro.core.snapshot_io.load_store` so the first
        GSP propagation after a cold start reads the persisted arrays
        (typically mmap views) instead of re-deriving them.
        """
        if len(arrays) != 4:
            raise ModelError(
                f"propagation artifact needs 4 arrays, got {len(arrays)}"
            )
        n, m = self._network.n_roads, self._network.n_edges
        shapes = tuple(a.shape for a in arrays)
        if shapes != ((n,), (n,), (m,), (m,)):
            raise ModelError(
                f"propagation array shapes {shapes} do not match "
                f"{n} roads / {m} edges"
            )
        self._artifacts.seed(_KIND_PROPAGATION, digest, tuple(arrays))

    def _count_publish(self, n_slots: int) -> None:
        # Under the store RLock: publish() calls this after releasing its
        # own critical section, so without the lock two concurrent
        # publishes can tear stats.publishes += 1 (lost update) and set
        # the version gauge from a stale snapshot.
        with self._lock:
            self.stats.publishes += 1
            self.stats.published_slots += n_slots
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("store.publishes").inc()
                metrics.counter("store.published_slots").inc(n_slots)
                metrics.gauge("store.version").set(self._current.version)
