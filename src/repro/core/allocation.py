"""Cross-slot budget allocation.

The paper fixes one budget K per query.  A deployed service has a
*daily* crowdsourcing budget to spread over the slots it monitors, and
slots differ in how much help they need: the RTF σ parameters say
exactly where periodicity is weak.  :func:`allocate_budget` splits a
total budget across slots proportionally to each slot's total queried
periodicity weakness Σ_{r∈R^q} σ_r^t, subject to a per-slot floor —
a direct, principled extension of the paper's Eq. 13 weighting to the
temporal axis.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import BudgetError
from repro.core.rtf import RTFModel


def slot_need(
    model: RTFModel,
    queried: Sequence[int],
    slots: Sequence[int],
) -> Dict[int, float]:
    """Per-slot need score: Σ over queried roads of ``sigma_i^t``.

    Large scores mean the slot's queried roads are hard to predict from
    history alone, so crowdsourcing helps most there.
    """
    if not queried:
        raise BudgetError("queried set must not be empty")
    if not slots:
        raise BudgetError("slot set must not be empty")
    roads = list(queried)
    return {
        slot: float(model.slot(slot).sigma[roads].sum())
        for slot in slots
    }


def allocate_budget(
    model: RTFModel,
    queried: Sequence[int],
    slots: Sequence[int],
    total_budget: int,
    floor: int = 0,
) -> Dict[int, int]:
    """Split a daily budget over slots proportionally to their need.

    Uses largest-remainder rounding so the allocations are integers and
    sum exactly to ``total_budget``.

    Args:
        model: Fitted RTF (must cover every slot).
        queried: The roads the service answers queries about.
        slots: Monitored slots.
        total_budget: Total units to spend across all slots.
        floor: Minimum units every slot must receive.

    Returns:
        Mapping slot → integer budget.

    Raises:
        BudgetError: When the floor alone exceeds the total budget, or
            inputs are invalid.
    """
    if total_budget <= 0:
        raise BudgetError("total_budget must be positive")
    if floor < 0:
        raise BudgetError("floor must be >= 0")
    slots = list(slots)
    need = slot_need(model, queried, slots)
    base = floor * len(slots)
    if base > total_budget:
        raise BudgetError(
            f"floor {floor} x {len(slots)} slots exceeds total budget {total_budget}"
        )
    remaining = total_budget - base
    weights = np.array([need[slot] for slot in slots], dtype=np.float64)
    if weights.sum() <= 0:
        shares = np.full(len(slots), remaining / len(slots))
    else:
        shares = remaining * weights / weights.sum()
    allocations = np.floor(shares).astype(int)
    leftovers = remaining - int(allocations.sum())
    # Largest remainder first.
    remainders = shares - allocations
    for idx in np.argsort(-remainders)[:leftovers]:
        allocations[idx] += 1
    return {slot: floor + int(alloc) for slot, alloc in zip(slots, allocations)}
