"""Optimal Crowdsourced-road Selection — OCS (paper §V).

Maximize the periodicity-weighted correlation (Eq. 13)

.. math::

    \\widehat{corr}(R^q, R^c) = \\sum_{r_i \\in R^q} \\sigma_i^t \\cdot
        corr^t(r_i, R^c)

subject to ``R^c ⊆ R^w``, the budget ``Σ c_i ≤ K`` and the pairwise
redundancy bound ``corr(r_i, r_j) ≤ θ`` for all selected pairs (Eq. 15).
The problem is NP-hard (Theorem 1, reduction from Maximum k-Coverage).

Solvers:

* :func:`ratio_greedy` — Alg. 2; picks the best objective-gain / cost
  ratio each round; ``O(K |R^w|)`` but unboundedly bad in the worst case
  (paper Example 1).
* :func:`objective_greedy` — Alg. 3; picks the best raw objective gain.
* :func:`hybrid_greedy` — Alg. 4; the better of the two, with the
  ``(1 - 1/e)/2`` approximation guarantee of Theorem 2.
* :func:`random_selection` — the paper's "Rand" baseline (Fig. 3c).
* :func:`brute_force_ocs` — exact optimum by exhaustive search; only
  for small instances, used to measure empirical approximation ratios.
* :func:`trivial_solution` — the two closed-form cases of Remark 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import BudgetError, SelectionError
from repro.obs import DEFAULT_SIZE_BUCKETS, DEFAULT_TIME_BUCKETS, get_metrics

#: Hard cap for :func:`brute_force_ocs`; beyond this the search space
#: (2^n subsets) is unreasonable.
BRUTE_FORCE_LIMIT = 22


@dataclass(frozen=True)
class OCSInstance:
    """One OCS problem (Eq. 15).

    Attributes:
        queried: Queried roads ``R^q`` (network indices).
        candidates: Roads with workers available, ``R^w``.
        costs: Cost per candidate (answers required), aligned with
            ``candidates``; strictly positive.
        budget: Total payment budget ``K``.
        theta: Redundancy threshold ``θ`` in ``(0, 1]``.
        corr: All-pairs correlation matrix for the query slot
            (``Γ_R`` row/col indexed by road).
        sigma: Periodicity intensities ``sigma_i^t`` per road.
    """

    queried: Tuple[int, ...]
    candidates: Tuple[int, ...]
    costs: np.ndarray
    budget: float
    theta: float
    corr: np.ndarray
    sigma: np.ndarray

    def __post_init__(self) -> None:
        if not self.queried:
            raise SelectionError("queried road set R^q must not be empty")
        if not self.candidates:
            raise SelectionError("candidate road set R^w must not be empty")
        if len(set(self.candidates)) != len(self.candidates):
            raise SelectionError("candidate roads contain duplicates")
        costs = np.asarray(self.costs, dtype=np.float64)
        if costs.shape != (len(self.candidates),):
            raise SelectionError(
                f"costs shape {costs.shape} does not match {len(self.candidates)} candidates"
            )
        if np.any(costs <= 0):
            raise BudgetError("all candidate costs must be strictly positive")
        if self.budget <= 0:
            raise BudgetError(f"budget must be positive, got {self.budget}")
        if not 0.0 < self.theta <= 1.0:
            raise SelectionError(f"theta must be in (0, 1], got {self.theta}")
        n = self.corr.shape[0]
        if self.corr.shape != (n, n):
            raise SelectionError(f"corr must be square, got {self.corr.shape}")
        if self.sigma.shape != (n,):
            raise SelectionError(
                f"sigma shape {self.sigma.shape} does not match corr size {n}"
            )
        indices = list(self.queried) + list(self.candidates)
        if min(indices) < 0 or max(indices) >= n:
            raise SelectionError("queried/candidate indices outside the network")

    @property
    def n_candidates(self) -> int:
        """Number of candidate roads |R^w|."""
        return len(self.candidates)

    def objective(self, selection: Sequence[int]) -> float:
        """Eq. 13 for an explicit selection (empty selection → 0)."""
        selection = list(selection)
        if not selection:
            return 0.0
        q = np.asarray(self.queried, dtype=int)
        best = self.corr[np.ix_(q, np.asarray(selection, dtype=int))].max(axis=1)
        return float(np.dot(self.sigma[q], best))

    def selection_cost(self, selection: Sequence[int]) -> float:
        """Total cost of a selection (roads must be candidates)."""
        cost_by_road = {road: float(c) for road, c in zip(self.candidates, self.costs)}
        try:
            return sum(cost_by_road[road] for road in selection)
        except KeyError as exc:
            raise SelectionError(f"road {exc.args[0]} is not a candidate") from None

    def is_feasible(self, selection: Sequence[int]) -> bool:
        """Check all three constraints of Eq. 15."""
        selection = list(selection)
        if len(set(selection)) != len(selection):
            return False
        if not set(selection) <= set(self.candidates):
            return False
        if self.selection_cost(selection) > self.budget + 1e-9:
            return False
        for a, b in combinations(selection, 2):
            if self.corr[a, b] > self.theta + 1e-12:
                return False
        return True


@dataclass(frozen=True)
class OCSResult:
    """Outcome of one OCS solver run.

    Attributes:
        selected: Chosen crowdsourced roads ``R^c`` (network indices,
            in selection order).
        objective: Eq. 13 value of the selection.
        cost: Total cost spent.
        iterations: Greedy rounds performed (subset count for brute
            force).
        runtime_seconds: Wall-clock solve time.
        algorithm: Solver name.
    """

    selected: Tuple[int, ...]
    objective: float
    cost: float
    iterations: int
    runtime_seconds: float
    algorithm: str


class _GreedyState:
    """Shared bookkeeping of the greedy solvers.

    Tracks, for every candidate, whether it is still feasible, and for
    every queried road the best correlation achieved by the current
    selection.  In the default *incremental* mode the per-candidate
    marginal gains are materialized once and then delta-updated on every
    pick: committing a candidate can only change a queried road's
    contribution where the new road's correlation beats the previous
    best, so only those touched rows are re-accumulated —
    ``O(|T| · |R^w|)`` instead of the ``O(|R^q| · |R^w|)`` full rescan
    per round.  Untouched rows contribute an exact-zero delta, so the
    incremental gains match the rescan bit-for-bit on exactly
    representable inputs and ties break identically.
    """

    def __init__(self, instance: OCSInstance, *, incremental: bool = True) -> None:
        self.instance = instance
        self.incremental = incremental
        self.q = np.asarray(instance.queried, dtype=int)
        self.c = np.asarray(instance.candidates, dtype=int)
        self.costs = np.asarray(instance.costs, dtype=np.float64)
        self.sigma_q = instance.sigma[self.q]
        # (|q|, |c|) correlation block, computed once.
        self.corr_qc = instance.corr[np.ix_(self.q, self.c)]
        self.best = np.zeros(len(self.q))
        self.available = np.ones(len(self.c), dtype=bool)
        self.remaining = float(instance.budget)
        self.selected: List[int] = []
        self.iterations = 0
        self._gains: Optional[np.ndarray] = None
        # Telemetry tallies, flushed once per solve (see
        # ``_flush_solver_metrics``): how many per-candidate marginal
        # gains were evaluated, how many candidates the θ-redundancy
        # bound pruned from R^w, and how much work the incremental mode
        # actually did (delta passes and queried rows touched by them).
        self.gain_calls = 0
        self.candidate_evaluations = 0
        self.pruned = 0
        self.delta_updates = 0
        self.touched_rows = 0

    def gains(self) -> np.ndarray:
        """Objective increment of adding each candidate (vector |c|)."""
        self.gain_calls += 1
        if self._gains is None or not self.incremental:
            self.candidate_evaluations += self.c.size
            improvement = np.clip(self.corr_qc - self.best[:, None], 0.0, None)
            self._gains = self.sigma_q @ improvement
        return self._gains

    def feasible_mask(self) -> np.ndarray:
        """Candidates that fit the remaining budget and redundancy bound."""
        return self.available & (self.costs <= self.remaining + 1e-9)

    def take(self, candidate_pos: int) -> None:
        """Commit candidate at position ``candidate_pos`` into R^c."""
        road = int(self.c[candidate_pos])
        self.selected.append(road)
        self.remaining -= float(self.costs[candidate_pos])
        new_col = self.corr_qc[:, candidate_pos]
        if self.incremental and self._gains is not None:
            touched = new_col > self.best
            n_touched = int(np.count_nonzero(touched))
            if n_touched:
                block = self.corr_qc[touched]
                old_clip = np.clip(block - self.best[touched, None], 0.0, None)
                new_clip = np.clip(block - new_col[touched, None], 0.0, None)
                self._gains = self._gains + self.sigma_q[touched] @ (new_clip - old_clip)
                self.delta_updates += 1
                self.touched_rows += n_touched
        self.best = np.maximum(self.best, new_col)
        self.available[candidate_pos] = False
        # Redundancy: drop candidates too correlated with the new road.
        too_close = self.instance.corr[road, self.c] > self.instance.theta + 1e-12
        self.pruned += int(np.count_nonzero(self.available & too_close))
        self.available &= ~too_close
        self.iterations += 1


def _flush_solver_metrics(
    result: OCSResult,
    instance: OCSInstance,
    state: Optional[_GreedyState] = None,
    objective_evaluations: int = 0,
) -> None:
    """Publish one solver run's counters (single branch while disabled).

    Greedy solvers hand their :class:`_GreedyState` over so the
    per-round tallies (marginal-gain calls, candidate evaluations,
    θ-pruned candidates) land on the registry in one flush instead of
    touching it inside the selection loop.
    """
    metrics = get_metrics()
    if not metrics.enabled:
        return
    labels = {"algorithm": result.algorithm}
    metrics.counter("ocs.solves", labels).inc()
    metrics.histogram("ocs.runtime_seconds", DEFAULT_TIME_BUCKETS, labels).observe(
        result.runtime_seconds
    )
    metrics.histogram("ocs.selected_size", DEFAULT_SIZE_BUCKETS, labels).observe(
        len(result.selected)
    )
    if objective_evaluations:
        metrics.counter("ocs.objective_evaluations", labels).inc(objective_evaluations)
    if state is not None:
        metrics.counter("ocs.marginal_gain_calls", labels).inc(state.gain_calls)
        metrics.counter("ocs.candidate_evaluations", labels).inc(
            state.candidate_evaluations
        )
        metrics.counter("ocs.pruned_candidates", labels).inc(state.pruned)
        metrics.gauge("ocs.pruning_rate", labels).set(
            state.pruned / instance.n_candidates
        )
        if state.delta_updates:
            metrics.counter("ocs.incremental.updates", labels).inc(state.delta_updates)
            metrics.histogram(
                "ocs.incremental.touched_rows", DEFAULT_SIZE_BUCKETS, labels
            ).observe(state.touched_rows)


def _run_greedy(
    instance: OCSInstance,
    score: Callable[[_GreedyState, np.ndarray, np.ndarray], np.ndarray],
    name: str,
    *,
    incremental: bool = True,
) -> OCSResult:
    start = time.perf_counter()
    state = _GreedyState(instance, incremental=incremental)
    while True:
        mask = state.feasible_mask()
        if not mask.any():
            break
        gains = state.gains()
        scores = score(state, gains, mask)
        scores = np.where(mask, scores, -np.inf)
        best_pos = int(np.argmax(scores))
        if not np.isfinite(scores[best_pos]):
            break
        state.take(best_pos)
    runtime = time.perf_counter() - start
    result = OCSResult(
        selected=tuple(state.selected),
        objective=instance.objective(state.selected),
        cost=instance.selection_cost(state.selected),
        iterations=state.iterations,
        runtime_seconds=runtime,
        algorithm=name,
    )
    _flush_solver_metrics(result, instance, state)
    return result


def ratio_greedy(instance: OCSInstance, *, incremental: bool = True) -> OCSResult:
    """Alg. 2: maximize objective-gain / cost each round.

    ``incremental=False`` forces the full-rescan gain evaluation each
    round — the oracle the incremental mode is differential-tested
    against.
    """
    return _run_greedy(
        instance,
        lambda state, gains, mask: gains / state.costs,
        "ratio-greedy",
        incremental=incremental,
    )


def objective_greedy(instance: OCSInstance, *, incremental: bool = True) -> OCSResult:
    """Alg. 3: maximize the raw objective gain each round."""
    return _run_greedy(
        instance,
        lambda state, gains, mask: gains,
        "objective-greedy",
        incremental=incremental,
    )


def hybrid_greedy(instance: OCSInstance, *, incremental: bool = True) -> OCSResult:
    """Alg. 4: run both greedies, keep the better objective.

    Achieves the ``(1 - 1/e)/2`` approximation ratio of Theorem 2.
    """
    start = time.perf_counter()
    ratio = ratio_greedy(instance, incremental=incremental)
    objective = objective_greedy(instance, incremental=incremental)
    winner = ratio if ratio.objective >= objective.objective else objective
    runtime = time.perf_counter() - start
    result = OCSResult(
        selected=winner.selected,
        objective=winner.objective,
        cost=winner.cost,
        iterations=ratio.iterations + objective.iterations,
        runtime_seconds=runtime,
        algorithm="hybrid-greedy",
    )
    # The two sub-greedies already flushed their own tallies; this only
    # counts the hybrid solve itself.
    _flush_solver_metrics(result, instance)
    return result


def random_selection(
    instance: OCSInstance, rng: Optional[np.random.Generator] = None
) -> OCSResult:
    """The paper's "Rand" baseline: add shuffled candidates while feasible."""
    start = time.perf_counter()
    # Deliberate: the Rand baseline accepts an injected rng for tests.
    rng = rng or np.random.default_rng()  # repro: noqa[RA006]
    state = _GreedyState(instance)
    order = rng.permutation(len(state.c))
    for pos in order:
        if state.available[pos] and state.costs[pos] <= state.remaining + 1e-9:
            state.take(int(pos))
    runtime = time.perf_counter() - start
    result = OCSResult(
        selected=tuple(state.selected),
        objective=instance.objective(state.selected),
        cost=instance.selection_cost(state.selected),
        iterations=state.iterations,
        runtime_seconds=runtime,
        algorithm="random",
    )
    _flush_solver_metrics(result, instance, state)
    return result


def brute_force_ocs(instance: OCSInstance) -> OCSResult:
    """Exact optimum by exhaustive subset search (small instances only).

    Raises:
        SelectionError: When ``|R^w|`` exceeds :data:`BRUTE_FORCE_LIMIT`.
    """
    if instance.n_candidates > BRUTE_FORCE_LIMIT:
        raise SelectionError(
            f"brute force limited to {BRUTE_FORCE_LIMIT} candidates, "
            f"got {instance.n_candidates}"
        )
    start = time.perf_counter()
    candidates = list(instance.candidates)
    costs = np.asarray(instance.costs, dtype=np.float64)
    best_sel: Tuple[int, ...] = ()
    best_obj = 0.0
    examined = 0

    def recurse(pos: int, chosen: List[int], spent: float) -> None:
        nonlocal best_sel, best_obj, examined
        examined += 1
        obj = instance.objective(chosen)
        if obj > best_obj:
            best_obj = obj
            best_sel = tuple(chosen)
        if pos == len(candidates):
            return
        for nxt in range(pos, len(candidates)):
            road = candidates[nxt]
            if spent + costs[nxt] > instance.budget + 1e-9:
                continue
            if any(
                instance.corr[road, prev] > instance.theta + 1e-12 for prev in chosen
            ):
                continue
            chosen.append(road)
            recurse(nxt + 1, chosen, spent + float(costs[nxt]))
            chosen.pop()

    recurse(0, [], 0.0)
    runtime = time.perf_counter() - start
    result = OCSResult(
        selected=best_sel,
        objective=best_obj,
        cost=instance.selection_cost(best_sel),
        iterations=examined,
        runtime_seconds=runtime,
        algorithm="brute-force",
    )
    _flush_solver_metrics(result, instance, objective_evaluations=examined)
    return result


def trivial_solution(instance: OCSInstance) -> Optional[OCSResult]:
    """Remark 2's closed-form optima (θ = 1, unit costs).

    Returns ``None`` when neither trivial case applies.

    * Over-adequate budget (``|R^w| ≤ K``): select all candidates.
    * Few queried roads (``|R^q| < K``): pick, for each queried road,
      the candidate most correlated with it.
    """
    unit_costs = bool(np.all(np.asarray(instance.costs) == 1))
    if instance.theta < 1.0 or not unit_costs:
        return None
    start = time.perf_counter()
    if instance.n_candidates <= instance.budget:
        selected: Tuple[int, ...] = tuple(instance.candidates)
    elif len(instance.queried) < instance.budget:
        c = np.asarray(instance.candidates, dtype=int)
        picks: Set[int] = set()
        for q in instance.queried:
            picks.add(int(c[np.argmax(instance.corr[q, c])]))
        selected = tuple(sorted(picks))
    else:
        return None
    runtime = time.perf_counter() - start
    result = OCSResult(
        selected=selected,
        objective=instance.objective(selected),
        cost=instance.selection_cost(selected),
        iterations=0,
        runtime_seconds=runtime,
        algorithm="trivial",
    )
    _flush_solver_metrics(result, instance)
    return result
