"""Road correlations (paper §V-A, Eq. 7–13).

* road–road, adjacent: the RTF edge weight ``rho_ij`` (Eq. 7);
* road–road, non-adjacent: the maximal cumulative product of edge
  weights along any joining path (Eq. 8);
* road–set: the max road–road correlation into the set (Eq. 11);
* set–set: the sum of road–set correlations over the queried roads
  (Eq. 12);
* periodicity-weighted: Eq. 13, the OCS objective.

Path transform.  The paper (Eq. 9) claims the product-maximizing path is
the shortest path under reciprocal weights ``1/rho``.  That is not
exactly true (``argmin Σ 1/rho ≠ argmax Π rho`` in general); the exact
reduction uses weights ``-log rho``.  Both are implemented
(:class:`PathWeightMode`); ``LOG`` is the default and ``RECIPROCAL``
reproduces the paper literally — the ablation bench quantifies the gap.

The all-pairs table ``Γ_R`` is computed offline with multi-source
Dijkstra (:func:`scipy.sparse.csgraph.dijkstra`) and cached per slot.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import dijkstra

from repro.errors import ModelError
from repro.core.rtf import RTFModel, params_signature
from repro.network.graph import TrafficNetwork

#: Correlations below this are treated as zero (no usable path).
_RHO_EPS = 1e-12


class PathWeightMode(str, enum.Enum):
    """Edge-weight transform used for the path search of Eq. 8/9."""

    #: Exact: weights ``-log rho``; shortest path maximizes the product.
    LOG = "log"
    #: Paper-literal: weights ``1/rho`` (Eq. 9); the product is then
    #: evaluated along the path that minimizes the reciprocal sum.
    RECIPROCAL = "reciprocal"


def _edge_graph(
    network: TrafficNetwork, weights: np.ndarray, keep: np.ndarray
) -> sp.csr_matrix:
    """Symmetric sparse graph over the edges where ``keep`` is True."""
    n = network.n_roads
    if not network.edges or not keep.any():
        return sp.csr_matrix((n, n))
    edge_array = np.array(network.edges)[keep]
    ei, ej = edge_array.T
    kept_weights = weights[keep]
    rows = np.concatenate([ei, ej])
    cols = np.concatenate([ej, ei])
    vals = np.concatenate([kept_weights, kept_weights])
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def road_road_correlation_matrix(
    network: TrafficNetwork,
    rho: np.ndarray,
    mode: PathWeightMode = PathWeightMode.LOG,
) -> np.ndarray:
    """All-pairs road–road correlation (Eq. 7–10) for one slot.

    Args:
        network: Road graph.
        rho: Per-edge correlations aligned with ``network.edges``.
        mode: Path-weight transform; see :class:`PathWeightMode`.

    Returns:
        Symmetric ``(n, n)`` matrix with unit diagonal; entry ``(i, j)``
        is the maximal path product of edge correlations (0.0 when no
        path of positive-correlation edges exists).
    """
    rho = np.asarray(rho, dtype=np.float64)
    if rho.shape != (network.n_edges,):
        raise ModelError(
            f"rho must have shape ({network.n_edges},), got {rho.shape}"
        )
    if np.any((rho < 0) | (rho > 1)):
        raise ModelError("rho entries must lie in [0, 1]")
    n = network.n_roads
    if n == 0:
        return np.zeros((0, 0))

    usable = rho > _RHO_EPS
    if mode is PathWeightMode.LOG:
        # Shortest path on -log(rho) == max product of rho.  Zero-rho
        # edges are dropped entirely (they kill any product).
        safe = np.where(usable, rho, 1.0)
        weights = -np.log(safe)
        # scipy treats 0-weight entries as absent in sparse graphs, so
        # nudge exact rho == 1 edges to a tiny positive weight.
        weights = np.where(weights <= 0, 1e-15, weights)
        graph = _edge_graph(network, weights, usable)
        dist = dijkstra(graph, directed=False)
        corr = np.exp(-dist)
        corr[np.isinf(dist)] = 0.0
        np.fill_diagonal(corr, 1.0)
        return corr

    if mode is PathWeightMode.RECIPROCAL:
        weights = 1.0 / np.maximum(rho, _RHO_EPS)
        graph = _edge_graph(network, weights, usable)
        dist, predecessors = dijkstra(graph, directed=False, return_predecessors=True)
        log_rho_by_pair: Dict[Tuple[int, int], float] = {}
        for e, (i, j) in enumerate(network.edges):
            if usable[e]:
                log_rho_by_pair[(i, j)] = float(np.log(rho[e]))
                log_rho_by_pair[(j, i)] = float(np.log(rho[e]))
        corr = np.zeros((n, n))
        for source in range(n):
            preds = predecessors[source]
            # Accumulate log-products by walking each node's predecessor
            # chain once, memoized per source.
            log_prod = np.full(n, np.nan)
            log_prod[source] = 0.0
            for target in range(n):
                if not np.isnan(log_prod[target]) or np.isinf(dist[source, target]):
                    continue
                chain: List[int] = []
                node = target
                while np.isnan(log_prod[node]):
                    chain.append(node)
                    node = int(preds[node])
                acc = log_prod[node]
                for node_up in reversed(chain):
                    acc += log_rho_by_pair[(int(preds[node_up]), node_up)]
                    log_prod[node_up] = acc
            valid = ~np.isnan(log_prod)
            corr[source, valid] = np.exp(log_prod[valid])
        np.fill_diagonal(corr, 1.0)
        return corr

    raise ModelError(f"unknown path-weight mode {mode!r}")  # pragma: no cover


class CorrelationTable:
    """Precomputed all-pairs correlation table ``Γ_R`` (paper §V-A).

    Built offline from an :class:`RTFModel` (one matrix per fitted
    slot); lookups at query time are O(1) array reads.
    """

    def __init__(
        self,
        network: TrafficNetwork,
        matrices: Mapping[int, np.ndarray],
        mode: PathWeightMode = PathWeightMode.LOG,
        digests: Optional[Mapping[int, bytes]] = None,
    ) -> None:
        n = network.n_roads
        for slot, matrix in matrices.items():
            if matrix.shape != (n, n):
                raise ModelError(
                    f"slot {slot}: correlation matrix shape {matrix.shape} != ({n}, {n})"
                )
        if not matrices:
            raise ModelError("correlation table needs at least one slot")
        self._network = network
        self._matrices = dict(matrices)
        self._mode = mode
        self._digests: Dict[int, bytes] = dict(digests or {})

    @classmethod
    def precompute(
        cls,
        model: RTFModel,
        slots: Optional[Sequence[int]] = None,
        mode: PathWeightMode = PathWeightMode.LOG,
    ) -> "CorrelationTable":
        """Compute Γ_R for the given slots (default: all fitted slots).

        The table records the parameter digest of every slot it was
        derived from, so downstream consumers (``CrowdRTSE``) can detect
        a table that no longer matches its model generation.
        """
        use_slots = list(slots) if slots is not None else list(model.slots)
        matrices = {
            t: road_road_correlation_matrix(model.network, model.slot(t).rho, mode)
            for t in use_slots
        }
        digests = {t: params_signature(model.slot(t)) for t in use_slots}
        return cls(model.network, matrices, mode, digests=digests)

    @property
    def network(self) -> TrafficNetwork:
        """The road graph the table is defined on."""
        return self._network

    @property
    def mode(self) -> PathWeightMode:
        """Path-weight transform the table was built with."""
        return self._mode

    @property
    def slots(self) -> Tuple[int, ...]:
        """Covered slots, sorted."""
        return tuple(sorted(self._matrices))

    def matrix(self, slot: int) -> np.ndarray:
        """The full ``(n, n)`` correlation matrix of one slot."""
        try:
            return self._matrices[slot]
        except KeyError:
            raise ModelError(
                f"slot {slot} not in correlation table (available: {self.slots})"
            ) from None

    def digest(self, slot: int) -> Optional[bytes]:
        """Parameter digest the slot's matrix was derived from.

        ``None`` for tables built directly from matrices (no provenance
        recorded) — only :meth:`precompute` and the snapshot views fill
        this in.
        """
        return self._digests.get(slot)

    # ------------------------------------------------------------------
    # Paper Eq. 7–13
    # ------------------------------------------------------------------

    def road_road(self, slot: int, i: int, j: int) -> float:
        """Eq. 7/10: correlation between two roads."""
        return float(self.matrix(slot)[i, j])

    def road_set(self, slot: int, road: int, road_set: Sequence[int]) -> float:
        """Eq. 11: max correlation between ``road`` and a road set.

        An empty set yields 0.0 (no crowdsourced support at all).
        """
        roads = np.asarray(list(road_set), dtype=int)
        if roads.size == 0:
            return 0.0
        return float(self.matrix(slot)[road, roads].max())

    def set_set(self, slot: int, queried: Sequence[int], selected: Sequence[int]) -> float:
        """Eq. 12: summed road–set correlation of the queried roads."""
        queried = list(queried)
        return float(
            sum(self.road_set(slot, q, selected) for q in queried)
        )

    def weighted_correlation(
        self,
        slot: int,
        queried: Sequence[int],
        selected: Sequence[int],
        sigma: np.ndarray,
    ) -> float:
        """Eq. 13: periodicity-weighted correlation — the OCS objective.

        Args:
            slot: Time slot.
            queried: Queried roads ``R^q``.
            selected: Crowdsourced roads ``R^c``.
            sigma: Per-road periodicity intensities ``sigma_i^t`` for the
                *whole* network (indexed by road).
        """
        sigma = np.asarray(sigma, dtype=np.float64)
        if sigma.shape != (self._network.n_roads,):
            raise ModelError(
                f"sigma must have shape ({self._network.n_roads},), got {sigma.shape}"
            )
        return float(
            sum(
                sigma[q] * self.road_set(slot, q, selected)
                for q in queried
            )
        )
