"""Command-line interface for the CrowdRTSE reproduction.

Subcommands:

* ``dataset`` — build a dataset, print its Table II statistics, and
  optionally save the network / histories to disk.
* ``fit``     — run the offline stage and save the RTF model.
* ``query``   — answer one realtime query end to end and print the
  selection, spend, and quality against the simulated ground truth.
* ``refresh`` — replay test days through the versioned model store
  (hot model refresh) and print version/derivation counters.
* ``experiment`` — run one of the paper's tables/figures.
* ``stats``   — run a small instrumented query and dump the telemetry
  (Prometheus text plus optional JSON / trace artifacts).
* ``serve``   — replay a query workload through the concurrent
  :class:`~repro.serve.QueryService` and report latency percentiles.
* ``stream``  — replay test days as a probe feed through the streaming
  refresher (merge/dedup, watermark closes, bounded publishes) while
  the QueryService keeps answering queries concurrently.

Exit codes (uniform across subcommands):

* ``0``  — success.
* ``2``  — user error: bad arguments or any :class:`~repro.errors.ReproError`
  (malformed trace, invalid config, ...).  Matches argparse's own code.
* ``70`` — internal error (``EX_SOFTWARE``): an unexpected exception
  escaped; this is a bug, please report the traceback.

Examples::

    python -m repro.cli dataset --name semisyn --roads 150
    python -m repro.cli query --budget 30 --selector hybrid
    python -m repro.cli query --trace trace.jsonl --metrics-out metrics.json
    python -m repro.cli stats --metrics-out metrics.json --trace trace.jsonl
    python -m repro.cli experiment figure2 --scale quick
    python -m repro.cli serve --requests trace.jsonl --workers 4
    python -m repro.cli serve --n-requests 64 --duplication 4 --deadline-ms 500
    python -m repro.cli stream --days 2 --lateness-s 30 --queries 4
    python -m repro.cli stream --save-feed feed.jsonl
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

import repro
from repro import obs
from repro.experiments.common import ExperimentScale

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.obs.health import AdminServer, HealthMonitor


def _build_dataset(args: argparse.Namespace) -> "repro.Dataset":
    if args.name == "semisyn":
        return repro.build_semisyn(
            repro.SemiSynConfig(
                n_roads=args.roads,
                n_queried=args.queried,
                n_train_days=args.train_days,
                n_test_days=args.test_days,
                n_slots=args.slots,
                seed=args.seed,
            )
        )
    return repro.build_gmission(
        repro.GMissionConfig(
            n_train_days=args.train_days,
            n_test_days=args.test_days,
            n_slots=args.slots,
            seed=args.seed,
        )
    )


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--name", choices=("semisyn", "gmission"), default="semisyn",
        help="which Table II dataset to build",
    )
    parser.add_argument("--roads", type=int, default=150, help="network size (semisyn)")
    parser.add_argument("--queried", type=int, default=25, help="|R^q| (semisyn)")
    parser.add_argument("--train-days", type=int, default=20)
    parser.add_argument("--test-days", type=int, default=5)
    parser.add_argument("--slots", type=int, default=12, help="simulated slots per day")
    parser.add_argument("--seed", type=int, default=2018)


def _add_latency_args(parser: argparse.ArgumentParser) -> None:
    """Shared per-request latency knobs (``query`` and ``serve``)."""
    group = parser.add_argument_group("latency")
    group.add_argument(
        "--precision", choices=("float64", "float32"), default=None,
        help="GSP sweep precision: float64 is the bit-exact reference, "
        "float32 the fast opt-in mode (documented tolerance contract; "
        "see docs/API.md).  Default: float64, or whatever the trace "
        "line carries",
    )
    group.add_argument(
        "--no-warm-start", action="store_true",
        help="disable warm-starting GSP from the previous converged "
        "field (warm starts converge to the same fixed point within "
        "the solver tolerance, not bit-identically)",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--metrics-out", help="write the metrics snapshot JSON here"
    )
    group.add_argument(
        "--trace", help="write the span tree as JSON-lines here"
    )
    group.add_argument(
        "--chrome-trace",
        help="write a chrome://tracing-compatible trace event file here",
    )


def _obs_requested(args: argparse.Namespace) -> bool:
    return bool(args.metrics_out or args.trace or args.chrome_trace)


def _enable_obs(args: argparse.Namespace) -> None:
    """Turn on metrics/tracing for the outputs the user asked for."""
    obs.configure(
        metrics=bool(args.metrics_out),
        tracing=bool(args.trace or args.chrome_trace),
    )
    obs.reset()


def _export_obs(args: argparse.Namespace) -> None:
    if args.metrics_out:
        obs.write_metrics_json(obs.get_metrics().snapshot(), args.metrics_out)
        print(f"metrics snapshot written to {args.metrics_out}")
    tracer = obs.get_tracer()
    if args.trace:
        tracer.export_jsonl(args.trace)
        print(f"trace ({len(tracer.records())} spans) written to {args.trace}")
    if args.chrome_trace:
        tracer.export_chrome_trace(args.chrome_trace)
        print(f"chrome trace written to {args.chrome_trace}")


def _add_admin_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("admin endpoint")
    group.add_argument(
        "--admin-port", type=int, default=None, metavar="PORT",
        help="serve /metrics, /healthz and /flightrecorder on this port "
             "(0 picks a free one); off by default",
    )
    group.add_argument(
        "--admin-host", default="127.0.0.1",
        help="admin endpoint bind address (default: loopback only)",
    )
    group.add_argument(
        "--hold-s", type=float, default=0.0, metavar="SECONDS",
        help="keep the process (and admin endpoint) alive this long "
             "after the replay finishes — for probing /healthz",
    )


def _admin_requested(args: argparse.Namespace) -> bool:
    return getattr(args, "admin_port", None) is not None


def _start_admin(
    args: argparse.Namespace, store: "repro.ModelStore"
) -> Optional[Tuple["HealthMonitor", "AdminServer"]]:
    """Launch the health sampler + admin endpoint when requested."""
    if not _admin_requested(args):
        return None
    from repro.obs import health as obs_health

    if not obs.get_metrics().enabled:
        # The endpoint serves the live registry; the dashboard is empty
        # without it, so opting into --admin-port opts into telemetry.
        obs.configure(metrics=True, tracing=True)
    monitor = obs_health.HealthMonitor(interval_s=1.0)
    monitor.set_info("store", store.health_info)
    monitor.set_info("uptime_seconds", lambda: store.uptime_seconds)
    monitor.set_info("store_version", lambda: store.version)
    obs_health.install(monitor)
    monitor.start()
    server = obs_health.AdminServer(
        monitor, host=args.admin_host, port=args.admin_port
    )
    server.start()
    print(f"admin endpoint on {server.url} (/metrics /healthz /flightrecorder)")
    return (monitor, server)


def _hold_admin(args: argparse.Namespace) -> None:
    """Keep the process alive for --hold-s after the work is done."""
    hold = float(getattr(args, "hold_s", 0.0) or 0.0)
    if hold > 0:
        print(f"holding for {hold:.0f}s (Ctrl-C to exit early)")
        time.sleep(hold)


def _stop_admin(
    admin: Optional[Tuple["HealthMonitor", "AdminServer"]],
) -> None:
    if admin is None:
        return
    from repro.obs import health as obs_health

    monitor, server = admin
    server.close()
    monitor.close()
    obs_health.uninstall()


def cmd_dataset(args: argparse.Namespace) -> int:
    """``dataset`` subcommand."""
    data = _build_dataset(args)
    print(data.summary())
    print(
        f"train: {data.train_history.n_days} days x {data.train_history.n_slots} "
        f"slots ({data.train_history.n_records} records); "
        f"test: {data.test_history.n_days} days"
    )
    if args.save_network:
        repro.network_to_json(data.network, args.save_network)
        print(f"network written to {args.save_network}")
    if args.save_history:
        data.train_history.save(args.save_history)
        print(f"training history written to {args.save_history}")
    return 0


def cmd_fit(args: argparse.Namespace) -> int:
    """``fit`` subcommand."""
    data = _build_dataset(args)
    config = repro.RTFInferenceConfig(init=args.init, seed=args.seed)
    model, diags = repro.fit_rtf(
        data.network, data.train_history, slots=[data.slot], config=config
    )
    diag = diags[data.slot]
    print(
        f"fitted slot {data.slot}: {diag.iterations} iterations, "
        f"converged={diag.converged}, max|grad mu|={diag.final_grad_mu:.4g}"
    )
    if args.output:
        model.save(args.output)
        print(f"model written to {args.output}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """``query`` subcommand."""
    if _obs_requested(args):
        _enable_obs(args)
    data = _build_dataset(args)
    system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=[data.slot])
    market = repro.CrowdMarket(
        data.network, data.pool, data.cost_model,
        rng=np.random.default_rng(args.seed),
    )
    truth = repro.truth_oracle_for(data.test_history, args.day, data.slot)
    request = repro.EstimationRequest(
        queried=data.queried,
        slot=data.slot,
        budget=args.budget,
        theta=args.theta,
        selector=args.selector,
        rng=np.random.default_rng(args.seed),
        precision=args.precision or "float64",
        warm_start=not args.no_warm_start,
    )
    result = system.answer_query(request, market=market, truth=truth)
    truths = np.array([truth(q) for q in data.queried])
    mape = repro.mean_absolute_percentage_error(result.estimates_kmh, truths)
    fer = repro.false_estimation_rate(result.estimates_kmh, truths)
    print(
        f"selected {len(result.selection.selected)} roads "
        f"({result.selection.algorithm}), spent {result.budget_spent}/{args.budget}"
    )
    print(f"GSP sweeps: {result.gsp.sweeps} (converged={result.gsp.converged})")
    print(f"quality over R^q: MAPE {mape:.4f}, FER {fer:.4f}")
    if args.verbose:
        print("\nroad      estimate   truth")
        for road, estimate in zip(data.queried, result.estimates_kmh):
            print(f"r{road:<8} {estimate:7.1f}   {truth(road):7.1f}")
    if _obs_requested(args):
        _export_obs(args)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``stats`` subcommand: instrumented end-to-end run + telemetry dump.

    Runs one small query with metrics and tracing enabled, prints the
    resulting registry in Prometheus text format, and writes whichever
    artifacts were requested.  This is also the CI observability smoke
    surface.
    """
    obs.configure(metrics=True, tracing=True)
    obs.reset()
    data = _build_dataset(args)
    system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=[data.slot])
    market = repro.CrowdMarket(
        data.network, data.pool, data.cost_model,
        rng=np.random.default_rng(args.seed),
    )
    truth = repro.truth_oracle_for(data.test_history, day=0, slot=data.slot)
    result = system.answer_query(
        repro.EstimationRequest(
            queried=data.queried,
            slot=data.slot,
            budget=args.budget,
            selector=args.selector,
            rng=np.random.default_rng(args.seed),
        ),
        market=market,
        truth=truth,
    )
    print(
        f"# instrumented query: selected {len(result.selection.selected)} roads, "
        f"spent {result.budget_spent}/{args.budget}, "
        f"{result.gsp.sweeps} GSP sweeps"
    )
    print(obs.prometheus_text(), end="")
    _export_obs(args)
    return 0


def cmd_refresh(args: argparse.Namespace) -> int:
    """``refresh`` subcommand: replay test days through the model store.

    Fits the offline stage once, then absorbs each test day with
    :meth:`CrowdRTSE.refresh` and answers a query against the refreshed
    snapshot, printing the published store version and the derivation
    counters that show copy-on-write economy (one Γ_R re-derivation per
    refreshed slot, everything else cache hits).
    """
    if _obs_requested(args):
        _enable_obs(args)
    data = _build_dataset(args)
    system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=[data.slot])
    local = data.test_history.local_slot(data.slot)
    n_days = args.days if args.days is not None else data.test_history.n_days
    n_days = min(n_days, data.test_history.n_days)
    print(f"store version {system.store.version} (offline fit, slot {data.slot})")
    for day in range(n_days):
        truth = repro.truth_oracle_for(data.test_history, day, data.slot)
        market = repro.CrowdMarket(
            data.network, data.pool, data.cost_model,
            rng=np.random.default_rng(args.seed + day),
        )
        result = system.answer_query(
            repro.EstimationRequest(
                queried=data.queried,
                slot=data.slot,
                budget=args.budget,
                rng=np.random.default_rng(args.seed + day),
            ),
            market=market,
            truth=truth,
        )
        truths = np.array([truth(q) for q in data.queried])
        mape = repro.mean_absolute_percentage_error(result.estimates_kmh, truths)
        snapshot = system.refresh(
            {data.slot: data.test_history.day(day)[local]},
            learning_rate=args.learning_rate,
        )
        print(
            f"day {day}: MAPE {mape:.4f}; refreshed -> version {snapshot.version}"
        )
    stats = system.store.stats
    print(
        f"store: {stats.publishes} publishes, "
        f"{stats.correlation_derivations} Γ_R derivations / "
        f"{stats.correlation_hits} hits, "
        f"{stats.propagation_derivations} propagation derivations / "
        f"{stats.propagation_hits} hits"
    )
    if _obs_requested(args):
        _export_obs(args)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve`` subcommand: workload replay through the QueryService.

    With ``--requests`` the JSON-lines trace is replayed verbatim;
    without it a mixed-slot workload with request duplication is
    synthesized (the shape coalescing is designed for).  Prints the
    admission/degradation counts and latency percentiles.
    """
    from repro import serve as serving

    if _obs_requested(args):
        _enable_obs(args)
    data = _build_dataset(args)

    # Fit a window of slots starting at the dataset's query slot so the
    # workload can mix slots; clamp to what the history actually covers.
    available = data.train_history.global_slots
    slots = [s for s in range(data.slot, data.slot + args.serve_slots) if s in available]
    if not slots:
        slots = [data.slot]
    system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=slots)
    market = repro.CrowdMarket(
        data.network, data.pool, data.cost_model,
        rng=np.random.default_rng(args.seed),
    )

    if args.requests:
        items = serving.load_workload(args.requests)
        trace_slots = {item.slot for item in items}
        unknown = trace_slots - set(slots)
        if unknown:
            raise repro.DatasetError(
                f"trace queries slots {sorted(unknown)} outside the fitted "
                f"window {slots}; raise --serve-slots or fix the trace"
            )
    else:
        items = serving.synthesize_workload(
            slots,
            list(data.queried),
            n_requests=args.n_requests,
            budget=args.budget,
            queried_size=min(8, len(data.queried)),
            duplication=args.duplication,
            deadline_ms=args.deadline_ms,
            seed=args.seed,
        )

    # Non-default backends (the --backend override, the shadow
    # challenger, and anything the trace lines name) are fitted on the
    # same training history and attached before serving starts.
    backends = {args.backend, args.shadow} | {item.backend for item in items}
    for name in sorted(backends - {None, "rtf_gsp"}):
        system.attach_backend(name, history=data.train_history)
        print(f"attached backend {name!r} (store v{system.store.version})")

    # Truth oracles are (day, slot)-specific; cache them so identical
    # requests share one oracle object and stay coalescable.
    oracles = {}

    def bind(item: "repro.EstimationRequest") -> "repro.EstimationRequest":
        day = min(item.day, data.test_history.n_days - 1)
        key = (day, item.slot)
        if key not in oracles:
            oracles[key] = repro.truth_oracle_for(data.test_history, day, item.slot)
        overrides = {"truth": oracles[key]}
        if args.backend != "rtf_gsp":
            overrides["backend"] = args.backend
        if args.precision is not None:
            overrides["precision"] = args.precision
        if args.no_warm_start:
            overrides["warm_start"] = False
        return dataclasses.replace(item, **overrides)

    config = serving.ServeConfig(
        num_workers=args.workers,
        max_queue_depth=args.queue_depth,
        coalesce_window_s=args.coalesce_window_ms / 1e3,
        default_deadline_s=(
            args.deadline_ms / 1e3 if args.deadline_ms is not None else None
        ),
        shadow_backend=args.shadow,
    )
    print(
        f"serving {len(items)} requests over slots {slots} "
        f"({args.workers} workers, queue depth {args.queue_depth}, "
        f"backend {args.backend})"
    )
    admin = _start_admin(args, system.store)
    try:
        with serving.QueryService(system, market=market, config=config) as service:
            report = serving.replay(service, items, bind=bind)
            print(report.format())
            if args.shadow is not None:
                # Shadow scoring trails ticket resolution; only the
                # drain on close() makes the tally final.
                service.close()
                stats = service.shadow_stats
                print(
                    f"shadow[{args.shadow}]: {stats.scored} scored, "
                    f"{stats.errors} errors, "
                    f"mean divergence {stats.mean_divergence_kmh:.2f} km/h"
                )
            _hold_admin(args)
    finally:
        _stop_admin(admin)
    if _obs_requested(args):
        _export_obs(args)
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """``stream`` subcommand: probe-feed replay with continuous refresh.

    Replays the test days as overlapping probe-feed snapshots through
    :class:`~repro.stream.StreamRefresher` (watermark-based slot closes,
    bounded publish batching, backpressure) while a
    :class:`~repro.serve.QueryService` answers queries concurrently from
    pinned snapshots.  Prints per-day merge/publish telemetry and an
    end-of-replay throughput/freshness summary.  ``--feed`` replays a
    saved ``#``-delimited JSONL feed file through the
    :class:`~repro.stream.FeedAdapter` instead of synthesizing one.
    """
    from repro import serve as serving
    from repro import stream as streaming

    if _obs_requested(args):
        _enable_obs(args)
    data = _build_dataset(args)
    available = data.train_history.global_slots
    slots = [
        s for s in range(data.slot, data.slot + args.stream_slots) if s in available
    ]
    if not slots:
        slots = [data.slot]
    system = repro.CrowdRTSE.fit(data.network, data.train_history, slots=slots)
    market = repro.CrowdMarket(
        data.network, data.pool, data.cost_model,
        rng=np.random.default_rng(args.seed),
    )

    adapter = streaming.FeedAdapter(data.network)
    if args.feed:
        day_batches = [adapter.parse_feed_file(args.feed)]
    else:
        n_days = args.days if args.days is not None else data.test_history.n_days
        n_days = max(1, min(n_days, data.test_history.n_days))
        day_batches = [
            streaming.synthesize_day_feed(
                data.test_history,
                day,
                slots=slots,
                coverage=args.coverage,
                seed=args.seed + day,
            )
            for day in range(n_days)
        ]
        if args.save_feed:
            flat = [batch for batches in day_batches for batch in batches]
            streaming.save_feed(flat, args.save_feed)
            print(f"feed ({sum(len(b) for b in flat)} messages) written to {args.save_feed}")

    config = streaming.StreamConfig(
        lateness_s=args.lateness_s, learning_rate=args.learning_rate
    )
    n_batches = sum(len(batches) for batches in day_batches)
    query_step = max(1, n_batches // max(1, args.queries))
    print(
        f"streaming {len(day_batches)} day(s) over slots {slots} "
        f"(lateness {args.lateness_s:.0f}s, eta {args.learning_rate})"
    )

    oracles = {}
    tickets = []
    total_events = 0
    batch_index = 0
    started = time.perf_counter()
    admin = _start_admin(args, system.store)
    with serving.QueryService(
        system, market=market, config=serving.ServeConfig(num_workers=2)
    ) as service:
        with streaming.StreamRefresher(system, config) as refresher:
            for day, batches in enumerate(day_batches):
                seen = (
                    refresher.log.accepted,
                    refresher.log.duplicates,
                    refresher.log.late,
                )
                for batch in batches:
                    if batch_index % query_step == 0 and len(tickets) < args.queries:
                        truth_day = min(day, data.test_history.n_days - 1)
                        if truth_day not in oracles:
                            oracles[truth_day] = repro.truth_oracle_for(
                                data.test_history, truth_day, data.slot
                            )
                        tickets.append(
                            service.submit(
                                repro.EstimationRequest(
                                    queried=tuple(data.queried),
                                    slot=data.slot,
                                    budget=args.budget,
                                    truth=oracles[truth_day],
                                    rng=np.random.default_rng(args.seed + day),
                                )
                            )
                        )
                    refresher.ingest(batch)
                    total_events += len(batch)
                    batch_index += 1
                # End-of-day flush: the feed goes quiet, so publish the
                # trailing open slots instead of waiting for tomorrow's
                # watermark.
                refresher.drain()
                print(
                    f"day {day}: {refresher.log.accepted - seen[0]} accepted, "
                    f"{refresher.log.duplicates - seen[1]} duplicate, "
                    f"{refresher.log.late - seen[2]} late; "
                    f"version {system.store.version}"
                )
            stats = refresher.close()
        served = 0
        for ticket in tickets:
            result = ticket.result(timeout=60.0)
            if np.all(np.isfinite(result.estimates_kmh)):
                served += 1
    elapsed = time.perf_counter() - started
    print(
        f"stream: {total_events} events in {elapsed:.2f}s "
        f"({total_events / max(elapsed, 1e-9):.0f} events/s), "
        f"{adapter.total_dropped} adapter drops"
    )
    print(
        f"refresh: {stats.publishes} publishes ({stats.published_slots} slots), "
        f"final version {system.store.version}, "
        f"max publish lag {stats.max_publish_lag_s:.0f}s (event time), "
        f"{stats.backpressure_waits} backpressure waits"
    )
    print(f"serve: {served}/{len(tickets)} concurrent queries answered")
    try:
        _hold_admin(args)
    finally:
        _stop_admin(admin)
    if _obs_requested(args):
        _export_obs(args)
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """``top`` subcommand: live dashboard over a running admin endpoint.

    Point it at a ``repro serve --admin-port N`` / ``repro stream
    --admin-port N`` process; it polls ``/healthz`` and redraws
    throughput, latency percentiles, publish lag, store version and the
    per-SLO burn table.  Ctrl-C exits cleanly.
    """
    from repro.obs.health.top import run_top

    return run_top(
        args.url,
        interval_s=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
    )


#: Experiment registry: name -> module path inside repro.experiments.
EXPERIMENTS = (
    "table2",
    "table3",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "ablations",
    "theta_sweep",
    "query_patterns",
    "scalability",
    "allocation_study",
    "fixed_vs_crowd",
    "noise_sensitivity",
    "daily_refresh",
    "stream_replay",
    "leaderboard",
)


def cmd_experiment(args: argparse.Namespace) -> int:
    """``experiment`` subcommand."""
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.which}")
    if args.scale == "paper":
        module.main()
        return 0
    # Quick scale: call run() explicitly and print with the module's
    # formatter (main() defaults to paper scale).
    scale = ExperimentScale.QUICK
    if args.which == "figure4":
        print(module.format_table(module.run_ocs_runtime(scale)))
        print(module.format_table(module.run_estimator_runtime(scale)))
    elif args.which == "ablations":
        print(module.format_table(module.run_all(scale)))
    else:
        print(module.format_table(module.run(scale)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CrowdRTSE (ICDE 2018) reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_dataset = subparsers.add_parser("dataset", help="build and describe a dataset")
    _add_dataset_args(p_dataset)
    p_dataset.add_argument("--save-network", help="write the network JSON here")
    p_dataset.add_argument("--save-history", help="write the training history .npz here")
    p_dataset.set_defaults(func=cmd_dataset)

    p_fit = subparsers.add_parser("fit", help="run the offline stage")
    _add_dataset_args(p_fit)
    p_fit.add_argument("--init", choices=("empirical", "random"), default="empirical")
    p_fit.add_argument("--output", help="write the fitted RTF model .npz here")
    p_fit.set_defaults(func=cmd_fit)

    p_query = subparsers.add_parser("query", help="answer one realtime query")
    _add_dataset_args(p_query)
    p_query.add_argument("--budget", type=int, default=30, help="crowdsourcing budget K")
    p_query.add_argument("--theta", type=float, default=0.92, help="redundancy bound")
    p_query.add_argument(
        "--selector",
        choices=("hybrid", "ratio", "objective", "random"),
        default="hybrid",
    )
    p_query.add_argument("--day", type=int, default=0, help="test day to query")
    p_query.add_argument("--verbose", action="store_true", help="print per-road rows")
    _add_latency_args(p_query)
    _add_obs_args(p_query)
    p_query.set_defaults(func=cmd_query)

    p_refresh = subparsers.add_parser(
        "refresh", help="replay test days through the versioned model store"
    )
    _add_dataset_args(p_refresh)
    p_refresh.set_defaults(roads=60, queried=10, train_days=8, test_days=3, slots=4)
    p_refresh.add_argument("--budget", type=int, default=20, help="crowdsourcing budget K")
    p_refresh.add_argument(
        "--learning-rate", type=float, default=0.05,
        help="forgetting factor η of the online updater",
    )
    p_refresh.add_argument(
        "--days", type=int, default=None,
        help="number of test days to replay (default: all)",
    )
    _add_obs_args(p_refresh)
    p_refresh.set_defaults(func=cmd_refresh)

    p_exp = subparsers.add_parser("experiment", help="run a paper table/figure")
    p_exp.add_argument("which", choices=EXPERIMENTS)
    p_exp.add_argument("--scale", choices=("paper", "quick"), default="quick")
    p_exp.set_defaults(func=cmd_experiment)

    p_stream = subparsers.add_parser(
        "stream", help="replay a probe feed through the streaming refresher"
    )
    _add_dataset_args(p_stream)
    p_stream.set_defaults(roads=60, queried=10, train_days=8, test_days=3, slots=6)
    p_stream.add_argument(
        "--days", type=int, default=None,
        help="number of test days to stream (default: all)",
    )
    p_stream.add_argument(
        "--stream-slots", type=int, default=3,
        help="how many consecutive slots (from the dataset slot) to fit and stream",
    )
    p_stream.add_argument(
        "--lateness-s", type=float, default=60.0,
        help="event-time grace period before a slot closes (late data beyond "
        "it is counted and dropped)",
    )
    p_stream.add_argument(
        "--learning-rate", type=float, default=0.1,
        help="forgetting factor η of the online updater",
    )
    p_stream.add_argument(
        "--coverage", type=float, default=0.5,
        help="fraction of roads reporting per slot in the synthesized feed",
    )
    p_stream.add_argument(
        "--queries", type=int, default=4,
        help="concurrent QueryService requests submitted during the replay",
    )
    p_stream.add_argument("--budget", type=int, default=15, help="crowdsourcing budget K")
    p_stream.add_argument(
        "--feed", help="replay this #-delimited JSONL feed file instead of synthesizing"
    )
    p_stream.add_argument(
        "--save-feed", help="write the synthesized feed as JSONL here"
    )
    _add_obs_args(p_stream)
    _add_admin_args(p_stream)
    p_stream.set_defaults(func=cmd_stream)

    p_stats = subparsers.add_parser(
        "stats", help="run an instrumented query and dump telemetry"
    )
    _add_dataset_args(p_stats)
    p_stats.set_defaults(roads=60, queried=10, train_days=8, test_days=2, slots=4)
    p_stats.add_argument("--budget", type=int, default=20, help="crowdsourcing budget K")
    p_stats.add_argument(
        "--selector",
        choices=("hybrid", "ratio", "objective", "random"),
        default="hybrid",
    )
    _add_obs_args(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_serve = subparsers.add_parser(
        "serve", help="replay a workload through the concurrent QueryService"
    )
    _add_dataset_args(p_serve)
    p_serve.set_defaults(roads=80, queried=15, train_days=10, test_days=3, slots=6)
    p_serve.add_argument(
        "--requests", help="JSON-lines workload trace to replay (see docs/API.md)"
    )
    p_serve.add_argument(
        "--n-requests", type=int, default=48,
        help="synthesized workload size when --requests is not given",
    )
    p_serve.add_argument(
        "--duplication", type=int, default=4,
        help="requests per unique (slot, queried) pair in the synthesized workload",
    )
    p_serve.add_argument("--budget", type=int, default=15, help="crowdsourcing budget K")
    p_serve.add_argument("--workers", type=int, default=2, help="worker threads")
    p_serve.add_argument(
        "--queue-depth", type=int, default=64,
        help="admission queue bound (beyond it, requests are rejected)",
    )
    p_serve.add_argument(
        "--coalesce-window-ms", type=float, default=0.0,
        help="wait this long after picking up a request to batch same-slot arrivals",
    )
    p_serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline; near-deadline requests degrade to Per",
    )
    p_serve.add_argument(
        "--serve-slots", type=int, default=3,
        help="how many consecutive slots (from the dataset slot) to fit and serve",
    )
    p_serve.add_argument(
        "--backend", default="rtf_gsp",
        help="estimator backend answering the requests (any registered "
        "name: rtf_gsp, per, lasso, grmc, lsmrn, gmrf, ...)",
    )
    p_serve.add_argument(
        "--shadow", default=None, metavar="BACKEND",
        help="score this challenger backend in shadow mode on every "
        "completed request (serve.shadow.* metrics; answers unchanged)",
    )
    _add_latency_args(p_serve)
    _add_obs_args(p_serve)
    _add_admin_args(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_top = subparsers.add_parser(
        "top", help="live health dashboard over a running admin endpoint"
    )
    p_top.add_argument(
        "--url", default="http://127.0.0.1:8787",
        help="base URL of the admin endpoint (repro serve --admin-port ...)",
    )
    p_top.add_argument(
        "--interval", type=float, default=1.0, help="refresh interval in seconds"
    )
    p_top.add_argument(
        "--iterations", type=int, default=None,
        help="render this many frames and exit (default: run until Ctrl-C)",
    )
    p_top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen (for logs/CI)",
    )
    p_top.set_defaults(func=cmd_top)

    return parser


#: Exit codes: success / user error (matches argparse) / internal bug.
EXIT_OK = 0
EXIT_USER_ERROR = 2
EXIT_INTERNAL_ERROR = 70  # BSD sysexits EX_SOFTWARE


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point.

    Every subcommand reports failures through the same exit codes:
    ``ReproError`` means the user asked for something the system cannot
    do (bad trace, invalid config, stale model — exit 2, like argparse's
    own usage errors); anything else escaping is a bug (exit 70).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except repro.ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USER_ERROR
    except KeyboardInterrupt:
        raise
    except Exception:
        import traceback

        traceback.print_exc()
        print(
            "internal error: this is a bug in the reproduction, not your input",
            file=sys.stderr,
        )
        return EXIT_INTERNAL_ERROR


if __name__ == "__main__":
    sys.exit(main())
