"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.

The module also hosts the two pieces of boundary plumbing the public
surface relies on:

* :func:`wrap_internal` — converts stray ``ValueError``/``KeyError``/
  ``IndexError`` escaping an internal stage into :class:`InternalError`,
  so :meth:`CrowdRTSE.answer_query` and :class:`QueryService` only ever
  let :class:`ReproError` subclasses out;
* :func:`warn_deprecated_once` — the once-per-process
  ``DeprecationWarning`` used by every deprecated alias, keyed by a
  stable string so a hot loop touching a legacy attribute does not spam
  one warning per call.
"""

from __future__ import annotations

import contextlib
import threading
import warnings
from typing import Iterator, Optional, Set, Type


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetworkError(ReproError):
    """Raised when a traffic network is malformed or a road is unknown."""


class RoadNotFoundError(NetworkError):
    """Raised when a road id does not exist in the network."""

    def __init__(self, road_id: object) -> None:
        super().__init__(f"road {road_id!r} is not part of the network")
        self.road_id = road_id


class EdgeNotFoundError(NetworkError):
    """Raised when two roads are not adjacent but an edge was required."""

    def __init__(self, road_a: object, road_b: object) -> None:
        super().__init__(f"roads {road_a!r} and {road_b!r} are not adjacent")
        self.road_a = road_a
        self.road_b = road_b


class ModelError(ReproError):
    """Raised when RTF parameters are inconsistent with the network."""


class NotFittedError(ModelError):
    """Raised when a model is used before its parameters were inferred."""


class ConvergenceError(ModelError):
    """Raised when an iterative solver exhausts its iteration budget.

    Solvers only raise this when asked to (``strict=True``); by default
    they return the best iterate together with diagnostics.
    """


class BackendError(ModelError):
    """Raised by the pluggable estimator-backend layer.

    Covers registry misuse (unknown or duplicate backend names), state
    blobs that do not match the backend that produced them, and backend
    estimates that violate the field contract (wrong shape, non-finite
    speeds).
    """


class SelectionError(ReproError):
    """Raised when an OCS instance is infeasible or malformed."""


class BudgetError(SelectionError):
    """Raised when a budget is non-positive or a cost vector is invalid."""


class CrowdError(ReproError):
    """Raised by the crowdsourcing market simulator."""


class NoWorkersError(CrowdError):
    """Raised when a probe targets a road with no available workers."""


class DatasetError(ReproError):
    """Raised when a dataset specification is invalid."""


class ExperimentError(ReproError):
    """Raised when an experiment configuration is invalid."""


class ServeError(ReproError):
    """Raised by the concurrent serving layer (:mod:`repro.serve`)."""


class OverloadedError(ServeError):
    """Raised when the admission queue is full (backpressure).

    Carries the observed depth and the configured bound so callers can
    implement retry/shedding policies without parsing the message.
    """

    def __init__(self, queue_depth: int, max_queue_depth: int) -> None:
        super().__init__(
            f"admission queue is full ({queue_depth}/{max_queue_depth} requests "
            f"pending); retry later or raise ServeConfig.max_queue_depth"
        )
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth


class QueryTimeoutError(ServeError):
    """Raised when a per-request deadline expires mid-pipeline.

    ``stage`` names where the deadline was detected (``"queue"``,
    ``"ocs"``, ``"probe"``, ``"gsp"``); ``elapsed_seconds`` is how long
    the request had been running at that point.
    """

    def __init__(self, stage: str, elapsed_seconds: float,
                 deadline_seconds: float) -> None:
        super().__init__(
            f"deadline of {deadline_seconds:.3f}s expired at stage "
            f"{stage!r} after {elapsed_seconds:.3f}s"
        )
        self.stage = stage
        self.elapsed_seconds = elapsed_seconds
        self.deadline_seconds = deadline_seconds


class InternalError(ReproError):
    """A non-:class:`ReproError` escaped an internal pipeline stage.

    Raised by :func:`wrap_internal` at the public exception boundary;
    the original exception is chained as ``__cause__`` and kept on
    ``original`` for programmatic access.
    """

    def __init__(self, stage: str, original: BaseException) -> None:
        super().__init__(
            f"internal error in stage {stage!r}: "
            f"{type(original).__name__}: {original}"
        )
        self.stage = stage
        self.original = original


class StreamError(ReproError):
    """Raised by the streaming ingestion layer (:mod:`repro.stream`)."""


class FeedError(StreamError):
    """Raised when a feed snapshot is malformed beyond counted-drop repair.

    Only raised in *strict* adapter mode; the default mode counts the
    offending message under ``stream.dropped{reason}`` and moves on.
    """

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"bad feed message ({reason}): {detail}")
        self.reason = reason
        self.detail = detail


class ObservabilityError(ReproError):
    """Raised when the observability layer is misused.

    Covers invalid metric names/labels, kind conflicts (re-registering a
    counter name as a gauge), label-cardinality explosions, and exported
    artifacts that fail schema validation.
    """


class ConvergenceWarning(RuntimeWarning):
    """Warned when a non-strict iterative solver exhausts its budget.

    Non-strict solvers historically returned their last iterate with a
    ``converged=False`` flag and nothing else; this warning (plus the
    ``*.convergence.failures`` counters) makes that failure visible
    without changing the return contract.  Not a :class:`ReproError`
    subclass — warnings must derive from :class:`Warning`.
    """


# ----------------------------------------------------------------------
# Exception boundary
# ----------------------------------------------------------------------

#: Exception types that indicate an internal bug when they escape a
#: pipeline stage (as opposed to TypeError & friends, which usually mean
#: the *caller* passed garbage and deserve the raw traceback).
_INTERNAL_LEAKS = (ValueError, KeyError, IndexError, ZeroDivisionError)


@contextlib.contextmanager
def wrap_internal(stage: str) -> Iterator[None]:
    """Convert stray internal exceptions into :class:`InternalError`.

    :class:`ReproError` subclasses pass through untouched; the leak
    classes in ``_INTERNAL_LEAKS`` are re-raised as
    :class:`InternalError` with the original chained, so the public
    contract "only :class:`ReproError` escapes" holds at the
    ``answer_query`` / :class:`QueryService` boundary.
    """
    try:
        yield
    except ReproError:
        raise
    except _INTERNAL_LEAKS as exc:
        raise InternalError(stage, exc) from exc


# ----------------------------------------------------------------------
# Deprecation plumbing
# ----------------------------------------------------------------------

_warned_once_lock = threading.Lock()
_warned_once: Set[str] = set()


def warn_deprecated_once(
    key: str, message: str, stacklevel: int = 3
) -> bool:
    """Emit ``DeprecationWarning`` for ``key`` at most once per process.

    Python's default warning filter already dedups by code location, but
    test runners routinely install ``"always"`` filters, which would
    turn a deprecated attribute read inside a serving loop into one
    warning per request.  Deduping by an explicit key keeps the contract
    documented in docs/API.md ("each deprecated surface warns exactly
    once per process") independent of the active filters.

    Returns:
        True when the warning was emitted, False when ``key`` had
        already warned.
    """
    with _warned_once_lock:
        if key in _warned_once:
            return False
        _warned_once.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def warn_once(
    key: str,
    message: str,
    category: Type[Warning] = RuntimeWarning,
    stacklevel: int = 3,
) -> bool:
    """Emit an arbitrary warning for ``key`` at most once per process.

    Same dedup registry and rationale as :func:`warn_deprecated_once`,
    but for operational warnings (e.g. a stream feeding observations for
    slots the model never fitted): the condition usually repeats every
    batch, and one warning is signal where thousands are noise.

    Returns:
        True when the warning was emitted, False when ``key`` had
        already warned.
    """
    with _warned_once_lock:
        if key in _warned_once:
            return False
        _warned_once.add(key)
    warnings.warn(message, category, stacklevel=stacklevel)
    return True


def reset_deprecation_warnings(key: Optional[str] = None) -> None:
    """Forget emitted warn-once keys (one, or all when ``key=None``).

    Covers both :func:`warn_deprecated_once` and :func:`warn_once` keys.
    Testing hook — lets a test assert the once-per-process behaviour
    deterministically regardless of what ran before it.
    """
    with _warned_once_lock:
        if key is None:
            _warned_once.clear()
        else:
            _warned_once.discard(key)
