"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetworkError(ReproError):
    """Raised when a traffic network is malformed or a road is unknown."""


class RoadNotFoundError(NetworkError):
    """Raised when a road id does not exist in the network."""

    def __init__(self, road_id: object) -> None:
        super().__init__(f"road {road_id!r} is not part of the network")
        self.road_id = road_id


class EdgeNotFoundError(NetworkError):
    """Raised when two roads are not adjacent but an edge was required."""

    def __init__(self, road_a: object, road_b: object) -> None:
        super().__init__(f"roads {road_a!r} and {road_b!r} are not adjacent")
        self.road_a = road_a
        self.road_b = road_b


class ModelError(ReproError):
    """Raised when RTF parameters are inconsistent with the network."""


class NotFittedError(ModelError):
    """Raised when a model is used before its parameters were inferred."""


class ConvergenceError(ModelError):
    """Raised when an iterative solver exhausts its iteration budget.

    Solvers only raise this when asked to (``strict=True``); by default
    they return the best iterate together with diagnostics.
    """


class SelectionError(ReproError):
    """Raised when an OCS instance is infeasible or malformed."""


class BudgetError(SelectionError):
    """Raised when a budget is non-positive or a cost vector is invalid."""


class CrowdError(ReproError):
    """Raised by the crowdsourcing market simulator."""


class NoWorkersError(CrowdError):
    """Raised when a probe targets a road with no available workers."""


class DatasetError(ReproError):
    """Raised when a dataset specification is invalid."""


class ExperimentError(ReproError):
    """Raised when an experiment configuration is invalid."""


class ObservabilityError(ReproError):
    """Raised when the observability layer is misused.

    Covers invalid metric names/labels, kind conflicts (re-registering a
    counter name as a gauge), label-cardinality explosions, and exported
    artifacts that fail schema validation.
    """


class ConvergenceWarning(RuntimeWarning):
    """Warned when a non-strict iterative solver exhausts its budget.

    Non-strict solvers historically returned their last iterate with a
    ``converged=False`` flag and nothing else; this warning (plus the
    ``*.convergence.failures`` counters) makes that failure visible
    without changing the return contract.  Not a :class:`ReproError`
    subclass — warnings must derive from :class:`Warning`.
    """
