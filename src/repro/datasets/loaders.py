"""Loading external speed records into :class:`SpeedHistory`.

Users with access to a real feed (e.g. the Hong Kong PSI data the paper
crawled) can bring their own records as CSV and run the full pipeline on
them.  The expected long format is one observation per line::

    road_id,day,slot,speed_kmh
    r17,0,96,43.5

``day`` is a 0-based day index, ``slot`` the global 5-minute slot
(0..287).  The loader validates coverage: every (day, slot, road) cell
in the record's bounding box must be present exactly once (traffic feeds
publish complete snapshots; silent gaps would corrupt the moment
estimates).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import DatasetError
from repro.network.graph import TrafficNetwork
from repro.traffic.history import SpeedHistory
from repro.traffic.profiles import N_SLOTS_PER_DAY

#: Required CSV header columns, in any order.
REQUIRED_COLUMNS = ("road_id", "day", "slot", "speed_kmh")


def history_from_records(
    records: Sequence[Tuple[str, int, int, float]],
    network: Optional[TrafficNetwork] = None,
) -> SpeedHistory:
    """Build a :class:`SpeedHistory` from (road_id, day, slot, speed) rows.

    Args:
        records: Observations; must tile a complete day × slot × road
            box with one observation per cell.
        network: When given, the history's road axis follows the
            network's road order and every network road must be covered.

    Raises:
        DatasetError: On gaps, duplicates, or invalid values.
    """
    if not records:
        raise DatasetError("no records supplied")
    road_ids: List[str]
    if network is not None:
        road_ids = list(network.road_ids)
    else:
        road_ids = sorted({road for road, _, _, _ in records})
    road_pos = {road: k for k, road in enumerate(road_ids)}

    days = sorted({day for _, day, _, _ in records})
    slots = sorted({slot for _, _, slot, _ in records})
    if days != list(range(len(days))):
        raise DatasetError(f"day indices must be 0..{len(days) - 1}, got {days[:5]}...")
    if slots != list(range(slots[0], slots[0] + len(slots))):
        raise DatasetError("slots must form one contiguous window")
    if slots[0] < 0 or slots[-1] >= N_SLOTS_PER_DAY:
        raise DatasetError(f"slots must lie in 0..{N_SLOTS_PER_DAY - 1}")

    shape = (len(days), len(slots), len(road_ids))
    speeds = np.full(shape, np.nan, dtype=np.float64)
    slot_offset = slots[0]
    for road, day, slot, value in records:
        if road not in road_pos:
            raise DatasetError(f"record for unknown road {road!r}")
        if value <= 0 or not np.isfinite(value):
            raise DatasetError(
                f"invalid speed {value} for road {road!r} day {day} slot {slot}"
            )
        d, s, r = day, slot - slot_offset, road_pos[road]
        if not np.isnan(speeds[d, s, r]):
            raise DatasetError(
                f"duplicate record for road {road!r} day {day} slot {slot}"
            )
        speeds[d, s, r] = value
    missing = int(np.isnan(speeds).sum())
    if missing:
        raise DatasetError(
            f"{missing} missing cells in the record box "
            f"({shape[0]} days x {shape[1]} slots x {shape[2]} roads)"
        )
    return SpeedHistory(speeds.astype(np.float32), road_ids, slot_offset)


def history_from_csv(
    path: Union[str, Path],
    network: Optional[TrafficNetwork] = None,
) -> SpeedHistory:
    """Load a :class:`SpeedHistory` from a long-format CSV file.

    See the module docstring for the format.

    Raises:
        DatasetError: On a malformed header or rows.
    """
    path = Path(path)
    records: List[Tuple[str, int, int, float]] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not set(REQUIRED_COLUMNS) <= set(
            reader.fieldnames
        ):
            raise DatasetError(
                f"CSV must have columns {REQUIRED_COLUMNS}, got {reader.fieldnames}"
            )
        for line_no, row in enumerate(reader, start=2):
            try:
                records.append(
                    (
                        row["road_id"],
                        int(row["day"]),
                        int(row["slot"]),
                        float(row["speed_kmh"]),
                    )
                )
            except (KeyError, ValueError) as exc:
                raise DatasetError(f"{path}:{line_no}: malformed row ({exc})") from exc
    return history_from_records(records, network)


def history_to_csv(history: SpeedHistory, path: Union[str, Path]) -> None:
    """Write a history in the long CSV format (inverse of the loader)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(REQUIRED_COLUMNS)
        values = history.values
        for day in range(history.n_days):
            for local_slot in range(history.n_slots):
                global_slot = history.slot_offset + local_slot
                for r, road in enumerate(history.road_ids):
                    writer.writerow(
                        [road, day, global_slot, f"{float(values[day, local_slot, r]):.3f}"]
                    )
