"""Benchmark datasets (paper §VII-A, Table II).

* :func:`build_semisyn` — the semi-synthesized dataset: a 607-road
  network with workers covering every road (``R^w = R``) and queried
  roads sampled uniformly.
* :func:`build_gmission` — the gMission-like dataset: a 50-road
  connected subcomponent queried in full, with workers on only 30 of
  its roads (``R^w ⊂ R^q``).
"""

from repro.datasets.bundle import Dataset, truth_oracle_for
from repro.datasets.semisyn import SemiSynConfig, build_semisyn
from repro.datasets.gmission import GMissionConfig, build_gmission
from repro.datasets.loaders import (
    history_from_csv,
    history_from_records,
    history_to_csv,
)

__all__ = [
    "history_from_csv",
    "history_from_records",
    "history_to_csv",
    "Dataset",
    "truth_oracle_for",
    "SemiSynConfig",
    "build_semisyn",
    "GMissionConfig",
    "build_gmission",
]
