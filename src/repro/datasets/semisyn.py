"""The semi-synthesized dataset (paper §VII-A, Table II, first row).

Paper setting: the Hong Kong network of 607 monitored roads; queried
roads drawn uniformly (|R^q| ∈ {33, 51}); workers cover all roads
(``R^w = R``); costs uniform in C2 = 1–5 or C1 = 1–10; budgets
K ∈ {30, 60, 90, 120, 150}; θ ∈ {0.92, 1}.

We substitute the (non-redistributable) Hong Kong topology and crawl
with :func:`~repro.network.generators.ring_radial_network` plus the
generative traffic simulator — see DESIGN.md §1 for why the substitution
preserves the relevant behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.crowd.cost import uniform_random_costs
from repro.crowd.workers import WorkerPool
from repro.datasets.bundle import Dataset
from repro.network.generators import ring_radial_network
from repro.traffic.incidents import IncidentModel
from repro.traffic.profiles import random_profiles, slot_of_time
from repro.traffic.simulator import SimulationConfig, TrafficSimulator


@dataclass(frozen=True)
class SemiSynConfig:
    """Construction knobs of the semi-synthesized dataset.

    Defaults match the paper's Table II row; shrink ``n_roads`` /
    ``n_train_days`` for fast unit tests.

    Attributes:
        n_roads: Network size (paper: 607).
        n_queried: |R^q| (paper tests 33 and 51).
        cost_low / cost_high: Uniform cost range (C2 = 1–5, C1 = 1–10).
        theta: Redundancy threshold (paper reports θ = 0.92).
        budgets: The K sweep.
        n_train_days / n_test_days: History split.
        slot_start_hour / n_slots: Simulated daily window (the morning
            rush by default — the regime where estimation is hard).
        incident_rate_per_day: Accidental-variance intensity.
        workers_per_road: Workers stationed on each road (must cover the
            max cost so every required answer can be collected).
        seed: Master seed; all sub-seeds derive from it.
    """

    n_roads: int = 607
    n_queried: int = 51
    cost_low: int = 1
    cost_high: int = 10
    theta: float = 0.92
    budgets: Tuple[int, ...] = (30, 60, 90, 120, 150)
    n_train_days: int = 40
    n_test_days: int = 20
    slot_start_hour: int = 7
    n_slots: int = 24
    incident_rate_per_day: float = 2.0
    workers_per_road: int = 10
    seed: int = 2018

    def __post_init__(self) -> None:
        if self.n_queried <= 0 or self.n_queried > self.n_roads:
            raise DatasetError(
                f"n_queried must be in 1..{self.n_roads}, got {self.n_queried}"
            )
        if not self.budgets:
            raise DatasetError("budgets must not be empty")
        if self.n_train_days < 2 or self.n_test_days < 1:
            raise DatasetError("need >= 2 training and >= 1 testing days")
        if self.workers_per_road < self.cost_high:
            raise DatasetError(
                "workers_per_road must cover cost_high so every required "
                "answer can be collected"
            )


def build_semisyn(config: Optional[SemiSynConfig] = None) -> Dataset:
    """Build the semi-synthesized dataset.

    Deterministic given ``config.seed``.
    """
    cfg = config or SemiSynConfig()
    rng = np.random.default_rng(cfg.seed)

    network = ring_radial_network(cfg.n_roads, seed=cfg.seed)
    profiles = random_profiles(network, seed=cfg.seed + 1)

    incident_model = IncidentModel(network, rate_per_day=cfg.incident_rate_per_day)
    sim_config = SimulationConfig(
        n_days=cfg.n_train_days + cfg.n_test_days,
        slot_start=slot_of_time(cfg.slot_start_hour),
        n_slots=cfg.n_slots,
        seed=cfg.seed + 2,
    )
    simulator = TrafficSimulator(network, profiles, sim_config, incident_model)
    history = simulator.simulate()
    train, test = history.split_days(cfg.n_train_days)

    queried = tuple(
        sorted(int(r) for r in rng.choice(network.n_roads, cfg.n_queried, replace=False))
    )
    worker_roads = tuple(range(network.n_roads))  # R^w = R
    pool = WorkerPool.cover_all_roads(
        network, workers_per_road=cfg.workers_per_road, seed=cfg.seed + 3
    )
    cost_model = uniform_random_costs(
        network, cfg.cost_low, cfg.cost_high, seed=cfg.seed + 4
    )

    # Representative query slot: the middle of the simulated window.
    slot = sim_config.slot_start + cfg.n_slots // 2

    return Dataset(
        name="semisyn",
        network=network,
        profiles=tuple(profiles),
        train_history=train,
        test_history=test,
        queried=queried,
        worker_roads=worker_roads,
        pool=pool,
        cost_model=cost_model,
        theta=cfg.theta,
        budgets=cfg.budgets,
        slot=slot,
    )
