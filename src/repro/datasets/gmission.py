"""The gMission-like dataset (paper §VII-A, Table II, second row).

Paper setting: a mutually connected 50-road subcomponent is queried in
full; workers travel along those roads, so ``R^w ⊂ R^q`` with
|R^w| = 30; costs uniform in 1–10; budgets K ∈ {10..50}; θ = 0.92.

The gMission platform traces are not available offline; we reproduce
the *shape* of the dataset — worker-scarce, query-dense, small connected
instance — with simulated workers whose GPS-speed noise matches what a
phone-derived travel speed would show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.crowd.cost import uniform_random_costs
from repro.crowd.workers import WorkerPool
from repro.datasets.bundle import Dataset
from repro.network.generators import ring_radial_network
from repro.traffic.incidents import IncidentModel
from repro.traffic.profiles import random_profiles, slot_of_time
from repro.traffic.simulator import SimulationConfig, TrafficSimulator


@dataclass(frozen=True)
class GMissionConfig:
    """Construction knobs of the gMission-like dataset.

    Attributes:
        n_component_roads: Size of the connected query component
            (paper: 50; this is the whole tested network).
        n_worker_roads: Roads with workers inside the component
            (paper: 30).
        cost_low / cost_high: Uniform cost range (paper: 1–10).
        theta: Redundancy threshold (paper: 0.92).
        budgets: The K sweep (paper: 10..50).
        n_train_days / n_test_days: History split.
        slot_start_hour / n_slots: Simulated daily window.
        source_network_roads: Size of the city network the component is
            carved from.
        workers_per_road: Workers per worker road.
        seed: Master seed.
    """

    n_component_roads: int = 50
    n_worker_roads: int = 30
    cost_low: int = 1
    cost_high: int = 10
    theta: float = 0.92
    budgets: Tuple[int, ...] = (10, 20, 30, 40, 50)
    n_train_days: int = 40
    n_test_days: int = 20
    slot_start_hour: int = 7
    n_slots: int = 24
    source_network_roads: int = 200
    workers_per_road: int = 10
    seed: int = 2016

    def __post_init__(self) -> None:
        if self.n_worker_roads > self.n_component_roads:
            raise DatasetError("R^w must be a subset of the component (R^q)")
        if self.n_component_roads > self.source_network_roads:
            raise DatasetError("component larger than the source network")
        if self.workers_per_road < self.cost_high:
            raise DatasetError(
                "workers_per_road must cover cost_high so every required "
                "answer can be collected"
            )


def build_gmission(config: Optional[GMissionConfig] = None) -> Dataset:
    """Build the gMission-like dataset.

    Deterministic given ``config.seed``.
    """
    cfg = config or GMissionConfig()
    rng = np.random.default_rng(cfg.seed)

    city = ring_radial_network(cfg.source_network_roads, seed=cfg.seed)
    component = city.connected_subcomponent(cfg.n_component_roads)
    profiles = random_profiles(component, seed=cfg.seed + 1)

    incident_model = IncidentModel(component, rate_per_day=1.0)
    sim_config = SimulationConfig(
        n_days=cfg.n_train_days + cfg.n_test_days,
        slot_start=slot_of_time(cfg.slot_start_hour),
        n_slots=cfg.n_slots,
        seed=cfg.seed + 2,
    )
    simulator = TrafficSimulator(component, profiles, sim_config, incident_model)
    history = simulator.simulate()
    train, test = history.split_days(cfg.n_train_days)

    queried = tuple(range(component.n_roads))  # the whole component is queried
    worker_roads = tuple(
        sorted(
            int(r)
            for r in rng.choice(
                component.n_roads, cfg.n_worker_roads, replace=False
            )
        )
    )
    pool = WorkerPool.on_roads(
        component,
        worker_roads,
        workers_per_road=cfg.workers_per_road,
        seed=cfg.seed + 3,
    )
    cost_model = uniform_random_costs(
        component, cfg.cost_low, cfg.cost_high, seed=cfg.seed + 4
    )

    slot = sim_config.slot_start + cfg.n_slots // 2

    return Dataset(
        name="gmission",
        network=component,
        profiles=tuple(profiles),
        train_history=train,
        test_history=test,
        queried=queried,
        worker_roads=worker_roads,
        pool=pool,
        cost_model=cost_model,
        theta=cfg.theta,
        budgets=cfg.budgets,
        slot=slot,
    )
