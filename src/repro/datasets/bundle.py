"""The dataset bundle shared by all experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple


from repro.errors import DatasetError
from repro.crowd.cost import CostModel
from repro.crowd.workers import WorkerPool
from repro.network.graph import TrafficNetwork
from repro.traffic.history import SpeedHistory
from repro.traffic.profiles import DailyProfile


@dataclass(frozen=True)
class Dataset:
    """Everything one experiment needs.

    Attributes:
        name: Dataset label ("semisyn", "gmission").
        network: Road graph.
        profiles: Generative per-road daily profiles (ground truth of
            the simulator — useful for validating inference).
        train_history: Offline record used to fit RTF / baselines.
        test_history: Held-out days providing query-time ground truth.
        queried: The queried roads ``R^q``.
        worker_roads: Roads with workers, ``R^w``.
        pool: The worker pool realizing ``worker_roads``.
        cost_model: Per-road answer costs.
        theta: Redundancy threshold used by the paper for this dataset.
        budgets: The budget sweep ``K`` values of the paper.
        slot: Representative global query slot.
    """

    name: str
    network: TrafficNetwork
    profiles: Tuple[DailyProfile, ...]
    train_history: SpeedHistory
    test_history: SpeedHistory
    queried: Tuple[int, ...]
    worker_roads: Tuple[int, ...]
    pool: WorkerPool
    cost_model: CostModel
    theta: float
    budgets: Tuple[int, ...]
    slot: int

    def __post_init__(self) -> None:
        n = self.network.n_roads
        for road in self.queried:
            if not 0 <= road < n:
                raise DatasetError(f"queried road {road} outside the network")
        for road in self.worker_roads:
            if not 0 <= road < n:
                raise DatasetError(f"worker road {road} outside the network")
        if not self.queried:
            raise DatasetError("queried set must not be empty")
        if not self.worker_roads:
            raise DatasetError("worker road set must not be empty")
        if self.slot not in self.train_history.global_slots:
            raise DatasetError(
                f"slot {self.slot} not covered by the training history"
            )

    @property
    def n_roads(self) -> int:
        """Number of roads in the network."""
        return self.network.n_roads

    def summary(self) -> str:
        """One-line Table II style description."""
        lo, hi = self.cost_model.cost_range
        return (
            f"{self.name}: |R|={self.n_roads}, |R^w|={len(self.worker_roads)}, "
            f"|R^q|={len(self.queried)}, cost {lo}~{hi}, "
            f"K {min(self.budgets)}~{max(self.budgets)}, theta={self.theta}"
        )


def truth_oracle_for(
    history: SpeedHistory, day: int, slot: int
) -> Callable[[int], float]:
    """Ground-truth oracle over one (day, slot) of a history.

    The returned callable maps a road index to its true speed; this is
    what the simulated crowd workers measure.
    """
    snapshot = history.slot_samples(slot)[day]

    def oracle(road_index: int) -> float:
        return float(snapshot[road_index])

    return oracle
