"""Routing utilities over the road graph.

Shortest paths with pluggable edge weights.  Used by the trajectory
substrate (workers commute along routes, not random walks), by query
workload generators, and available to downstream users who want travel
time estimates out of a speed field.
"""

from __future__ import annotations

import enum
import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NetworkError, RoadNotFoundError
from repro.network.graph import TrafficNetwork


class RouteWeight(str, enum.Enum):
    """Edge-cost convention for routing.

    Routing happens on the *road* graph (roads are vertices), so the
    cost of traversing an edge ``(i, j)`` is attributed to entering road
    ``j``.
    """

    #: Every transition costs 1 (fewest road segments).
    HOPS = "hops"
    #: Transition into road j costs j's length (shortest distance).
    LENGTH = "length"
    #: Transition into road j costs j's length / speed (fastest route,
    #: needs a speed field).
    TIME = "time"


def _entry_costs(
    network: TrafficNetwork,
    weight: RouteWeight,
    speeds_kmh: Optional[np.ndarray],
) -> np.ndarray:
    if weight is RouteWeight.HOPS:
        return np.ones(network.n_roads)
    lengths = np.array([road.length_km for road in network.roads])
    if weight is RouteWeight.LENGTH:
        return lengths
    if weight is RouteWeight.TIME:
        if speeds_kmh is None:
            raise NetworkError("TIME routing needs a speeds_kmh field")
        speeds = np.asarray(speeds_kmh, dtype=np.float64)
        if speeds.shape != (network.n_roads,):
            raise NetworkError(
                f"speeds_kmh must have shape ({network.n_roads},), got {speeds.shape}"
            )
        if np.any(speeds <= 0):
            raise NetworkError("speeds must be positive for TIME routing")
        return lengths / speeds  # hours
    raise NetworkError(f"unknown weight {weight!r}")  # pragma: no cover


def shortest_route(
    network: TrafficNetwork,
    source: int,
    target: int,
    weight: RouteWeight = RouteWeight.HOPS,
    speeds_kmh: Optional[np.ndarray] = None,
) -> Tuple[List[int], float]:
    """Cheapest road sequence from ``source`` to ``target``.

    Args:
        network: Road graph.
        source: Start road.
        target: Destination road.
        weight: Edge-cost convention.
        speeds_kmh: Current speed field (required for TIME).

    Returns:
        ``(roads, cost)`` — the route including both endpoints, and its
        total cost (0.0 when source == target).

    Raises:
        RoadNotFoundError: On invalid endpoints.
        NetworkError: When no route exists.
    """
    n = network.n_roads
    for node in (source, target):
        if not 0 <= node < n:
            raise RoadNotFoundError(node)
    costs = _entry_costs(network, weight, speeds_kmh)
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    previous: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if u == target:
            break
        for v in network.neighbors(u):
            candidate = d + costs[v]
            if candidate < dist[v]:
                dist[v] = candidate
                previous[v] = u
                heapq.heappush(heap, (candidate, v))
    if not np.isfinite(dist[target]):
        raise NetworkError(
            f"no route between roads {source} and {target}"
        )
    route = [target]
    node = target
    while node != source:
        node = previous[node]
        route.append(node)
    route.reverse()
    return route, float(dist[target])


def travel_time_minutes(
    network: TrafficNetwork,
    route: Sequence[int],
    speeds_kmh: np.ndarray,
    include_first: bool = True,
) -> float:
    """Travel time along an explicit route under a speed field.

    Args:
        network: Road graph.
        route: Consecutive roads (each pair must be adjacent).
        speeds_kmh: Current speed per road.
        include_first: Count the first road's traversal too (default) or
            only the entered roads.

    Returns:
        Minutes to drive the route.
    """
    speeds = np.asarray(speeds_kmh, dtype=np.float64)
    if speeds.shape != (network.n_roads,):
        raise NetworkError(
            f"speeds_kmh must have shape ({network.n_roads},), got {speeds.shape}"
        )
    if np.any(speeds <= 0):
        raise NetworkError("speeds must be positive")
    if not route:
        raise NetworkError("route must not be empty")
    for a, b in zip(route, route[1:]):
        if not network.are_adjacent(int(a), int(b)):
            raise NetworkError(f"roads {a} and {b} are not adjacent on the route")
    roads = list(route) if include_first else list(route)[1:]
    hours = sum(
        network.road_at(int(r)).length_km / speeds[int(r)] for r in roads
    )
    return 60.0 * hours


def k_hop_neighborhood(
    network: TrafficNetwork, centre: int, k: int
) -> List[int]:
    """All roads within ``k`` hops of ``centre`` (including it), sorted."""
    if k < 0:
        raise NetworkError("k must be >= 0")
    distances = network.hop_distances([centre])
    return sorted(
        i for i, d in enumerate(distances) if d is not None and d <= k
    )
