"""Road-network generators.

The paper evaluates on the Hong Kong monitored network (607 roads).
That topology is not redistributable, so this module provides synthetic
generators with comparable structure.  ``ring_radial_network`` is the
default substitute: like an urban network it mixes a few long stable
corridors (highways) with a mesh of short local streets, which gives the
heterogeneous periodicity/correlation structure the algorithms exploit.

All generators return :class:`~repro.network.graph.TrafficNetwork` and
accept an explicit seed where randomness is involved.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import NetworkError
from repro.network.graph import DEFAULT_FREE_FLOW_KMH, Road, RoadKind, TrafficNetwork


def _road(
    index: int,
    kind: RoadKind,
    position: Tuple[float, float],
    length_km: float = 0.5,
) -> Road:
    return Road(
        road_id=f"r{index}",
        kind=kind,
        length_km=length_km,
        free_flow_kmh=DEFAULT_FREE_FLOW_KMH[kind],
        position=position,
    )


def line_network(n_roads: int) -> TrafficNetwork:
    """A path graph of ``n_roads`` segments.

    The smallest interesting topology: propagation distance matters and
    shortest paths are unique, which makes it ideal for unit tests.
    """
    if n_roads <= 0:
        raise NetworkError(f"n_roads must be positive, got {n_roads}")
    roads = [_road(i, RoadKind.ARTERIAL, (float(i), 0.0)) for i in range(n_roads)]
    edges = [(f"r{i}", f"r{i + 1}") for i in range(n_roads - 1)]
    return TrafficNetwork(roads, edges)


def star_network(n_leaves: int) -> TrafficNetwork:
    """One hub road adjacent to ``n_leaves`` leaf roads.

    Exercises the high-degree case in GSP scheduling and OCS redundancy.
    """
    if n_leaves <= 0:
        raise NetworkError(f"n_leaves must be positive, got {n_leaves}")
    roads = [_road(0, RoadKind.ARTERIAL, (0.0, 0.0))]
    edges = []
    for i in range(1, n_leaves + 1):
        angle = 2 * math.pi * (i - 1) / n_leaves
        roads.append(_road(i, RoadKind.LOCAL, (math.cos(angle), math.sin(angle))))
        edges.append(("r0", f"r{i}"))
    return TrafficNetwork(roads, edges)


def grid_network(rows: int, cols: int) -> TrafficNetwork:
    """A ``rows x cols`` lattice of roads.

    Every road is adjacent to its 4-neighbourhood.  Grids are the
    standard stand-in for dense downtown street meshes.
    """
    if rows <= 0 or cols <= 0:
        raise NetworkError(f"grid dimensions must be positive, got {rows}x{cols}")
    roads: List[Road] = []
    for r in range(rows):
        for c in range(cols):
            roads.append(_road(r * cols + c, RoadKind.LOCAL, (float(c), float(r))))
    edges: List[Tuple[str, str]] = []
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if c + 1 < cols:
                edges.append((f"r{i}", f"r{i + 1}"))
            if r + 1 < rows:
                edges.append((f"r{i}", f"r{i + cols}"))
    return TrafficNetwork(roads, edges)


def ring_radial_network(
    n_roads: int = 607,
    n_rings: int = 4,
    n_radials: int = 8,
    seed: Optional[int] = None,
) -> TrafficNetwork:
    """Urban-style network: concentric ring corridors + radial spokes + local infill.

    This is the Hong Kong-network substitute used by the semi-synthetic
    dataset (paper Table II: 607 roads).  Structure:

    * ``n_rings`` concentric rings of HIGHWAY segments (long, stable);
    * ``n_radials`` spokes of ARTERIAL segments connecting the rings to
      the centre;
    * the remaining budget of roads becomes LOCAL streets attached to
      random ring/radial segments, forming short dangling chains — these
      produce the weak-periodicity leaf roads the paper's OCS targets.

    Args:
        n_roads: Total number of road segments to generate.
        n_rings: Number of concentric highway rings.
        n_radials: Number of radial arterial spokes.
        seed: Seed for the placement of local streets.

    Returns:
        A connected :class:`TrafficNetwork` with exactly ``n_roads``
        segments.
    """
    if n_roads < n_rings * n_radials + n_radials:
        raise NetworkError(
            f"n_roads={n_roads} too small for {n_rings} rings x {n_radials} radials"
        )
    rng = np.random.default_rng(seed)
    roads: List[Road] = []
    edges: List[Tuple[str, str]] = []
    counter = 0

    def take(kind: RoadKind, position: Tuple[float, float], length_km: float) -> int:
        nonlocal counter
        roads.append(_road(counter, kind, position, length_km))
        counter += 1
        return counter - 1

    # Ring segments: ring k has n_radials segments between consecutive spokes.
    ring_segments: List[List[int]] = []
    for k in range(n_rings):
        radius = float(k + 1)
        ring: List[int] = []
        for s in range(n_radials):
            angle = 2 * math.pi * (s + 0.5) / n_radials
            pos = (radius * math.cos(angle), radius * math.sin(angle))
            ring.append(take(RoadKind.HIGHWAY, pos, length_km=2.0))
        ring_segments.append(ring)
        for s in range(n_radials):
            edges.append((f"r{ring[s]}", f"r{ring[(s + 1) % n_radials]}"))

    # Radial segments: spoke s has n_rings segments from centre outwards.
    radial_segments: List[List[int]] = []
    for s in range(n_radials):
        angle = 2 * math.pi * s / n_radials
        spoke: List[int] = []
        for k in range(n_rings):
            radius = k + 0.5
            pos = (radius * math.cos(angle), radius * math.sin(angle))
            spoke.append(take(RoadKind.ARTERIAL, pos, length_km=1.0))
        radial_segments.append(spoke)
        for k in range(n_rings - 1):
            edges.append((f"r{spoke[k]}", f"r{spoke[k + 1]}"))
        # Each radial segment crosses the two adjacent ring segments at its level.
        for k in range(n_rings):
            edges.append((f"r{spoke[k]}", f"r{ring_segments[k][s]}"))
            edges.append((f"r{spoke[k]}", f"r{ring_segments[k][(s - 1) % n_radials]}"))

    # Connect spokes at the centre so the core is one crossing.
    for s in range(n_radials):
        nxt = (s + 1) % n_radials
        edges.append((f"r{radial_segments[s][0]}", f"r{radial_segments[nxt][0]}"))

    # Local infill: short chains hanging off random backbone roads.
    backbone = [idx for ring in ring_segments for idx in ring]
    backbone += [idx for spoke in radial_segments for idx in spoke]
    while counter < n_roads:
        anchor = int(rng.choice(backbone))
        chain_len = min(int(rng.integers(1, 4)), n_roads - counter)
        prev = anchor
        ax, ay = roads[anchor].position
        for step in range(chain_len):
            jitter = rng.normal(scale=0.15, size=2)
            pos = (ax + 0.3 * (step + 1) + float(jitter[0]), ay + float(jitter[1]))
            new = take(RoadKind.LOCAL, pos, length_km=0.3)
            edges.append((f"r{prev}", f"r{new}"))
            prev = new

    network = TrafficNetwork(roads, edges)
    if not network.is_connected():
        raise NetworkError("ring_radial_network produced a disconnected graph (bug)")
    return network


def random_geometric_network(
    n_roads: int,
    radius: float = 0.18,
    seed: Optional[int] = None,
    ensure_connected: bool = True,
) -> TrafficNetwork:
    """Roads scattered uniformly in the unit square; adjacency by proximity.

    Args:
        n_roads: Number of road segments.
        radius: Two roads are adjacent when their midpoints are closer
            than this distance.
        seed: RNG seed for placement.
        ensure_connected: When True, chain the connected components
            together through their nearest pair so the result is a
            single component (the paper's algorithms assume queried and
            crowdsourced roads can be joined by paths).
    """
    if n_roads <= 0:
        raise NetworkError(f"n_roads must be positive, got {n_roads}")
    if radius <= 0:
        raise NetworkError(f"radius must be positive, got {radius}")
    rng = np.random.default_rng(seed)
    points = rng.random((n_roads, 2))
    kind_choices = (RoadKind.HIGHWAY, RoadKind.ARTERIAL, RoadKind.LOCAL)
    kind_ids = rng.choice(len(kind_choices), size=n_roads, p=[0.1, 0.3, 0.6])
    roads = [
        _road(
            i,
            kind_choices[int(kind_ids[i])],
            (float(points[i, 0]), float(points[i, 1])),
        )
        for i in range(n_roads)
    ]
    edges: List[Tuple[str, str]] = []
    for i in range(n_roads):
        for j in range(i + 1, n_roads):
            if np.linalg.norm(points[i] - points[j]) < radius:
                edges.append((f"r{i}", f"r{j}"))
    network = TrafficNetwork(roads, edges)
    if ensure_connected and n_roads > 1:
        components = network.connected_components()
        while len(components) > 1:
            base = components[0]
            best: Tuple[float, int, int] = (math.inf, -1, -1)
            for comp in components[1:]:
                for i in base:
                    for j in comp:
                        d = float(np.linalg.norm(points[i] - points[j]))
                        if d < best[0]:
                            best = (d, i, j)
            edges.append((f"r{best[1]}", f"r{best[2]}"))
            network = TrafficNetwork(roads, edges)
            components = network.connected_components()
    return network


def scale_free_network(n_roads: int, attach: int = 2, seed: Optional[int] = None) -> TrafficNetwork:
    """Barabási–Albert style preferential-attachment network.

    Produces the hub-and-spoke degree distribution typical of arterial
    systems; used by robustness tests and the path-weight ablation.

    Args:
        n_roads: Number of road segments (must exceed ``attach``).
        attach: Edges added per new road.
        seed: RNG seed.
    """
    if attach < 1:
        raise NetworkError(f"attach must be >= 1, got {attach}")
    if n_roads <= attach:
        raise NetworkError(f"n_roads must exceed attach={attach}, got {n_roads}")
    rng = np.random.default_rng(seed)
    roads = [_road(i, RoadKind.ARTERIAL, (0.0, 0.0)) for i in range(n_roads)]
    edges: List[Tuple[str, str]] = []
    # Seed clique of (attach + 1) roads.
    targets = list(range(attach + 1))
    for i in range(attach + 1):
        for j in range(i + 1, attach + 1):
            edges.append((f"r{i}", f"r{j}"))
    degree = [attach] * (attach + 1) + [0] * (n_roads - attach - 1)
    for new in range(attach + 1, n_roads):
        weights = np.array(degree[:new], dtype=float)
        weights /= weights.sum()
        chosen = rng.choice(new, size=attach, replace=False, p=weights)
        for target in chosen:
            edges.append((f"r{int(target)}", f"r{new}"))
            degree[int(target)] += 1
            degree[new] += 1
    # Spread positions on a spiral for plotting use only.
    spaced = [
        (math.sqrt(i) * math.cos(2.39996 * i), math.sqrt(i) * math.sin(2.39996 * i))
        for i in range(n_roads)
    ]
    roads = [
        Road(
            road_id=f"r{i}",
            kind=roads[i].kind,
            length_km=roads[i].length_km,
            free_flow_kmh=roads[i].free_flow_kmh,
            position=spaced[i],
        )
        for i in range(n_roads)
    ]
    return TrafficNetwork(roads, edges)
