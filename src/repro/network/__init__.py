"""Traffic-network substrate: road graphs, generators, and serialization.

The paper (§III-A) models the traffic network as an undirected graph
``N(R, E)`` whose vertices are atomic road segments and whose edges are
the adjacency relation between segments.  :class:`TrafficNetwork` is the
immutable in-memory representation used by every other subsystem.
"""

from repro.network.graph import Road, RoadKind, TrafficNetwork
from repro.network.generators import (
    grid_network,
    line_network,
    random_geometric_network,
    ring_radial_network,
    scale_free_network,
    star_network,
)
from repro.network.io import (
    network_from_dict,
    network_from_json,
    network_to_dict,
    network_to_json,
)
from repro.network.routing import (
    RouteWeight,
    k_hop_neighborhood,
    shortest_route,
    travel_time_minutes,
)

__all__ = [
    "RouteWeight",
    "k_hop_neighborhood",
    "shortest_route",
    "travel_time_minutes",
    "Road",
    "RoadKind",
    "TrafficNetwork",
    "grid_network",
    "line_network",
    "random_geometric_network",
    "ring_radial_network",
    "scale_free_network",
    "star_network",
    "network_from_dict",
    "network_from_json",
    "network_to_dict",
    "network_to_json",
]
