"""Serialization of traffic networks to plain dictionaries and JSON.

The on-disk format is intentionally simple so datasets can be inspected
and version-controlled:

.. code-block:: json

    {
      "format": "repro-network/1",
      "roads": [{"id": "r0", "kind": "arterial", "length_km": 0.5,
                 "free_flow_kmh": 60.0, "position": [0.0, 0.0]}],
      "edges": [["r0", "r1"]]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.errors import NetworkError
from repro.network.graph import Road, RoadKind, TrafficNetwork

FORMAT_TAG = "repro-network/1"


def network_to_dict(network: TrafficNetwork) -> Dict[str, Any]:
    """Convert a network to a JSON-serializable dictionary."""
    return {
        "format": FORMAT_TAG,
        "roads": [
            {
                "id": road.road_id,
                "kind": road.kind.value,
                "length_km": road.length_km,
                "free_flow_kmh": road.free_flow_kmh,
                "position": list(road.position),
            }
            for road in network.roads
        ],
        "edges": [
            [network.roads[i].road_id, network.roads[j].road_id]
            for (i, j) in network.edges
        ],
    }


def network_from_dict(payload: Dict[str, Any]) -> TrafficNetwork:
    """Rebuild a network from :func:`network_to_dict` output.

    Raises:
        NetworkError: If the payload is missing fields or has the wrong
            format tag.
    """
    if payload.get("format") != FORMAT_TAG:
        raise NetworkError(
            f"unsupported network format {payload.get('format')!r}; expected {FORMAT_TAG!r}"
        )
    try:
        roads = [
            Road(
                road_id=entry["id"],
                kind=RoadKind(entry["kind"]),
                length_km=float(entry["length_km"]),
                free_flow_kmh=float(entry["free_flow_kmh"]),
                position=(float(entry["position"][0]), float(entry["position"][1])),
            )
            for entry in payload["roads"]
        ]
        edges: List = [(a, b) for a, b in payload["edges"]]
    except (KeyError, IndexError, ValueError, TypeError) as exc:
        raise NetworkError(f"malformed network payload: {exc}") from exc
    return TrafficNetwork(roads, edges)


def network_to_json(network: TrafficNetwork, path: Union[str, Path]) -> None:
    """Write a network to a JSON file."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=2))


def network_from_json(path: Union[str, Path]) -> TrafficNetwork:
    """Read a network from a JSON file written by :func:`network_to_json`."""
    return network_from_dict(json.loads(Path(path).read_text()))
