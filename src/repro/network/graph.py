"""Immutable road-graph model.

Each road segment is an *atomic* unit (paper §III-A): a vertex of the
graph.  Two roads are connected by an edge when they share a crossing.
The class keeps both a human-facing view (string road ids, ``Road``
records) and an algorithm-facing view (dense integer indices, adjacency
lists, an edge index) so the numerical code can work on numpy arrays.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.errors import EdgeNotFoundError, NetworkError, RoadNotFoundError


class RoadKind(str, enum.Enum):
    """Functional class of a road segment.

    The kind drives the traffic simulator's default free-flow speed and
    the crowdsourcing cost model: highway speeds are stable, so crowd
    answers for them are cheap (paper §V-A, "Feasibility").
    """

    HIGHWAY = "highway"
    ARTERIAL = "arterial"
    LOCAL = "local"


#: Default free-flow speed (km/h) per road kind, used when a generator
#: does not specify one explicitly.
DEFAULT_FREE_FLOW_KMH: Mapping[RoadKind, float] = {
    RoadKind.HIGHWAY: 90.0,
    RoadKind.ARTERIAL: 60.0,
    RoadKind.LOCAL: 40.0,
}


@dataclass(frozen=True)
class Road:
    """A single atomic road segment.

    Attributes:
        road_id: Unique string identifier, e.g. ``"r42"``.
        kind: Functional class; see :class:`RoadKind`.
        length_km: Physical segment length in kilometres.
        free_flow_kmh: Uncongested speed in km/h.
        position: ``(x, y)`` coordinate of the segment midpoint, used by
            geometric generators and by plotting helpers.
    """

    road_id: str
    kind: RoadKind = RoadKind.ARTERIAL
    length_km: float = 0.5
    free_flow_kmh: float = 60.0
    position: Tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if not self.road_id:
            raise NetworkError("road_id must be a non-empty string")
        if self.length_km <= 0:
            raise NetworkError(
                f"road {self.road_id!r}: length_km must be positive, got {self.length_km}"
            )
        if self.free_flow_kmh <= 0:
            raise NetworkError(
                f"road {self.road_id!r}: free_flow_kmh must be positive, "
                f"got {self.free_flow_kmh}"
            )

    def with_kind(self, kind: RoadKind) -> "Road":
        """Return a copy of this road with a different functional class."""
        return replace(self, kind=kind, free_flow_kmh=DEFAULT_FREE_FLOW_KMH[kind])


class TrafficNetwork:
    """Undirected graph of road segments.

    The network is immutable after construction.  Roads are addressed
    either by their string id or by their dense integer index
    (``0 .. n_roads - 1``); all numerical code uses indices.

    Args:
        roads: Road records; ids must be unique.
        edges: Pairs of road ids that are adjacent.  Self-loops and
            duplicate pairs are rejected.

    Raises:
        NetworkError: On duplicate road ids, unknown endpoints,
            self-loops, or duplicate edges.
    """

    def __init__(self, roads: Iterable[Road], edges: Iterable[Tuple[str, str]]) -> None:
        self._roads: Tuple[Road, ...] = tuple(roads)
        self._index: Dict[str, int] = {}
        for idx, road in enumerate(self._roads):
            if road.road_id in self._index:
                raise NetworkError(f"duplicate road id {road.road_id!r}")
            self._index[road.road_id] = idx

        n = len(self._roads)
        adjacency: List[List[int]] = [[] for _ in range(n)]
        edge_list: List[Tuple[int, int]] = []
        edge_index: Dict[Tuple[int, int], int] = {}
        for a, b in edges:
            ia = self._require_index(a)
            ib = self._require_index(b)
            if ia == ib:
                raise NetworkError(f"self-loop on road {a!r} is not allowed")
            key = (ia, ib) if ia < ib else (ib, ia)
            if key in edge_index:
                raise NetworkError(f"duplicate edge between {a!r} and {b!r}")
            edge_index[key] = len(edge_list)
            edge_list.append(key)
            adjacency[ia].append(ib)
            adjacency[ib].append(ia)

        self._adjacency: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(neigh)) for neigh in adjacency
        )
        self._edges: Tuple[Tuple[int, int], ...] = tuple(edge_list)
        self._edge_index: Dict[Tuple[int, int], int] = edge_index

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n_roads(self) -> int:
        """Number of road segments (graph vertices)."""
        return len(self._roads)

    @property
    def n_edges(self) -> int:
        """Number of adjacency relations (graph edges)."""
        return len(self._edges)

    @property
    def roads(self) -> Tuple[Road, ...]:
        """All road records, in index order."""
        return self._roads

    @property
    def road_ids(self) -> Tuple[str, ...]:
        """All road ids, in index order."""
        return tuple(road.road_id for road in self._roads)

    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """All edges as ``(i, j)`` index pairs with ``i < j``."""
        return self._edges

    def __len__(self) -> int:
        return self.n_roads

    def __contains__(self, road_id: object) -> bool:
        return road_id in self._index

    def __iter__(self) -> Iterator[Road]:
        return iter(self._roads)

    def __repr__(self) -> str:
        return f"TrafficNetwork(n_roads={self.n_roads}, n_edges={self.n_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficNetwork):
            return NotImplemented
        return self._roads == other._roads and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._roads, self._edges))

    # ------------------------------------------------------------------
    # Index <-> id translation
    # ------------------------------------------------------------------

    def _require_index(self, road_id: str) -> int:
        try:
            return self._index[road_id]
        except KeyError:
            raise RoadNotFoundError(road_id) from None

    def index_of(self, road_id: str) -> int:
        """Return the dense index of ``road_id``.

        Raises:
            RoadNotFoundError: If the id is unknown.
        """
        return self._require_index(road_id)

    def indices_of(self, road_ids: Iterable[str]) -> List[int]:
        """Map a collection of road ids to indices, preserving order."""
        return [self._require_index(rid) for rid in road_ids]

    def road(self, road_id: str) -> Road:
        """Return the :class:`Road` record for ``road_id``."""
        return self._roads[self._require_index(road_id)]

    def road_at(self, index: int) -> Road:
        """Return the :class:`Road` record at dense index ``index``."""
        if not 0 <= index < self.n_roads:
            raise RoadNotFoundError(index)
        return self._roads[index]

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------

    def neighbors(self, index: int) -> Tuple[int, ...]:
        """Indices of roads adjacent to road ``index`` (sorted)."""
        if not 0 <= index < self.n_roads:
            raise RoadNotFoundError(index)
        return self._adjacency[index]

    def degree(self, index: int) -> int:
        """Number of roads adjacent to road ``index``."""
        return len(self.neighbors(index))

    def are_adjacent(self, i: int, j: int) -> bool:
        """True when roads ``i`` and ``j`` share a crossing."""
        key = (i, j) if i < j else (j, i)
        return key in self._edge_index

    def edge_id(self, i: int, j: int) -> int:
        """Dense edge index for the adjacency ``(i, j)``.

        Raises:
            EdgeNotFoundError: If the roads are not adjacent.
        """
        key = (i, j) if i < j else (j, i)
        try:
            return self._edge_index[key]
        except KeyError:
            raise EdgeNotFoundError(i, j) from None

    def bfs_layers(self, sources: Sequence[int]) -> List[List[int]]:
        """Partition non-source roads by hop distance from ``sources``.

        This is the scheduling structure of GSP (paper Alg. 5 line 3):
        layer ``l`` holds the roads whose minimum hop count towards the
        source set is ``l + 1``.  Roads unreachable from any source are
        collected in a final extra layer so the caller never loses them.

        Args:
            sources: Road indices to start from (e.g. the crowdsourced
                roads ``R^c``).

        Returns:
            Layers of road indices; ``layers[0]`` is ``n(R^c)``.
        """
        if not sources:
            unreachable = list(range(self.n_roads))
            return [unreachable] if unreachable else []
        seen: Set[int] = set()
        for s in sources:
            if not 0 <= s < self.n_roads:
                raise RoadNotFoundError(s)
            seen.add(s)
        frontier: List[int] = sorted(seen)
        layers: List[List[int]] = []
        while frontier:
            next_frontier: List[int] = []
            for u in frontier:
                for v in self._adjacency[u]:
                    if v not in seen:
                        seen.add(v)
                        next_frontier.append(v)
            if next_frontier:
                layers.append(sorted(next_frontier))
            frontier = next_frontier
        unreachable = [i for i in range(self.n_roads) if i not in seen]
        if unreachable:
            layers.append(unreachable)
        return layers

    def hop_distances(self, sources: Sequence[int]) -> List[Optional[int]]:
        """Minimum hop count from every road towards ``sources``.

        Source roads have distance 0; unreachable roads get ``None``.
        """
        dist: List[Optional[int]] = [None] * self.n_roads
        queue: deque = deque()
        for s in sources:
            if not 0 <= s < self.n_roads:
                raise RoadNotFoundError(s)
            if dist[s] is None:
                dist[s] = 0
                queue.append(s)
        while queue:
            u = queue.popleft()
            for v in self._adjacency[u]:
                if dist[v] is None:
                    dist[v] = dist[u] + 1  # type: ignore[operator]
                    queue.append(v)
        return dist

    def connected_components(self) -> List[FrozenSet[int]]:
        """Connected components as frozensets of road indices."""
        seen: Set[int] = set()
        components: List[FrozenSet[int]] = []
        for start in range(self.n_roads):
            if start in seen:
                continue
            comp: Set[int] = {start}
            queue: deque = deque([start])
            seen.add(start)
            while queue:
                u = queue.popleft()
                for v in self._adjacency[u]:
                    if v not in seen:
                        seen.add(v)
                        comp.add(v)
                        queue.append(v)
            components.append(frozenset(comp))
        return components

    def is_connected(self) -> bool:
        """True when the network has exactly one connected component."""
        return self.n_roads > 0 and len(self.connected_components()) == 1

    def subnetwork(self, road_ids: Iterable[str]) -> "TrafficNetwork":
        """Induced subgraph on the given road ids.

        The result re-indexes roads densely but keeps their ids, so
        parameter arrays must be re-derived for the subnetwork.
        """
        keep = [self._require_index(rid) for rid in road_ids]
        keep_set = set(keep)
        if len(keep_set) != len(keep):
            raise NetworkError("duplicate road ids in subnetwork selection")
        roads = [self._roads[i] for i in sorted(keep_set)]
        id_set = {r.road_id for r in roads}
        edges = [
            (self._roads[i].road_id, self._roads[j].road_id)
            for (i, j) in self._edges
            if i in keep_set and j in keep_set
        ]
        sub = TrafficNetwork(roads, edges)
        if not id_set:
            raise NetworkError("subnetwork selection is empty")
        return sub

    def connected_subcomponent(self, size: int, seed_road: Optional[str] = None) -> "TrafficNetwork":
        """A connected induced subgraph with ``size`` roads.

        Grows a BFS ball around ``seed_road`` (or index 0).  Used to
        build the gMission-like dataset (paper §VII-A: "a mutually
        connected subcomponent of R is selected as R^q") and the Fig. 5
        scaling series.

        Raises:
            NetworkError: If the containing component is smaller than
                ``size``.
        """
        if size <= 0:
            raise NetworkError(f"subcomponent size must be positive, got {size}")
        start = self._require_index(seed_road) if seed_road is not None else 0
        order: List[int] = [start]
        seen = {start}
        queue: deque = deque([start])
        while queue and len(order) < size:
            u = queue.popleft()
            for v in self._adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    order.append(v)
                    queue.append(v)
                    if len(order) == size:
                        break
        if len(order) < size:
            raise NetworkError(
                f"connected component around {self._roads[start].road_id!r} has only "
                f"{len(order)} roads, cannot extract {size}"
            )
        return self.subnetwork(self._roads[i].road_id for i in order[:size])

    def to_networkx(self) -> "nx.Graph":
        """Export to a :class:`networkx.Graph` (road ids as node names)."""
        graph = nx.Graph()
        for road in self._roads:
            graph.add_node(
                road.road_id,
                kind=road.kind.value,
                length_km=road.length_km,
                free_flow_kmh=road.free_flow_kmh,
                position=road.position,
            )
        for i, j in self._edges:
            graph.add_edge(self._roads[i].road_id, self._roads[j].road_id)
        return graph
