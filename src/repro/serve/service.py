"""The concurrent serving layer: :class:`QueryService`.

The paper treats each query as an isolated Fig. 1 loop; a deployed
estimator instead faces a *stream* of queries that must be answered
while the model is hot-refreshed underneath (cf. the metropolitan-scale
serving framing of Li et al., arXiv:1810.12295).  :class:`QueryService`
fronts a :class:`~repro.core.pipeline.CrowdRTSE` with the four
properties a serving tier needs:

* **Bounded admission with backpressure** — at most
  ``ServeConfig.max_queue_depth`` requests wait; beyond that
  :meth:`QueryService.submit` raises a typed
  :class:`~repro.errors.OverloadedError` instead of letting latency
  grow without bound.
* **Per-request deadlines** — each request carries a wall-clock budget
  enforced across the whole OCS → probe → GSP span (including queue
  wait).  Expiry either degrades the answer (default) or raises a typed
  :class:`~repro.errors.QueryTimeoutError`.
* **Coalescing** — a worker drains every queued request for the same
  slot into one batch served off **one pinned snapshot**: identical
  requests share a single pipeline execution, and distinct same-slot
  requests share one
  :meth:`~repro.core.gsp.GSPEngine.propagate_batch` call, so the
  engine's cached propagation structures are looked up once per batch
  rather than once per request.
* **Graceful degradation** — when the deadline is (nearly) spent or the
  crowd cannot be probed (budget exhausted, no workers), the request
  falls back to the Per baseline
  (:func:`~repro.baselines.periodic.periodic_field` over the pinned
  snapshot's μ) and the result is flagged ``degraded=True`` with the
  reason, instead of failing the caller.

Workers are plain threads; because every batch pins one
:class:`~repro.core.store.ModelSnapshot` via
:meth:`~repro.core.store.ModelStore.pinned`, a concurrent
:meth:`~repro.core.pipeline.CrowdRTSE.refresh` can never tear a request
across model versions.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import ContextManager, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import (
    BudgetError,
    InternalError,
    NoWorkersError,
    OverloadedError,
    QueryTimeoutError,
    ReproError,
    ServeError,
    warn_deprecated_once,
)
from repro.baselines.periodic import periodic_field
from repro.core.gsp import GSPConfig, GSPResult
from repro.core.pipeline import CrowdRTSE, Deadline, PreparedQuery, QueryResult
from repro.core.request import EstimationRequest
from repro.core.store import ModelSnapshot
from repro.crowd.market import CrowdMarket, TruthOracle
from repro.obs import DEFAULT_SIZE_BUCKETS, DEFAULT_TIME_BUCKETS, get_metrics, get_tracer
from repro.obs import health as obs_health

#: Degradation reasons recorded on :attr:`ServedResult.degraded_reason`
#: and the ``serve.degraded`` counter's ``reason`` label.
DEGRADED_DEADLINE = "deadline"
DEGRADED_BUDGET = "budget"

#: Bucket edges (km/h) of the ``serve.shadow.divergence_kmh`` histogram.
_DIVERGENCE_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0)


@dataclass
class ShadowStats:
    """Running tally of shadow-mode scoring, one per :class:`QueryService`.

    Attributes:
        scored: Challenger estimates that completed.
        errors: Challenger estimates that raised (counted, swallowed).
        divergence_sum_kmh: Sum over scored requests of the mean
            absolute field difference challenger − primary (km/h).
        latency_sum_s: Sum of challenger estimate latencies.
    """

    scored: int = 0
    errors: int = 0
    divergence_sum_kmh: float = 0.0
    latency_sum_s: float = 0.0

    @property
    def mean_divergence_kmh(self) -> float:
        """Mean per-request field divergence (0 when nothing scored)."""
        if self.scored == 0:
            return 0.0
        return self.divergence_sum_kmh / self.scored

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for logs and the admin endpoint."""
        return {
            "scored": float(self.scored),
            "errors": float(self.errors),
            "mean_divergence_kmh": self.mean_divergence_kmh,
            "latency_sum_s": self.latency_sum_s,
        }


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`QueryService`.

    Attributes:
        num_workers: Serving threads.  Each worker serves one coalesced
            batch at a time off its own pinned snapshot.
        max_queue_depth: Admission bound; :meth:`QueryService.submit`
            raises :class:`~repro.errors.OverloadedError` beyond it.
        coalesce_window_s: After dequeuing a request, how long a worker
            lingers for same-slot stragglers before serving the batch.
            0 still coalesces whatever is *already* queued.
        max_coalesce: Largest batch one worker serves at once.
        default_deadline_s: Deadline applied to requests that do not
            carry their own (``None`` → no deadline).
        degrade_on_timeout: When True (default), a deadline expiry
            returns a Per-baseline answer flagged ``degraded=True``;
            when False the request fails with
            :class:`~repro.errors.QueryTimeoutError`.
        degrade_margin_s: Skip the full pipeline and degrade immediately
            when less than this much budget remains at pickup — the
            pipeline would not finish in time anyway.
        serialize_probes: Hold a service-wide lock around OCS + probing
            so a market shared between requests (one RNG, one worker
            pool) is never driven from two threads at once.  GSP — the
            heavy stage — always runs outside the lock.
        gsp_config: Propagation knobs applied to every served query.
        shed_on_failing: Pre-emptive load shedding: when an installed
            :class:`repro.obs.health.HealthMonitor` reports the process
            FAILING (both SLO burn windows violated) and the queue is
            at least half full, :meth:`QueryService.submit` rejects
            with :class:`~repro.errors.OverloadedError` *before* hard
            overload — counted under ``serve.shed``.
        shadow_backend: Challenger estimator backend scored in shadow
            mode: after a request completes on the default ``rtf_gsp``
            path, the worker re-estimates the *same probes* off the
            *same pinned snapshot* with this backend and emits the
            ``serve.shadow.*`` error/latency metrics — the caller's
            answer and latency are untouched (tickets resolve first).
            The backend must be attached to the system's store.
    """

    num_workers: int = 2
    max_queue_depth: int = 64
    coalesce_window_s: float = 0.0
    max_coalesce: int = 16
    default_deadline_s: Optional[float] = None
    degrade_on_timeout: bool = True
    degrade_margin_s: float = 0.0
    serialize_probes: bool = True
    gsp_config: Optional[GSPConfig] = None
    shed_on_failing: bool = True
    shadow_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ServeError("ServeConfig.num_workers must be >= 1")
        if self.max_queue_depth < 1:
            raise ServeError("ServeConfig.max_queue_depth must be >= 1")
        if self.max_coalesce < 1:
            raise ServeError("ServeConfig.max_coalesce must be >= 1")
        if self.coalesce_window_s < 0 or self.degrade_margin_s < 0:
            raise ServeError("serve windows/margins must be >= 0")


@dataclass(frozen=True)
class ServeRequest(EstimationRequest):
    """Deprecated alias of :class:`~repro.core.request.EstimationRequest`.

    Kept as a constructor shim for pre-v2 callers (removal horizon
    v2.0; see the deprecation table in docs/API.md).  Field names and
    order match the canonical type, so positional construction keeps
    working — the one difference is that ``warm_start`` defaults to
    ``False`` here, preserving the bit-exact answers pre-v2 service
    builds produced.  New code constructs
    :class:`~repro.core.request.EstimationRequest` directly.
    """

    warm_start: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        warn_deprecated_once(
            "serve.serve_request",
            "ServeRequest is deprecated and will be removed in v2.0; "
            "construct repro.EstimationRequest instead (note: "
            "EstimationRequest defaults warm_start=True)",
        )


@dataclass(frozen=True)
class ServedResult:
    """What the service hands back for one request.

    Attributes:
        request: The request this answers.
        estimates_kmh: Estimated speed per queried road.
        full_field_kmh: Full per-road field the estimates were sliced
            from (GSP posterior, or the Per field when degraded).
        model_version: Snapshot version the answer was served from.
        degraded: True when the Per fallback answered instead of the
            full OCS → probe → GSP pipeline.
        degraded_reason: Why (``"deadline"`` / ``"budget"``), or None.
        coalesced: True when this request shared another request's
            pipeline execution instead of running its own.
        queue_seconds: Time spent waiting for a worker.
        total_seconds: Admission-to-completion latency.
        result: The underlying :class:`QueryResult` (None when
            degraded — there was no propagation).
    """

    request: EstimationRequest
    estimates_kmh: np.ndarray
    full_field_kmh: np.ndarray
    model_version: int
    degraded: bool = False
    degraded_reason: Optional[str] = None
    coalesced: bool = False
    queue_seconds: float = 0.0
    total_seconds: float = 0.0
    result: Optional[QueryResult] = None


class ServeTicket:
    """Handle for one submitted request (a minimal future).

    Returned by :meth:`QueryService.submit`; :meth:`result` blocks until
    a worker resolves it, re-raising the request's failure if it had
    one.
    """

    __slots__ = (
        "request", "deadline", "enqueued_at", "picked_up_at",
        "_done", "_result", "_error",
    )

    def __init__(
        self, request: EstimationRequest, deadline: Optional[Deadline]
    ) -> None:
        self.request = request
        self.deadline = deadline
        self.enqueued_at = time.perf_counter()
        self.picked_up_at: Optional[float] = None
        self._done = threading.Event()
        self._result: Optional[ServedResult] = None
        self._error: Optional[BaseException] = None

    @property
    def queue_seconds(self) -> float:
        """Time the request waited before a worker picked it up."""
        if self.picked_up_at is None:
            return 0.0
        return self.picked_up_at - self.enqueued_at

    @property
    def done(self) -> bool:
        """Whether the request has been resolved (either way)."""
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> ServedResult:
        """Block for the outcome; raise the request's error if it failed."""
        if not self._done.wait(timeout):
            raise ServeError("timed out waiting for the serve ticket")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _resolve(self, result: ServedResult) -> None:
        self._result = result
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()


class QueryService:
    """Concurrent, deadline-aware, coalescing front of a :class:`CrowdRTSE`.

    Args:
        system: The (fitted) estimator to serve.
        market: Default crowd marketplace for requests that do not carry
            their own.
        truth: Default ground-truth oracle (simulation plumbing).
        config: Serving knobs.
        autostart: Start the worker threads immediately.  Tests pass
            False to fill the queue deterministically and then
            :meth:`start`.

    Use as a context manager (``with QueryService(...) as svc:``) so the
    workers are always joined; :meth:`close` drains the queue first.
    """

    def __init__(
        self,
        system: CrowdRTSE,
        market: Optional[CrowdMarket] = None,
        truth: Optional[TruthOracle] = None,
        config: Optional[ServeConfig] = None,
        autostart: bool = True,
    ) -> None:
        self._system = system
        self._market = market
        self._truth = truth
        self._config = config if config is not None else ServeConfig()
        self._queue: Deque[ServeTicket] = deque()
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._probe_lock = threading.Lock()
        self._closing = False
        self._started = False
        self._workers: List[threading.Thread] = []
        self._shadow_stats = ShadowStats()
        self._shadow_lock = threading.Lock()
        if autostart:
            self.start()

    # -- lifecycle ------------------------------------------------------

    @property
    def config(self) -> ServeConfig:
        """The serving knobs."""
        return self._config

    @property
    def system(self) -> CrowdRTSE:
        """The estimator being served."""
        return self._system

    @property
    def shadow_stats(self) -> ShadowStats:
        """Consistent copy of the shadow-mode tally (all zeros when off)."""
        with self._shadow_lock:
            return replace(self._shadow_stats)

    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        with self._lock:
            if self._started:
                return
            if self._closing:
                raise ServeError("cannot start a closed QueryService")
            self._started = True
            for k in range(self._config.num_workers):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"serve-worker-{k}",
                    daemon=True,
                )
                self._workers.append(thread)
                thread.start()

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting requests and join the workers.

        Args:
            drain: Serve what is already queued before exiting (pending
                tickets fail with :class:`ServeError` when False).
            timeout: Per-thread join bound.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
            if not drain:
                while self._queue:
                    self._queue.popleft()._fail(
                        ServeError("service closed before the request was served")
                    )
                self._set_depth_locked()
            self._work_ready.notify_all()
            started = self._started
        for thread in self._workers:
            thread.join(timeout=timeout)
        if not started:
            # Never-started service: fail anything still queued so no
            # caller blocks forever on a ticket nobody will serve.
            with self._lock:
                while self._queue:
                    self._queue.popleft()._fail(
                        ServeError("service closed before the request was served")
                    )
                self._set_depth_locked()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- admission ------------------------------------------------------

    def submit(self, request: EstimationRequest) -> ServeTicket:
        """Admit one request, or reject it with backpressure.

        Raises:
            OverloadedError: When the admission queue is at capacity,
                or (with ``ServeConfig.shed_on_failing``) when the
                health monitor reports FAILING and the queue is at
                least half full.
            ServeError: When the service is closed.
        """
        metrics = get_metrics()
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self._config.default_deadline_s
        )
        deadline = Deadline.after(deadline_s) if deadline_s is not None else None
        ticket = ServeTicket(request, deadline)
        # The monitor's status() is a lock-free read; consult it before
        # taking the admission lock so shedding never nests locks.
        shedding = self._config.shed_on_failing and self._should_shed()
        with self._lock:
            if self._closing:
                raise ServeError("QueryService is closed")
            if len(self._queue) >= self._config.max_queue_depth:
                if metrics.enabled:
                    metrics.counter("serve.rejected").inc()
                raise OverloadedError(
                    len(self._queue), self._config.max_queue_depth
                )
            if shedding and 2 * len(self._queue) >= self._config.max_queue_depth:
                # Pre-emptive shed: the SLO engine says we are failing,
                # so reject while there is still headroom instead of
                # queueing work we will miss the deadline on anyway.
                if metrics.enabled:
                    metrics.counter("serve.shed").inc()
                raise OverloadedError(
                    len(self._queue), self._config.max_queue_depth
                )
            self._queue.append(ticket)
            self._set_depth_locked()
            if metrics.enabled:
                metrics.counter("serve.admitted").inc()
            self._work_ready.notify()
        return ticket

    def serve(
        self, request: EstimationRequest, timeout: Optional[float] = None
    ) -> ServedResult:
        """Blocking convenience: :meth:`submit` + :meth:`ServeTicket.result`."""
        return self.submit(request).result(timeout)

    @staticmethod
    def _should_shed() -> bool:
        """Whether the installed health monitor reports FAILING."""
        monitor = obs_health.get_monitor()
        return monitor is not None and monitor.should_shed()

    def queue_depth(self) -> int:
        """Requests currently waiting for a worker."""
        with self._lock:
            return len(self._queue)

    def _set_depth_locked(self) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge("serve.queue.depth").set(len(self._queue))

    # -- worker side ----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            try:
                self._serve_batch(batch)
            except BaseException as exc:  # pragma: no cover - last resort
                # A worker must never die with tickets unresolved; route
                # through _fail_all so the error is counted and the
                # flight recorder captures the black box.
                unresolved = [ticket for ticket in batch if not ticket.done]
                if unresolved:
                    self._fail_all(
                        unresolved,
                        exc if isinstance(exc, ReproError)
                        else InternalError("serve", exc),
                    )

    def _next_batch(self) -> Optional[List[ServeTicket]]:
        """Pop a leader plus every coalescable same-slot follower."""
        with self._work_ready:
            while not self._queue:
                if self._closing:
                    return None
                self._work_ready.wait(timeout=0.1)
            leader = self._queue.popleft()
            leader.picked_up_at = time.perf_counter()
            self._set_depth_locked()
        if self._config.coalesce_window_s > 0 and leader.request.coalescable:
            # Linger briefly so near-simultaneous same-slot queries land
            # in this batch instead of the next one.
            time.sleep(self._config.coalesce_window_s)
        batch = [leader]
        if leader.request.coalescable:
            with self._lock:
                kept: Deque[ServeTicket] = deque()
                while self._queue and len(batch) < self._config.max_coalesce:
                    candidate = self._queue.popleft()
                    if (
                        candidate.request.coalescable
                        and candidate.request.slot == leader.request.slot
                    ):
                        candidate.picked_up_at = time.perf_counter()
                        batch.append(candidate)
                    else:
                        kept.append(candidate)
                kept.extend(self._queue)
                self._queue = kept
                self._set_depth_locked()
        return batch

    def _serve_batch(self, batch: List[ServeTicket]) -> None:
        """Serve one same-slot batch off one pinned snapshot."""
        metrics = get_metrics()
        tracer = get_tracer()
        if metrics.enabled:
            metrics.histogram(
                "serve.batch.size", DEFAULT_SIZE_BUCKETS
            ).observe(len(batch))
        store = self._system.store
        with store.pinned() as snapshot:
            with tracer.span(
                "serve.batch",
                size=len(batch),
                slot=int(batch[0].request.slot),
                model_version=snapshot.version,
            ):
                # Identical requests share one pipeline execution.
                buckets: Dict[tuple, List[ServeTicket]] = {}
                for ticket in batch:
                    buckets.setdefault(self._coalesce_key(ticket), []).append(ticket)
                n_shared = len(batch) - len(buckets)
                if n_shared and metrics.enabled:
                    metrics.counter("serve.coalesced").inc(n_shared)
                if len(buckets) == 1:
                    # No cross-request batching needed: the leader runs
                    # the plain pipeline (serve.request nested around
                    # pipeline.answer_query) and every duplicate shares
                    # its answer.
                    for tickets in buckets.values():
                        self._serve_bucket_single(tickets, snapshot)
                else:
                    self._serve_buckets_batched(list(buckets.values()), snapshot)

    @staticmethod
    def _coalesce_key(ticket: ServeTicket) -> tuple:
        request = ticket.request
        return (
            request.slot,
            tuple(int(q) for q in request.queried),
            float(request.budget),
            float(request.theta),
            request.selector,
            request.backend,
            request.precision,
            request.warm_start,
            id(request.market),
            id(request.truth),
            id(request.rng),
        )

    # -- execution paths ------------------------------------------------

    def _serve_bucket_single(
        self, tickets: List[ServeTicket], snapshot: ModelSnapshot
    ) -> None:
        """One unique request (possibly many duplicates): full pipeline."""
        tracer = get_tracer()
        leader = tickets[0]
        request = leader.request
        with tracer.span(
            "serve.request",
            slot=int(request.slot),
            queried=len(request.queried),
            shared_by=len(tickets),
        ):
            if self._should_degrade_now(leader):
                self._finish_timeout(
                    tickets, snapshot, self._queue_timeout(leader)
                )
                return
            try:
                with self._maybe_probe_lock():
                    # The transitive wait is the artifact cache's
                    # single-flight Event: bounded by one derivation on
                    # a thread that never takes the probe lock, and
                    # serialize_probes opts into exactly this hold.
                    result = self._system.answer_query(  # repro: noqa[RA012]
                        request,
                        market=self._market_of(request),
                        truth=self._truth_of(request),
                        gsp_config=self._config.gsp_config,
                        snapshot=snapshot,
                        deadline=leader.deadline,
                    )
            except QueryTimeoutError as exc:
                self._finish_timeout(tickets, snapshot, exc)
                return
            except (BudgetError, NoWorkersError):
                self._finish_degraded(tickets, snapshot, DEGRADED_BUDGET)
                return
            except ReproError as exc:
                self._fail_all(tickets, exc)
                return
            except Exception as exc:
                self._fail_all(tickets, InternalError("serve", exc))
                return
        self._finish_ok(tickets, result, snapshot)

    def _serve_buckets_batched(
        self, buckets: List[List[ServeTicket]], snapshot: ModelSnapshot
    ) -> None:
        """Several distinct same-slot requests: shared GSP batch.

        OCS + probing run per unique request; the propagation stage is
        one :meth:`GSPEngine.propagate_batch` call, so structure lookups
        and schedule compilations are shared across the whole batch.
        """
        tracer = get_tracer()
        ready: List[Tuple[List[ServeTicket], PreparedQuery]] = []
        for tickets in buckets:
            leader = tickets[0]
            request = leader.request
            with tracer.span(
                "serve.request",
                slot=int(request.slot),
                queried=len(request.queried),
                shared_by=len(tickets),
                gsp_batched=True,
            ):
                if self._should_degrade_now(leader):
                    self._finish_timeout(
                        tickets, snapshot, self._queue_timeout(leader)
                    )
                    continue
                try:
                    with self._maybe_probe_lock():
                        # Same single-flight artifact-cache wait as the
                        # single path above; see that justification.
                        prepared = self._system._select_and_probe(  # repro: noqa[RA012]
                            request.queried,
                            request.slot,
                            request.budget,
                            self._market_of(request),
                            self._truth_of(request),
                            request.theta,
                            request.selector,
                            request.rng,
                            True,
                            snapshot,
                            leader.deadline,
                        )
                except QueryTimeoutError as exc:
                    self._finish_timeout(tickets, snapshot, exc)
                    continue
                except (BudgetError, NoWorkersError):
                    self._finish_degraded(tickets, snapshot, DEGRADED_BUDGET)
                    continue
                except ReproError as exc:
                    self._fail_all(tickets, exc)
                    continue
                except Exception as exc:
                    self._fail_all(tickets, InternalError("serve", exc))
                    continue
            if leader.deadline is not None and leader.deadline.expired:
                # Probes landed too late to propagate within budget.
                self._finish_timeout(
                    tickets, snapshot,
                    QueryTimeoutError(
                        "gsp",
                        leader.deadline.budget_seconds - leader.deadline.remaining(),
                        leader.deadline.budget_seconds,
                    ),
                )
                continue
            ready.append((tickets, prepared))
        if not ready:
            return
        # Non-default backends answer bucket-by-bucket off the shared
        # snapshot; only the rtf_gsp buckets share a propagation batch.
        gsp_ready: List[Tuple[List[ServeTicket], PreparedQuery]] = []
        for tickets, prepared in ready:
            leader = tickets[0]
            backend = leader.request.backend
            if backend == "rtf_gsp":
                gsp_ready.append((tickets, prepared))
                continue
            try:
                estimate = self._system.estimate_with_backend(
                    backend,
                    prepared.probes,
                    prepared.slot,
                    snapshot=snapshot,
                    deadline=leader.deadline,
                )
            except QueryTimeoutError as exc:
                self._finish_timeout(tickets, snapshot, exc)
                continue
            except ReproError as exc:
                self._fail_all(tickets, exc)
                continue
            except Exception as exc:
                self._fail_all(tickets, InternalError("serve", exc))
                continue
            self._finish_ok(
                tickets,
                self._system._assemble_backend_result(
                    prepared, estimate.speeds, backend
                ),
                snapshot,
            )
        if not gsp_ready:
            return
        # One propagate_batch call per precision (the kernel dtype is a
        # config-level property, not per-item); within each group every
        # item carries its own warm-start seed.
        by_precision: Dict[str, List[Tuple[List[ServeTicket], PreparedQuery]]] = {}
        for tickets, prepared in gsp_ready:
            by_precision.setdefault(
                tickets[0].request.precision, []
            ).append((tickets, prepared))
        for precision, group in by_precision.items():
            self._propagate_group(group, snapshot, precision)

    def _propagate_group(
        self,
        group: List[Tuple[List[ServeTicket], PreparedQuery]],
        snapshot: ModelSnapshot,
        precision: str,
    ) -> None:
        """Propagate one same-precision group as a single GSP batch."""
        cfg = CrowdRTSE.resolve_gsp_config(self._config.gsp_config, precision)
        items = []
        seeds: List[Optional[np.ndarray]] = []
        keys: List[frozenset] = []
        for tickets, prepared in group:
            request = tickets[0].request
            observed_key = frozenset(prepared.probes)
            seed, _ = self._system._warm_seed(
                snapshot, prepared.slot, observed_key, request.warm_start
            )
            items.append((snapshot.slot(prepared.slot), prepared.probes))
            seeds.append(seed)
            keys.append(observed_key)
        gsp_results: List[GSPResult] = self._system.gsp_engine.propagate_batch(
            items, cfg, initial_fields=seeds
        )
        for (tickets, prepared), observed_key, gsp_result in zip(
            group, keys, gsp_results
        ):
            self._system._store_warm(
                snapshot, prepared.slot, observed_key, gsp_result,
                tickets[0].request.warm_start,
            )
            self._finish_ok(
                tickets,
                self._system._assemble_result(prepared, gsp_result),
                snapshot,
            )

    # -- helpers --------------------------------------------------------

    def _maybe_probe_lock(self) -> ContextManager[object]:
        if self._config.serialize_probes:
            return self._probe_lock
        return _NULL_CONTEXT

    def _market_of(self, request: EstimationRequest) -> CrowdMarket:
        market = request.market if request.market is not None else self._market
        if market is None:
            raise ServeError(
                "request carries no market and the service has no default"
            )
        return market

    def _truth_of(self, request: EstimationRequest) -> TruthOracle:
        truth = request.truth if request.truth is not None else self._truth
        if truth is None:
            raise ServeError(
                "request carries no truth oracle and the service has no default"
            )
        return truth

    def _should_degrade_now(self, ticket: ServeTicket) -> bool:
        if ticket.deadline is None:
            return False
        return ticket.deadline.remaining() <= self._config.degrade_margin_s

    @staticmethod
    def _queue_timeout(ticket: ServeTicket) -> QueryTimeoutError:
        """A timeout detected at pickup (spent waiting in the queue)."""
        deadline = ticket.deadline
        assert deadline is not None
        return QueryTimeoutError(
            "queue",
            deadline.budget_seconds - deadline.remaining(),
            deadline.budget_seconds,
        )

    def _finish_ok(
        self,
        tickets: List[ServeTicket],
        result: QueryResult,
        snapshot: ModelSnapshot,
    ) -> None:
        metrics = get_metrics()
        for k, ticket in enumerate(tickets):
            latency = time.perf_counter() - ticket.enqueued_at
            if metrics.enabled:
                metrics.counter("serve.completed", {"outcome": "ok"}).inc()
                metrics.histogram(
                    "serve.latency_seconds", DEFAULT_TIME_BUCKETS
                ).observe(latency)
            ticket._resolve(
                ServedResult(
                    request=ticket.request,
                    estimates_kmh=result.full_field_kmh[
                        np.asarray(ticket.request.queried, dtype=int)
                    ],
                    full_field_kmh=result.full_field_kmh,
                    model_version=result.model_version,
                    coalesced=k > 0,
                    queue_seconds=ticket.queue_seconds,
                    total_seconds=latency,
                    result=result,
                )
            )
        # Shadow scoring runs strictly after every ticket resolved, so
        # the caller's answer and latency are already final.
        if self._config.shadow_backend is not None:
            self._score_shadow(tickets[0].request, result, snapshot)

    def _finish_timeout(
        self, tickets: List[ServeTicket], snapshot: ModelSnapshot, exc: QueryTimeoutError
    ) -> None:
        if self._config.degrade_on_timeout:
            self._finish_degraded(tickets, snapshot, DEGRADED_DEADLINE)
        else:
            self._fail_all(tickets, exc)

    def _finish_degraded(
        self, tickets: List[ServeTicket], snapshot: ModelSnapshot, reason: str
    ) -> None:
        """Answer from the Per baseline instead of failing the caller."""
        metrics = get_metrics()
        request = tickets[0].request
        try:
            field = periodic_field(snapshot.slot(request.slot))
        except ReproError as exc:
            # Even Per cannot answer (slot never fitted): a real failure.
            self._fail_all(tickets, exc)
            return
        for k, ticket in enumerate(tickets):
            latency = time.perf_counter() - ticket.enqueued_at
            if metrics.enabled:
                metrics.counter("serve.completed", {"outcome": "degraded"}).inc()
                metrics.counter("serve.degraded", {"reason": reason}).inc()
                metrics.histogram(
                    "serve.latency_seconds", DEFAULT_TIME_BUCKETS
                ).observe(latency)
            ticket._resolve(
                ServedResult(
                    request=ticket.request,
                    estimates_kmh=field[
                        np.asarray(ticket.request.queried, dtype=int)
                    ],
                    full_field_kmh=field,
                    model_version=snapshot.version,
                    degraded=True,
                    degraded_reason=reason,
                    coalesced=k > 0,
                    queue_seconds=ticket.queue_seconds,
                    total_seconds=latency,
                )
            )

    def _score_shadow(
        self,
        request: EstimationRequest,
        result: QueryResult,
        snapshot: ModelSnapshot,
    ) -> None:
        """Score the challenger backend against the answer just served.

        Re-estimates from the *same* probes and pinned snapshot, so the
        comparison isolates the estimator (no extra crowd spend).  Any
        challenger failure is counted, never propagated — shadow mode
        must not break serving.
        """
        challenger = self._config.shadow_backend
        if challenger is None or challenger == result.backend:
            return
        metrics = get_metrics()
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span(
            "serve.shadow", backend=challenger, slot=int(request.slot)
        ):
            try:
                estimate = self._system.estimate_with_backend(
                    challenger,
                    result.probes,
                    request.slot,
                    snapshot=snapshot,
                )
            except Exception:
                if metrics.enabled:
                    metrics.counter(
                        "serve.shadow.scored",
                        {"backend": challenger, "outcome": "error"},
                    ).inc()
                with self._shadow_lock:
                    self._shadow_stats.errors += 1
                return
        elapsed = time.perf_counter() - start
        divergence = float(
            np.mean(np.abs(estimate.speeds - result.full_field_kmh))
        )
        if metrics.enabled:
            metrics.counter(
                "serve.shadow.scored",
                {"backend": challenger, "outcome": "ok"},
            ).inc()
            metrics.histogram(
                "serve.shadow.latency_seconds",
                DEFAULT_TIME_BUCKETS,
                {"backend": challenger},
            ).observe(elapsed)
            metrics.histogram(
                "serve.shadow.divergence_kmh",
                _DIVERGENCE_BUCKETS,
                {"backend": challenger},
            ).observe(divergence)
        with self._shadow_lock:
            self._shadow_stats.scored += 1
            self._shadow_stats.latency_sum_s += elapsed
            self._shadow_stats.divergence_sum_kmh += divergence

    def _fail_all(self, tickets: List[ServeTicket], exc: ReproError) -> None:
        metrics = get_metrics()
        for ticket in tickets:
            if metrics.enabled:
                metrics.counter("serve.completed", {"outcome": "error"}).inc()
            ticket._fail(exc)
        if isinstance(exc, InternalError):
            # Black-box the failure: the flight recorder keeps the last
            # N samples/spans/events around this moment (no-op unless a
            # HealthMonitor is installed; called outside any lock).
            obs_health.record_failure("serve", exc)


class _NullContext:
    """``with``-able stand-in when probe serialization is off."""

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CONTEXT = _NullContext()
