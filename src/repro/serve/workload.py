"""Workload traces for the serving layer: load, synthesize, replay.

A workload trace is JSON-lines, one
:class:`~repro.core.request.EstimationRequest` per line::

    {"slot": 93, "queried": [3, 7, 11], "budget": 20}
    {"slot": 94, "queried": [3, 7, 11], "budget": 20, "day": 1,
     "theta": 0.9, "selector": "hybrid", "deadline_s": 0.25,
     "precision": "float32", "warm_start": true}

``repro serve --requests trace.jsonl`` replays such a trace through a
:class:`~repro.serve.service.QueryService` and reports latency
percentiles; without ``--requests`` it synthesizes a mixed-slot workload
with a configurable duplication factor (many users asking about the
same roads in the same slot — exactly what coalescing exploits).

The pre-v2 ``deadline_ms`` key and the :class:`WorkloadItem` type are
deprecated spellings (removal horizon v2.0; docs/API.md).
"""

from __future__ import annotations

import bisect
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import (
    DatasetError,
    ModelError,
    OverloadedError,
    ReproError,
    warn_deprecated_once,
)
from repro.core.request import EstimationRequest
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, bucket_quantile
from repro.serve.service import QueryService

#: Keys a trace line may carry (anything else is rejected loudly).
#: ``deadline_ms`` is the deprecated spelling of ``deadline_s``.
_TRACE_KEYS = {
    "slot", "queried", "budget", "theta", "selector", "deadline_s",
    "deadline_ms", "day", "backend", "precision", "warm_start",
}


@dataclass(frozen=True)
class WorkloadItem:
    """Deprecated pre-v2 trace-line type (one request before binding).

    Traces now load directly as
    :class:`~repro.core.request.EstimationRequest`; this shim remains
    constructible until v2.0 (docs/API.md) and is still accepted by
    :func:`save_workload` and :func:`replay`.
    """

    slot: int
    queried: Tuple[int, ...]
    budget: float
    theta: float = 0.92
    selector: str = "hybrid"
    deadline_ms: Optional[float] = None
    day: int = 0

    def __post_init__(self) -> None:
        warn_deprecated_once(
            "serve.workload_item",
            "WorkloadItem is deprecated and will be removed in v2.0; "
            "construct repro.EstimationRequest instead (deadline_s "
            "replaces deadline_ms)",
        )

    def as_request(self) -> EstimationRequest:
        """The canonical spelling of this trace line."""
        return EstimationRequest(
            queried=self.queried,
            slot=self.slot,
            budget=self.budget,
            theta=self.theta,
            selector=self.selector,
            deadline_s=(
                self.deadline_ms / 1e3 if self.deadline_ms is not None else None
            ),
            day=self.day,
        )


#: A trace entry as accepted by :func:`save_workload` / :func:`replay`.
TraceEntry = Union[EstimationRequest, WorkloadItem]


def _entry_request(entry: TraceEntry) -> EstimationRequest:
    if isinstance(entry, WorkloadItem):
        return entry.as_request()
    return entry


def load_workload(path: Union[str, Path]) -> List[EstimationRequest]:
    """Parse a JSON-lines workload trace.

    Raises:
        DatasetError: On unreadable files, malformed JSON, missing
            required keys, or unknown keys (typos should fail, not
            silently serve a default).
    """
    items: List[EstimationRequest] = []
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise DatasetError(f"cannot read workload trace {path}: {exc}") from exc
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise DatasetError(
                f"{path}:{lineno}: invalid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise DatasetError(f"{path}:{lineno}: each line must be an object")
        unknown = set(record) - _TRACE_KEYS
        if unknown:
            raise DatasetError(
                f"{path}:{lineno}: unknown keys {sorted(unknown)} "
                f"(allowed: {sorted(_TRACE_KEYS)})"
            )
        if record.get("deadline_ms") is not None:
            if record.get("deadline_s") is not None:
                raise DatasetError(
                    f"{path}:{lineno}: carries both deadline_s and the "
                    "deprecated deadline_ms — keep deadline_s"
                )
            warn_deprecated_once(
                "serve.workload_deadline_ms",
                "the deadline_ms trace key is deprecated and will be "
                "removed in v2.0; write deadline_s (seconds) instead",
            )
        try:
            deadline_s: Optional[float] = None
            if record.get("deadline_s") is not None:
                deadline_s = float(record["deadline_s"])
            elif record.get("deadline_ms") is not None:
                deadline_s = float(record["deadline_ms"]) / 1e3
            items.append(
                EstimationRequest(
                    queried=tuple(int(q) for q in record["queried"]),
                    slot=int(record["slot"]),
                    budget=float(record["budget"]),
                    theta=float(record.get("theta", 0.92)),
                    selector=str(record.get("selector", "hybrid")),
                    deadline_s=deadline_s,
                    backend=str(record.get("backend", "rtf_gsp")),
                    precision=str(record.get("precision", "float64")),
                    warm_start=bool(record.get("warm_start", True)),
                    day=int(record.get("day", 0)),
                )
            )
        except (KeyError, TypeError, ValueError, ModelError) as exc:
            raise DatasetError(
                f"{path}:{lineno}: malformed request: {exc}"
            ) from exc
    if not items:
        raise DatasetError(f"workload trace {path} contains no requests")
    return items


def save_workload(items: Sequence[TraceEntry], path: Union[str, Path]) -> None:
    """Write a trace back out as JSON-lines (inverse of :func:`load_workload`).

    Always writes the canonical keys (``deadline_s``, never
    ``deadline_ms``); the latency knobs ``backend``/``precision``/
    ``warm_start`` are written only when they differ from the request
    defaults, so pre-v2 readers can still consume default traces.
    """
    lines = []
    for entry in items:
        item = _entry_request(entry)
        record: Dict[str, object] = {
            "slot": item.slot,
            "queried": list(item.queried),
            "budget": item.budget,
            "theta": item.theta,
            "selector": item.selector,
            "day": item.day,
        }
        if item.deadline_s is not None:
            record["deadline_s"] = item.deadline_s
        if item.backend != "rtf_gsp":
            record["backend"] = item.backend
        if item.precision != "float64":
            record["precision"] = item.precision
        if not item.warm_start:
            record["warm_start"] = item.warm_start
        lines.append(json.dumps(record))
    Path(path).write_text("\n".join(lines) + "\n")


def synthesize_workload(
    slots: Sequence[int],
    road_pool: Sequence[int],
    n_requests: int,
    budget: float,
    queried_size: int = 8,
    duplication: int = 4,
    deadline_ms: Optional[float] = None,
    seed: int = 0,
) -> List[EstimationRequest]:
    """A mixed-slot workload with realistic request duplication.

    ``duplication`` controls how many requests share each unique
    (slot, queried) pair — many users asking about the same roads at the
    same moment — which is the shape coalescing is built for.  Requests
    of different slots are interleaved so consecutive arrivals exercise
    the same-slot grouping rather than a pre-sorted best case.
    """
    if not slots:
        raise DatasetError("synthesize_workload needs at least one slot")
    if queried_size > len(road_pool):
        raise DatasetError(
            f"queried_size {queried_size} exceeds the road pool "
            f"({len(road_pool)} roads)"
        )
    duplication = max(1, int(duplication))
    rng = np.random.default_rng(seed)
    uniques: List[EstimationRequest] = []
    n_unique = max(1, (n_requests + duplication - 1) // duplication)
    for k in range(n_unique):
        queried = tuple(
            int(r)
            for r in rng.choice(len(road_pool), size=queried_size, replace=False)
        )
        uniques.append(
            EstimationRequest(
                queried=tuple(int(road_pool[i]) for i in queried),
                slot=int(slots[k % len(slots)]),
                budget=float(budget),
                deadline_s=(
                    deadline_ms / 1e3 if deadline_ms is not None else None
                ),
            )
        )
    items = [uniques[k % n_unique] for k in range(n_requests)]
    order = rng.permutation(n_requests)
    return [items[i] for i in order]


@dataclass
class ReplayReport:
    """Outcome of replaying one workload through a service.

    Latency percentiles are computed from per-request
    admission-to-completion times; rejected requests (backpressure) are
    counted but have no latency.
    """

    n_requests: int = 0
    n_ok: int = 0
    n_degraded: int = 0
    n_rejected: int = 0
    n_failed: int = 0
    n_coalesced: int = 0
    wall_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    degraded_reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def n_served(self) -> int:
        """Requests that got an answer (full or degraded)."""
        return self.n_ok + self.n_degraded

    @property
    def throughput_qps(self) -> float:
        """Served requests per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_served / self.wall_seconds

    def percentile(self, q: float) -> float:
        """Latency percentile in seconds (0 when nothing was served).

        Uses the same fixed-bucket interpolation
        (:func:`repro.obs.metrics.bucket_quantile` over
        ``DEFAULT_TIME_BUCKETS``) as the SLO engine and ``repro top``,
        so offline replay numbers and live ``/healthz`` numbers are
        directly comparable.
        """
        if not self.latencies:
            return 0.0
        counts = [0.0] * (len(DEFAULT_TIME_BUCKETS) + 1)
        for latency in self.latencies:
            counts[bisect.bisect_left(DEFAULT_TIME_BUCKETS, latency)] += 1.0
        return bucket_quantile(DEFAULT_TIME_BUCKETS, counts, q / 100.0)

    def format(self) -> str:
        """Human-readable summary block (printed by ``repro serve``)."""
        lines = [
            f"requests: {self.n_requests} "
            f"(ok {self.n_ok}, degraded {self.n_degraded}, "
            f"rejected {self.n_rejected}, failed {self.n_failed})",
            f"coalesced: {self.n_coalesced} served from a shared execution",
            f"wall time: {self.wall_seconds:.3f}s "
            f"({self.throughput_qps:.1f} req/s)",
        ]
        if self.latencies:
            lines.append(
                "latency: "
                f"p50 {self.percentile(50) * 1e3:.1f}ms  "
                f"p90 {self.percentile(90) * 1e3:.1f}ms  "
                f"p99 {self.percentile(99) * 1e3:.1f}ms  "
                f"max {max(self.latencies) * 1e3:.1f}ms"
            )
        if self.degraded_reasons:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.degraded_reasons.items())
            )
            lines.append(f"degraded by reason: {reasons}")
        return "\n".join(lines)


def replay(
    service: QueryService,
    items: Sequence[TraceEntry],
    bind: Optional[Callable[[TraceEntry], EstimationRequest]] = None,
) -> ReplayReport:
    """Submit a whole trace and collect every outcome.

    Requests are submitted as fast as admission allows (a rejected
    request is counted, not retried — backpressure is part of the
    contract being measured) and the report aggregates latencies over
    the completed ones.

    Args:
        service: A started :class:`QueryService`.
        items: The trace (:class:`EstimationRequest`, or the deprecated
            :class:`WorkloadItem`).
        bind: Turns a trace entry into the request actually submitted
            (attach per-day markets/truth oracles).  Defaults to the
            entry itself, relying on the service-level market/truth.
    """
    if bind is None:
        def bind(item: TraceEntry) -> EstimationRequest:
            return _entry_request(item)

    report = ReplayReport(n_requests=len(items))
    start = time.perf_counter()
    tickets = []
    for item in items:
        try:
            tickets.append(service.submit(bind(item)))
        except OverloadedError:
            report.n_rejected += 1
    for ticket in tickets:
        try:
            result = ticket.result()
        except ReproError:
            report.n_failed += 1
            continue
        report.latencies.append(result.total_seconds)
        if result.degraded:
            report.n_degraded += 1
            reason = result.degraded_reason or "unknown"
            report.degraded_reasons[reason] = (
                report.degraded_reasons.get(reason, 0) + 1
            )
        else:
            report.n_ok += 1
        if result.coalesced:
            report.n_coalesced += 1
    report.wall_seconds = time.perf_counter() - start
    return report
