"""Serving layer: concurrent query serving on top of :class:`CrowdRTSE`.

``QueryService`` fronts the offline+online pipeline with the concerns a
long-running deployment needs and the core deliberately does not carry:

* **bounded admission** — a fixed-depth queue; beyond it, ``submit``
  raises :class:`~repro.errors.OverloadedError` (backpressure, not
  unbounded latency);
* **deadlines** — each request's remaining budget is enforced across
  the OCS → probe → GSP span and while queued;
* **coalescing** — same-slot requests admitted together are served from
  one pinned snapshot through the batched GSP path, and identical
  requests share a single execution;
* **graceful degradation** — when the deadline is near or the crowd
  budget is exhausted, a request falls back to the Per (periodic-mean)
  baseline and is flagged ``degraded=True`` instead of failing.

See ``docs/API.md`` ("Serving") for the contract and
:mod:`repro.serve.workload` for trace replay tooling.
"""

from repro.core.pipeline import Deadline
from repro.core.request import EstimationRequest
from repro.serve.service import (
    DEGRADED_BUDGET,
    DEGRADED_DEADLINE,
    QueryService,
    ServeConfig,
    ServedResult,
    ServeRequest,
    ServeTicket,
    ShadowStats,
)
from repro.serve.workload import (
    ReplayReport,
    WorkloadItem,
    load_workload,
    replay,
    save_workload,
    synthesize_workload,
)

__all__ = [
    "DEGRADED_BUDGET",
    "DEGRADED_DEADLINE",
    "Deadline",
    "EstimationRequest",
    "QueryService",
    "ReplayReport",
    "ServeConfig",
    "ServeRequest",
    "ServeTicket",
    "ServedResult",
    "ShadowStats",
    "WorkloadItem",
    "load_workload",
    "replay",
    "save_workload",
    "synthesize_workload",
]
