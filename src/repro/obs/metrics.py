"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

The :class:`MetricsRegistry` is the single store the instrumented hot
paths write into.  Design constraints (set by the online loop):

* **Zero hard dependencies** — stdlib only.
* **No-op cheap when disabled** — a disabled registry hands out shared
  no-op instruments without touching any dict or lock, so the cost of an
  instrumentation site is one attribute check and a branch.
* **Thread-safe** — one registry lock guards both series registration
  and value updates (updates are tiny; contention is negligible next to
  the numpy work they measure).
* **Labeled series** — a metric name plus a small label mapping, e.g.
  ``gsp.sweeps{schedule="bfs-colored"}``.  Cardinality is bounded per
  metric name (:attr:`MetricsRegistry.max_series_per_metric`) so a bug
  cannot grow the registry without bound.

Histograms use *fixed* bucket edges chosen at first registration;
observations are recorded per-bucket (``value <= edge`` picks the first
matching edge, Prometheus ``le`` semantics) and cumulated only at
snapshot/export time.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union, cast

from repro.errors import ObservabilityError

#: ``(key, value)`` pairs, sorted by key — the canonical series key.
LabelItems = Tuple[Tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_.]*$")
_LABEL_KEY_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Default latency buckets (seconds) — sub-ms to tens of seconds.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default iteration-count buckets — matches the solvers' sweep caps.
DEFAULT_ITERATION_BUCKETS: Tuple[float, ...] = (
    1, 2, 3, 5, 8, 13, 21, 34, 55, 100, 200, 500,
)

#: Default size buckets (selection sizes, road counts, ...).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000,
)


def bucket_quantile(
    edges: Sequence[float], counts: Sequence[float], q: float
) -> float:
    """Estimate the ``q``-quantile (``q`` in [0, 1]) of a fixed-bucket histogram.

    The shared interpolation used by :meth:`Histogram.quantile`, the SLO
    engine's windowed percentiles, and the serving layer's
    ``ReplayReport``:

    * the target rank ``q * total`` is located in the cumulative counts;
    * within the containing finite bucket the value is linearly
      interpolated between the bucket's lower and upper edge (the first
      bucket's lower edge is 0 for non-negative histograms, Prometheus
      ``histogram_quantile`` convention);
    * observations in the implicit +Inf bucket collapse to the last
      finite edge (the estimate cannot exceed what the buckets resolve);
    * an empty histogram yields ``nan``.

    ``counts`` are per-bucket (non-cumulative); a trailing +Inf entry
    beyond ``len(edges)`` is accepted and optional.
    """
    total = float(sum(counts))
    if total <= 0 or not edges:
        return float("nan")
    q = min(1.0, max(0.0, float(q)))
    rank = q * total
    cumulative = 0.0
    last = len(counts) - 1
    for index, count in enumerate(counts):
        if count <= 0:
            continue
        next_cumulative = cumulative + float(count)
        if rank <= next_cumulative or index == last:
            if index >= len(edges):  # +Inf bucket
                return float(edges[-1])
            hi = float(edges[index])
            lo = min(0.0, hi) if index == 0 else float(edges[index - 1])
            fraction = (rank - cumulative) / float(count)
            fraction = min(1.0, max(0.0, fraction))
            return lo + fraction * (hi - lo)
        cumulative = next_cumulative
    return float(edges[-1])  # pragma: no cover - loop always returns


def _canonical_labels(labels: Optional[Mapping[str, object]]) -> LabelItems:
    """Validate and canonicalize a label mapping into a sorted tuple."""
    if not labels:
        return ()
    items: List[Tuple[str, str]] = []
    for key in sorted(labels):
        if not _LABEL_KEY_RE.match(key):
            raise ObservabilityError(
                f"invalid label key {key!r} (want [a-z][a-z0-9_]*)"
            )
        items.append((key, str(labels[key])))
    return tuple(items)


class _NoopInstrument:
    """Shared do-nothing instrument handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def quantile(self, q: float) -> float:
        """Disabled histograms estimate every quantile as zero."""
        return 0.0

    @property
    def value(self) -> float:
        """Disabled instruments always read as zero."""
        return 0.0


_NOOP = _NoopInstrument()


class Counter:
    """Monotonically increasing value (events, units spent, ...)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelItems, lock: threading.RLock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def _reset(self) -> None:
        # Under the shared registry lock (reentrant): a reset racing a
        # concurrent inc() must not tear the read-modify-write.
        with self._lock:
            self._value = 0.0


class Gauge:
    """Last-write-wins value (budget remaining, last residual, ...)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelItems, lock: threading.RLock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the gauge down by ``amount`` (queue depths, live spans)."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-bucket distribution (latencies, sweep counts, sizes).

    ``edges`` are the upper bounds of the finite buckets; an implicit
    ``+Inf`` bucket catches everything above the last edge.  Counts are
    stored per bucket and cumulated at export.
    """

    __slots__ = ("name", "labels", "edges", "_lock", "_bucket_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        edges: Sequence[float],
        lock: threading.RLock,
    ) -> None:
        self.name = name
        self.labels = labels
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self._lock = lock
        self._bucket_counts = [0] * (len(self.edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.edges, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket (non-cumulative) counts; last entry is +Inf."""
        return tuple(self._bucket_counts)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]) via bucket interpolation.

        Delegates to :func:`bucket_quantile` over a consistent copy of
        the bucket counts; ``nan`` while the histogram is empty.
        """
        with self._lock:
            counts = tuple(self._bucket_counts)
        return bucket_quantile(self.edges, counts, q)

    def _reset(self) -> None:
        # Locked so count == sum(bucket_counts) stays invariant under a
        # reset racing concurrent observe() calls.
        with self._lock:
            self._bucket_counts = [0] * (len(self.edges) + 1)
            self._sum = 0.0
            self._count = 0


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Registry of labeled counters, gauges, and histograms.

    Instruments are created on first use (``registry.counter(name,
    labels)``) and persist until :meth:`reset` zeroes them; held handles
    stay live across resets.  While the registry is *disabled*, the
    accessors return a shared no-op instrument without registering
    anything, so instrumentation sites cost one branch.

    Args:
        enabled: Initial enabled state.
        max_series_per_metric: Cap on distinct label sets per metric
            name; exceeding it raises :class:`ObservabilityError`.
    """

    def __init__(self, enabled: bool = True, max_series_per_metric: int = 256) -> None:
        if max_series_per_metric <= 0:
            raise ObservabilityError("max_series_per_metric must be positive")
        self._enabled = bool(enabled)
        self.max_series_per_metric = max_series_per_metric
        self._lock = threading.RLock()
        self._series: Dict[str, Dict[LabelItems, Instrument]] = {}
        self._kinds: Dict[str, str] = {}
        self._edges: Dict[str, Tuple[float, ...]] = {}

    # -- enabling -------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether updates are recorded."""
        return self._enabled

    def enable(self) -> None:
        """Start recording."""
        self._enabled = True

    def disable(self) -> None:
        """Stop recording (accessors return no-op instruments)."""
        self._enabled = False

    # -- registration ---------------------------------------------------

    def _get_or_create(
        self,
        kind: str,
        name: str,
        labels: Optional[Mapping[str, object]],
        factory: Callable[[LabelItems], Instrument],
    ) -> Instrument:
        if not _NAME_RE.match(name):
            raise ObservabilityError(
                f"invalid metric name {name!r} (want [a-z][a-z0-9_.]*)"
            )
        key = _canonical_labels(labels)
        with self._lock:
            known_kind = self._kinds.get(name)
            if known_kind is None:
                self._kinds[name] = kind
                self._series[name] = {}
            elif known_kind != kind:
                raise ObservabilityError(
                    f"metric {name!r} is a {known_kind}, not a {kind}"
                )
            family = self._series[name]
            instrument = family.get(key)
            if instrument is None:
                if len(family) >= self.max_series_per_metric:
                    raise ObservabilityError(
                        f"metric {name!r} exceeds {self.max_series_per_metric} "
                        f"label sets — label values are too high-cardinality"
                    )
                instrument = factory(key)
                family[key] = instrument
            return instrument

    def counter(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Counter:
        """Get or create a counter series."""
        if not self._enabled:
            return _NOOP  # type: ignore[return-value]
        return cast(
            Counter,
            self._get_or_create(
                "counter", name, labels, lambda key: Counter(name, key, self._lock)
            ),
        )

    def gauge(self, name: str, labels: Optional[Mapping[str, object]] = None) -> Gauge:
        """Get or create a gauge series."""
        if not self._enabled:
            return _NOOP  # type: ignore[return-value]
        return cast(
            Gauge,
            self._get_or_create(
                "gauge", name, labels, lambda key: Gauge(name, key, self._lock)
            ),
        )

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labels: Optional[Mapping[str, object]] = None,
    ) -> Histogram:
        """Get or create a histogram series.

        The bucket edges are fixed by the *first* registration of the
        name; later calls must pass the same edges (or rely on the
        recorded ones implicitly — a mismatch raises).
        """
        if not self._enabled:
            return _NOOP  # type: ignore[return-value]
        edges = tuple(float(e) for e in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        with self._lock:
            known = self._edges.get(name)
            if known is None:
                self._edges[name] = edges
            elif known != edges:
                raise ObservabilityError(
                    f"histogram {name!r} already registered with buckets "
                    f"{known}, got {edges}"
                )
        return cast(
            Histogram,
            self._get_or_create(
                "histogram",
                name,
                labels,
                lambda key: Histogram(name, key, edges, self._lock),
            ),
        )

    # -- reading --------------------------------------------------------

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """A JSON-able copy of every series, deterministically ordered.

        Returns a dict with ``counters``, ``gauges`` and ``histograms``
        lists; histogram entries carry non-cumulative ``counts`` (last
        entry is the +Inf bucket) plus ``sum``/``count``.
        """
        counters: List[Dict[str, object]] = []
        gauges: List[Dict[str, object]] = []
        histograms: List[Dict[str, object]] = []
        with self._lock:
            for name in sorted(self._series):
                kind = self._kinds[name]
                for key in sorted(self._series[name]):
                    instrument = self._series[name][key]
                    entry: Dict[str, object] = {
                        "name": name,
                        "labels": dict(key),
                    }
                    if isinstance(instrument, Histogram):
                        entry["buckets"] = list(instrument.edges)
                        entry["counts"] = list(instrument.bucket_counts())
                        entry["sum"] = instrument.sum
                        entry["count"] = instrument.count
                        histograms.append(entry)
                    elif kind == "counter":
                        entry["value"] = instrument.value
                        counters.append(entry)
                    else:
                        entry["value"] = instrument.value
                        gauges.append(entry)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def reset(self) -> None:
        """Zero every series in place (held handles stay live)."""
        with self._lock:
            for family in self._series.values():
                for instrument in family.values():
                    instrument._reset()

    def clear(self) -> None:
        """Drop every series and registration (mainly for tests)."""
        with self._lock:
            self._series.clear()
            self._kinds.clear()
            self._edges.clear()
