"""Exporters and schema validators for the observability artifacts.

Three interchange formats:

* **Prometheus text** (:func:`to_prometheus_text`) — the standard
  exposition format; counters gain a ``_total`` suffix, histograms
  expand into cumulative ``_bucket{le=...}`` series plus ``_sum`` /
  ``_count``.  :func:`parse_prometheus_text` inverts it so snapshots
  round-trip (modulo the ``.`` → ``_`` name sanitization).
* **Metrics JSON / JSON-lines** (:func:`write_metrics_json`,
  :func:`metrics_to_jsonl` / :func:`metrics_from_jsonl`) — lossless
  snapshot serialization; the ``--metrics-out`` artifact the experiment
  drivers write next to their results so benchmark deltas diff cleanly.
* **Trace exports** — produced by :class:`repro.obs.tracing.Tracer`;
  validated here (:func:`validate_trace_jsonl`,
  :func:`validate_chrome_trace`).

``python -m repro.obs.export --validate-metrics m.json --validate-trace
t.jsonl`` validates artifacts from the command line (the CI smoke job's
second half).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Identifies the metrics snapshot artifact schema.
METRICS_SCHEMA = "repro.metrics/v1"

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^ ]+)$"
)
_PROM_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name for Prometheus (``.`` → ``_``)."""
    return _PROM_NAME_RE.sub("_", name)


def _format_labels(labels: Mapping[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = [(k, str(v)) for k, v in sorted(labels.items())] + list(extra)
    if not items:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in Prometheus text format."""
    lines: List[str] = []
    seen_type: set = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_type:
            seen_type.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        name = prometheus_name(entry["name"]) + "_total"
        type_line(name, "counter")
        lines.append(f"{name}{_format_labels(entry['labels'])} {_format_value(entry['value'])}")
    for entry in snapshot.get("gauges", ()):
        name = prometheus_name(entry["name"])
        type_line(name, "gauge")
        lines.append(f"{name}{_format_labels(entry['labels'])} {_format_value(entry['value'])}")
    for entry in snapshot.get("histograms", ()):
        name = prometheus_name(entry["name"])
        type_line(name, "histogram")
        cumulative = 0
        edges = list(entry["buckets"]) + [float("inf")]
        for edge, count in zip(edges, entry["counts"]):
            cumulative += count
            le = ("le", _format_value(edge))
            lines.append(
                f"{name}_bucket{_format_labels(entry['labels'], (le,))} {cumulative}"
            )
        lines.append(f"{name}_sum{_format_labels(entry['labels'])} {_format_value(entry['sum'])}")
        lines.append(f"{name}_count{_format_labels(entry['labels'])} {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse Prometheus text back into ``{family: {series: value}}``.

    Returns a dict keyed by family name; each family holds ``kind`` and
    ``samples`` — a dict from the rendered ``name{labels}`` series key
    to its float value.  Used by tests to prove snapshots round-trip.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(name, {"kind": kind.strip(), "samples": {}})
            continue
        if line.startswith("#"):
            continue
        match = _PROM_LINE_RE.match(line)
        if not match:
            raise ObservabilityError(f"unparseable Prometheus line: {raw!r}")
        value_text = match.group("value")
        value = float("inf") if value_text == "+Inf" else float(value_text)
        series = match.group("name") + (
            "{" + match.group("labels") + "}" if match.group("labels") else ""
        )
        # Attach the sample to its family (histogram children _bucket /
        # _sum / _count belong to the base family).
        base = match.group("name")
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in families:
                base = base[: -len(suffix)]
                break
        family = families.setdefault(base, {"kind": "untyped", "samples": {}})
        family["samples"][series] = value
    return families


# ----------------------------------------------------------------------
# Metrics JSON / JSON-lines
# ----------------------------------------------------------------------


def metrics_to_jsonl(snapshot: Mapping[str, Any]) -> str:
    """One JSON line per series: ``{"kind", "name", "labels", ...}``."""
    lines: List[str] = []
    for kind in ("counters", "gauges", "histograms"):
        for entry in snapshot.get(kind, ()):
            record = {"kind": kind[:-1], **entry}
            lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_from_jsonl(text: str) -> Dict[str, List[Dict[str, Any]]]:
    """Invert :func:`metrics_to_jsonl` back into a snapshot dict."""
    snapshot: Dict[str, List[Dict[str, Any]]] = {
        "counters": [],
        "gauges": [],
        "histograms": [],
    }
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.pop("kind", None)
        if kind not in ("counter", "gauge", "histogram"):
            raise ObservabilityError(f"bad metrics JSONL record kind: {kind!r}")
        snapshot[kind + "s"].append(record)
    return snapshot


def write_metrics_json(snapshot: Mapping[str, Any], path: str) -> None:
    """Write the ``--metrics-out`` artifact (schema-tagged snapshot)."""
    document = {"schema": METRICS_SCHEMA, "snapshot": snapshot}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_metrics_json(path: str) -> Dict[str, Any]:
    """Load and validate a ``--metrics-out`` artifact; return the snapshot."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("schema") != METRICS_SCHEMA:
        raise ObservabilityError(
            f"{path}: not a {METRICS_SCHEMA} document"
        )
    snapshot = document.get("snapshot")
    validate_metrics_snapshot(snapshot)
    return snapshot


# ----------------------------------------------------------------------
# Validators
# ----------------------------------------------------------------------


def validate_metrics_snapshot(snapshot: Any) -> None:
    """Raise :class:`ObservabilityError` unless ``snapshot`` is well-formed."""
    problems: List[str] = []
    if not isinstance(snapshot, dict):
        raise ObservabilityError("metrics snapshot must be a dict")
    for kind in ("counters", "gauges", "histograms"):
        entries = snapshot.get(kind)
        if not isinstance(entries, list):
            problems.append(f"missing or non-list {kind!r} section")
            continue
        for i, entry in enumerate(entries):
            where = f"{kind}[{i}]"
            if not isinstance(entry, dict):
                problems.append(f"{where}: not a dict")
                continue
            if not isinstance(entry.get("name"), str) or not entry.get("name"):
                problems.append(f"{where}: missing name")
            if not isinstance(entry.get("labels"), dict):
                problems.append(f"{where}: missing labels dict")
            if kind == "histograms":
                buckets = entry.get("buckets")
                counts = entry.get("counts")
                if not isinstance(buckets, list) or not isinstance(counts, list):
                    problems.append(f"{where}: missing buckets/counts")
                elif len(counts) != len(buckets) + 1:
                    problems.append(
                        f"{where}: counts must have len(buckets)+1 entries "
                        f"(+Inf bucket), got {len(counts)} for {len(buckets)}"
                    )
                elif list(buckets) != sorted(buckets):
                    problems.append(f"{where}: buckets not sorted")
                if not isinstance(entry.get("count"), int):
                    problems.append(f"{where}: missing integer count")
                elif isinstance(counts, list) and len(counts) == len(buckets or []) + 1 \
                        and sum(counts) != entry["count"]:
                    problems.append(f"{where}: bucket counts do not sum to count")
            else:
                if not isinstance(entry.get("value"), (int, float)):
                    problems.append(f"{where}: missing numeric value")
    if problems:
        raise ObservabilityError(
            "invalid metrics snapshot: " + "; ".join(problems)
        )


_SPAN_REQUIRED = {
    "type": str,
    "span_id": int,
    "name": str,
    "thread": str,
    "thread_id": int,
    "start_unix": (int, float),
    "wall_s": (int, float),
    "cpu_s": (int, float),
    "attrs": dict,
    "events": list,
}


def validate_trace_jsonl(text: str) -> List[Dict[str, Any]]:
    """Validate a JSON-lines trace export; return the parsed spans.

    Checks field presence/types, that every non-null ``parent_id``
    refers to an exported span, and that events carry a name and a
    non-negative offset.
    """
    spans: List[Dict[str, Any]] = []
    problems: List[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            span = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not JSON ({exc})")
            continue
        for key, kinds in _SPAN_REQUIRED.items():
            if not isinstance(span.get(key), kinds):
                problems.append(f"line {lineno}: bad or missing {key!r}")
        if span.get("type") != "span":
            problems.append(f"line {lineno}: type must be 'span'")
        parent = span.get("parent_id")
        if parent is not None and not isinstance(parent, int):
            problems.append(f"line {lineno}: parent_id must be int or null")
        for j, event in enumerate(span.get("events", [])):
            if not isinstance(event, dict) or not isinstance(event.get("name"), str):
                problems.append(f"line {lineno}: event[{j}] missing name")
            elif not isinstance(event.get("t_offset_s"), (int, float)) or event["t_offset_s"] < 0:
                problems.append(f"line {lineno}: event[{j}] bad t_offset_s")
        spans.append(span)
    ids = {span.get("span_id") for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in ids:
            problems.append(
                f"span {span.get('span_id')}: dangling parent_id {parent}"
            )
    if not spans:
        problems.append("trace contains no spans")
    if problems:
        raise ObservabilityError("invalid trace JSONL: " + "; ".join(problems))
    return spans


def validate_chrome_trace(document: Any) -> List[Dict[str, Any]]:
    """Validate a Chrome trace-event export; return the event list."""
    problems: List[str] = []
    if not isinstance(document, dict) or not isinstance(
        document.get("traceEvents"), list
    ):
        raise ObservabilityError("chrome trace must be {'traceEvents': [...]}")
    events = document["traceEvents"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"traceEvents[{i}]: not a dict")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"traceEvents[{i}]: missing name")
        if event.get("ph") not in ("X", "i", "I", "B", "E"):
            problems.append(f"traceEvents[{i}]: bad ph {event.get('ph')!r}")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"traceEvents[{i}]: missing ts")
        if event.get("ph") == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"traceEvents[{i}]: complete event missing dur")
    if problems:
        raise ObservabilityError("invalid chrome trace: " + "; ".join(problems))
    return events


# ----------------------------------------------------------------------
# CLI validation surface (used by the CI observability smoke job)
# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Validate exported observability artifacts from the command line."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.export",
        description="validate exported metrics/trace artifacts",
    )
    parser.add_argument("--validate-metrics", help="metrics JSON artifact path")
    parser.add_argument("--validate-trace", help="trace JSON-lines artifact path")
    parser.add_argument("--validate-chrome", help="chrome trace-event artifact path")
    args = parser.parse_args(argv)
    if not (args.validate_metrics or args.validate_trace or args.validate_chrome):
        parser.error("nothing to validate")
    try:
        if args.validate_metrics:
            snapshot = read_metrics_json(args.validate_metrics)
            n = sum(len(snapshot[k]) for k in ("counters", "gauges", "histograms"))
            print(f"{args.validate_metrics}: valid metrics snapshot ({n} series)")
        if args.validate_trace:
            with open(args.validate_trace, "r", encoding="utf-8") as handle:
                spans = validate_trace_jsonl(handle.read())
            roots = sum(1 for span in spans if span["parent_id"] is None)
            print(
                f"{args.validate_trace}: valid trace "
                f"({len(spans)} spans, {roots} roots)"
            )
        if args.validate_chrome:
            with open(args.validate_chrome, "r", encoding="utf-8") as handle:
                events = validate_chrome_trace(json.load(handle))
            print(f"{args.validate_chrome}: valid chrome trace ({len(events)} events)")
    except (OSError, json.JSONDecodeError, ObservabilityError) as exc:
        print(f"validation failed: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
