"""Exporters and schema validators for the observability artifacts.

Three interchange formats:

* **Prometheus text** (:func:`to_prometheus_text`) — the standard
  exposition format; counters gain a ``_total`` suffix, histograms
  expand into cumulative ``_bucket{le=...}`` series plus ``_sum`` /
  ``_count``.  :func:`parse_prometheus_text` inverts it so snapshots
  round-trip (modulo the ``.`` → ``_`` name sanitization).
* **Metrics JSON / JSON-lines** (:func:`write_metrics_json`,
  :func:`metrics_to_jsonl` / :func:`metrics_from_jsonl`) — lossless
  snapshot serialization; the ``--metrics-out`` artifact the experiment
  drivers write next to their results so benchmark deltas diff cleanly.
* **Trace exports** — produced by :class:`repro.obs.tracing.Tracer`;
  validated here (:func:`validate_trace_jsonl`,
  :func:`validate_chrome_trace`).

``python -m repro.obs.export --validate-metrics m.json --validate-trace
t.jsonl`` validates artifacts from the command line (the CI smoke job's
second half).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Identifies the metrics snapshot artifact schema.
METRICS_SCHEMA = "repro.metrics/v1"

#: Identifies the flight-recorder black-box artifact schema.
FLIGHT_RECORDER_SCHEMA = "repro.flightrecorder/v1"

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
# The labels group is greedy (not ``[^}]*``): an *escaped* label value
# may legally contain ``}``, so the group runs to the last ``}`` that
# still leaves a trailing sample value.
_PROM_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
# Label values match escaped sequences (``\\``, ``\"``, ``\n``) so a
# quote inside a value does not terminate the match.
_PROM_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name for Prometheus (``.`` → ``_``)."""
    return _PROM_NAME_RE.sub("_", name)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format.

    Backslash, double-quote, and line-feed are the three characters the
    format requires escaping (``\\\\``, ``\\"``, ``\\n``); everything
    else passes through verbatim.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value`.

    Unknown escape sequences are kept verbatim (the exposition format
    leaves them undefined; dropping the backslash would lose data).
    """
    out: List[str] = []
    i = 0
    while i < len(value):
        char = value[i]
        if char == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                out.append(char)
                out.append(nxt)
            i += 2
            continue
        out.append(char)
        i += 1
    return "".join(out)


def _format_labels(labels: Mapping[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = [(k, str(v)) for k, v in sorted(labels.items())] + list(extra)
    if not items:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in items
    )
    return "{" + body + "}"


def parse_prometheus_series(series: str) -> Tuple[str, Dict[str, str]]:
    """Split a rendered ``name{labels}`` series key into name + labels.

    The inverse of the series keys produced by
    :func:`parse_prometheus_text`: label values come back *unescaped*,
    so values containing ``"``, ``\\`` or newlines round-trip through
    the exposition format.
    """
    match = _PROM_LINE_RE.match(series + " 0")
    if not match or match.group("name") != series.split("{", 1)[0]:
        raise ObservabilityError(f"unparseable Prometheus series key: {series!r}")
    labels: Dict[str, str] = {}
    body = match.group("labels")
    if body:
        for label in _PROM_LABEL_RE.finditer(body):
            labels[label.group("key")] = unescape_label_value(label.group("value"))
    return match.group("name"), labels


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in Prometheus text format."""
    lines: List[str] = []
    seen_type: set = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_type:
            seen_type.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        name = prometheus_name(entry["name"]) + "_total"
        type_line(name, "counter")
        lines.append(f"{name}{_format_labels(entry['labels'])} {_format_value(entry['value'])}")
    for entry in snapshot.get("gauges", ()):
        name = prometheus_name(entry["name"])
        type_line(name, "gauge")
        lines.append(f"{name}{_format_labels(entry['labels'])} {_format_value(entry['value'])}")
    for entry in snapshot.get("histograms", ()):
        name = prometheus_name(entry["name"])
        type_line(name, "histogram")
        cumulative = 0
        edges = list(entry["buckets"]) + [float("inf")]
        for edge, count in zip(edges, entry["counts"]):
            cumulative += count
            le = ("le", _format_value(edge))
            lines.append(
                f"{name}_bucket{_format_labels(entry['labels'], (le,))} {cumulative}"
            )
        lines.append(f"{name}_sum{_format_labels(entry['labels'])} {_format_value(entry['sum'])}")
        lines.append(f"{name}_count{_format_labels(entry['labels'])} {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse Prometheus text back into ``{family: {series: value}}``.

    Returns a dict keyed by family name; each family holds ``kind`` and
    ``samples`` — a dict from the rendered ``name{labels}`` series key
    to its float value.  Used by tests to prove snapshots round-trip.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(name, {"kind": kind.strip(), "samples": {}})
            continue
        if line.startswith("#"):
            continue
        match = _PROM_LINE_RE.match(line)
        if not match:
            raise ObservabilityError(f"unparseable Prometheus line: {raw!r}")
        value_text = match.group("value")
        value = float("inf") if value_text == "+Inf" else float(value_text)
        series = match.group("name") + (
            "{" + match.group("labels") + "}" if match.group("labels") else ""
        )
        # Attach the sample to its family (histogram children _bucket /
        # _sum / _count belong to the base family).
        base = match.group("name")
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in families:
                base = base[: -len(suffix)]
                break
        family = families.setdefault(base, {"kind": "untyped", "samples": {}})
        family["samples"][series] = value
    return families


# ----------------------------------------------------------------------
# Metrics JSON / JSON-lines
# ----------------------------------------------------------------------


def metrics_to_jsonl(snapshot: Mapping[str, Any]) -> str:
    """One JSON line per series: ``{"kind", "name", "labels", ...}``."""
    lines: List[str] = []
    for kind in ("counters", "gauges", "histograms"):
        for entry in snapshot.get(kind, ()):
            record = {"kind": kind[:-1], **entry}
            lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_from_jsonl(text: str) -> Dict[str, List[Dict[str, Any]]]:
    """Invert :func:`metrics_to_jsonl` back into a snapshot dict."""
    snapshot: Dict[str, List[Dict[str, Any]]] = {
        "counters": [],
        "gauges": [],
        "histograms": [],
    }
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.pop("kind", None)
        if kind not in ("counter", "gauge", "histogram"):
            raise ObservabilityError(f"bad metrics JSONL record kind: {kind!r}")
        snapshot[kind + "s"].append(record)
    return snapshot


def write_metrics_json(snapshot: Mapping[str, Any], path: str) -> None:
    """Write the ``--metrics-out`` artifact (schema-tagged snapshot)."""
    document = {"schema": METRICS_SCHEMA, "snapshot": snapshot}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_metrics_json(path: str) -> Dict[str, Any]:
    """Load and validate a ``--metrics-out`` artifact; return the snapshot."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("schema") != METRICS_SCHEMA:
        raise ObservabilityError(
            f"{path}: not a {METRICS_SCHEMA} document"
        )
    snapshot = document.get("snapshot")
    validate_metrics_snapshot(snapshot)
    return snapshot


# ----------------------------------------------------------------------
# Validators
# ----------------------------------------------------------------------


def validate_metrics_snapshot(snapshot: Any) -> None:
    """Raise :class:`ObservabilityError` unless ``snapshot`` is well-formed."""
    problems: List[str] = []
    if not isinstance(snapshot, dict):
        raise ObservabilityError("metrics snapshot must be a dict")
    for kind in ("counters", "gauges", "histograms"):
        entries = snapshot.get(kind)
        if not isinstance(entries, list):
            problems.append(f"missing or non-list {kind!r} section")
            continue
        for i, entry in enumerate(entries):
            where = f"{kind}[{i}]"
            if not isinstance(entry, dict):
                problems.append(f"{where}: not a dict")
                continue
            if not isinstance(entry.get("name"), str) or not entry.get("name"):
                problems.append(f"{where}: missing name")
            if not isinstance(entry.get("labels"), dict):
                problems.append(f"{where}: missing labels dict")
            if kind == "histograms":
                buckets = entry.get("buckets")
                counts = entry.get("counts")
                if not isinstance(buckets, list) or not isinstance(counts, list):
                    problems.append(f"{where}: missing buckets/counts")
                elif len(counts) != len(buckets) + 1:
                    problems.append(
                        f"{where}: counts must have len(buckets)+1 entries "
                        f"(+Inf bucket), got {len(counts)} for {len(buckets)}"
                    )
                elif list(buckets) != sorted(buckets):
                    problems.append(f"{where}: buckets not sorted")
                if not isinstance(entry.get("count"), int):
                    problems.append(f"{where}: missing integer count")
                elif isinstance(counts, list) and len(counts) == len(buckets or []) + 1 \
                        and sum(counts) != entry["count"]:
                    problems.append(f"{where}: bucket counts do not sum to count")
            else:
                if not isinstance(entry.get("value"), (int, float)):
                    problems.append(f"{where}: missing numeric value")
    if problems:
        raise ObservabilityError(
            "invalid metrics snapshot: " + "; ".join(problems)
        )


_SPAN_REQUIRED = {
    "type": str,
    "span_id": int,
    "name": str,
    "thread": str,
    "thread_id": int,
    "start_unix": (int, float),
    "wall_s": (int, float),
    "cpu_s": (int, float),
    "attrs": dict,
    "events": list,
}


def validate_trace_jsonl(text: str) -> List[Dict[str, Any]]:
    """Validate a JSON-lines trace export; return the parsed spans.

    Checks field presence/types, that every non-null ``parent_id``
    refers to an exported span, and that events carry a name and a
    non-negative offset.
    """
    spans: List[Dict[str, Any]] = []
    problems: List[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            span = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not JSON ({exc})")
            continue
        for key, kinds in _SPAN_REQUIRED.items():
            if not isinstance(span.get(key), kinds):
                problems.append(f"line {lineno}: bad or missing {key!r}")
        if span.get("type") != "span":
            problems.append(f"line {lineno}: type must be 'span'")
        parent = span.get("parent_id")
        if parent is not None and not isinstance(parent, int):
            problems.append(f"line {lineno}: parent_id must be int or null")
        for j, event in enumerate(span.get("events", [])):
            if not isinstance(event, dict) or not isinstance(event.get("name"), str):
                problems.append(f"line {lineno}: event[{j}] missing name")
            elif not isinstance(event.get("t_offset_s"), (int, float)) or event["t_offset_s"] < 0:
                problems.append(f"line {lineno}: event[{j}] bad t_offset_s")
        spans.append(span)
    ids = {span.get("span_id") for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in ids:
            problems.append(
                f"span {span.get('span_id')}: dangling parent_id {parent}"
            )
    if not spans:
        problems.append("trace contains no spans")
    if problems:
        raise ObservabilityError("invalid trace JSONL: " + "; ".join(problems))
    return spans


def validate_chrome_trace(document: Any) -> List[Dict[str, Any]]:
    """Validate a Chrome trace-event export; return the event list."""
    problems: List[str] = []
    if not isinstance(document, dict) or not isinstance(
        document.get("traceEvents"), list
    ):
        raise ObservabilityError("chrome trace must be {'traceEvents': [...]}")
    events = document["traceEvents"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"traceEvents[{i}]: not a dict")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"traceEvents[{i}]: missing name")
        if event.get("ph") not in ("X", "i", "I", "B", "E"):
            problems.append(f"traceEvents[{i}]: bad ph {event.get('ph')!r}")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"traceEvents[{i}]: missing ts")
        if event.get("ph") == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"traceEvents[{i}]: complete event missing dur")
    if problems:
        raise ObservabilityError("invalid chrome trace: " + "; ".join(problems))
    return events


#: Process health states a flight record may report.
_HEALTH_STATUSES = ("ok", "degraded", "failing")


def validate_flight_record(document: Any) -> Dict[str, Any]:
    """Validate a flight-recorder black-box dump; return it.

    The artifact is produced by
    :meth:`repro.obs.health.FlightRecorder.dump` — on demand, from the
    admin endpoint's ``/flightrecorder`` path, and automatically on
    ``InternalError``/``StreamError``.  Schema (all sections required):

    * ``schema`` — :data:`FLIGHT_RECORDER_SCHEMA`;
    * ``trigger`` — what caused the dump (``manual`` / ``endpoint`` /
      ``auto:<stage>``);
    * ``dumped_at_unix`` — wall-clock dump time;
    * ``events`` — recent warn/error events
      (``{level, message, t_monotonic, attrs}``);
    * ``samples`` — recent registry snapshots
      (``{index, t_monotonic, snapshot}``, each snapshot a valid
      metrics snapshot);
    * ``spans`` — tail of the tracer's completed spans;
    * ``health`` — the last :class:`HealthReport` as a dict, or null.
    """
    problems: List[str] = []
    if not isinstance(document, dict) or document.get("schema") != FLIGHT_RECORDER_SCHEMA:
        raise ObservabilityError(f"not a {FLIGHT_RECORDER_SCHEMA} document")
    if not isinstance(document.get("trigger"), str) or not document.get("trigger"):
        problems.append("missing trigger string")
    if not isinstance(document.get("dumped_at_unix"), (int, float)):
        problems.append("missing numeric dumped_at_unix")
    events = document.get("events")
    if not isinstance(events, list):
        problems.append("missing events list")
    else:
        for i, event in enumerate(events):
            if not isinstance(event, dict):
                problems.append(f"events[{i}]: not a dict")
                continue
            if not isinstance(event.get("level"), str):
                problems.append(f"events[{i}]: missing level")
            if not isinstance(event.get("message"), str):
                problems.append(f"events[{i}]: missing message")
            if not isinstance(event.get("t_monotonic"), (int, float)):
                problems.append(f"events[{i}]: missing numeric t_monotonic")
    samples = document.get("samples")
    if not isinstance(samples, list):
        problems.append("missing samples list")
    else:
        for i, sample in enumerate(samples):
            if not isinstance(sample, dict):
                problems.append(f"samples[{i}]: not a dict")
                continue
            if not isinstance(sample.get("index"), int):
                problems.append(f"samples[{i}]: missing integer index")
            if not isinstance(sample.get("t_monotonic"), (int, float)):
                problems.append(f"samples[{i}]: missing numeric t_monotonic")
            try:
                validate_metrics_snapshot(sample.get("snapshot"))
            except ObservabilityError as exc:
                problems.append(f"samples[{i}]: {exc}")
    spans = document.get("spans")
    if not isinstance(spans, list):
        problems.append("missing spans list")
    else:
        for i, span in enumerate(spans):
            if not isinstance(span, dict) or not isinstance(span.get("name"), str):
                problems.append(f"spans[{i}]: missing name")
            elif not isinstance(span.get("span_id"), int):
                problems.append(f"spans[{i}]: missing integer span_id")
    health = document.get("health")
    if health is not None:
        if not isinstance(health, dict) or health.get("status") not in _HEALTH_STATUSES:
            problems.append(
                f"health.status must be one of {_HEALTH_STATUSES} (or health null)"
            )
    if problems:
        raise ObservabilityError("invalid flight record: " + "; ".join(problems))
    return document


# ----------------------------------------------------------------------
# CLI validation surface (used by the CI observability smoke job)
# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Validate exported observability artifacts from the command line."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.export",
        description="validate exported metrics/trace artifacts",
    )
    parser.add_argument("--validate-metrics", help="metrics JSON artifact path")
    parser.add_argument("--validate-trace", help="trace JSON-lines artifact path")
    parser.add_argument("--validate-chrome", help="chrome trace-event artifact path")
    parser.add_argument(
        "--validate-flightrecorder", help="flight-recorder black-box JSON artifact path"
    )
    args = parser.parse_args(argv)
    if not (
        args.validate_metrics
        or args.validate_trace
        or args.validate_chrome
        or args.validate_flightrecorder
    ):
        parser.error("nothing to validate")
    try:
        if args.validate_metrics:
            snapshot = read_metrics_json(args.validate_metrics)
            n = sum(len(snapshot[k]) for k in ("counters", "gauges", "histograms"))
            print(f"{args.validate_metrics}: valid metrics snapshot ({n} series)")
        if args.validate_trace:
            with open(args.validate_trace, "r", encoding="utf-8") as handle:
                spans = validate_trace_jsonl(handle.read())
            roots = sum(1 for span in spans if span["parent_id"] is None)
            print(
                f"{args.validate_trace}: valid trace "
                f"({len(spans)} spans, {roots} roots)"
            )
        if args.validate_chrome:
            with open(args.validate_chrome, "r", encoding="utf-8") as handle:
                events = validate_chrome_trace(json.load(handle))
            print(f"{args.validate_chrome}: valid chrome trace ({len(events)} events)")
        if args.validate_flightrecorder:
            with open(args.validate_flightrecorder, "r", encoding="utf-8") as handle:
                record = validate_flight_record(json.load(handle))
            print(
                f"{args.validate_flightrecorder}: valid flight record "
                f"(trigger={record['trigger']}, {len(record['events'])} events, "
                f"{len(record['samples'])} samples, {len(record['spans'])} spans)"
            )
    except (OSError, json.JSONDecodeError, ObservabilityError) as exc:
        print(f"validation failed: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
