"""Nested span tracing for the online CrowdRTSE loop.

A :class:`Tracer` produces a tree of spans — ``pipeline.answer_query``
→ ``ocs.select`` / ``crowd.execute`` / ``gsp.propagate`` → per-sweep
events — with wall *and* CPU time per span.  Completed spans are kept
in-process and exported on demand as JSON-lines (one span per line) or
Chrome ``chrome://tracing`` / Perfetto trace-event JSON.

Design constraints:

* **Zero hard dependencies** — stdlib only.
* **No-op cheap when disabled** — ``tracer.span(...)`` returns a shared
  null context manager without allocating, and ``tracer.event(...)``
  returns after one branch.  Hot loops additionally gate on
  :attr:`Tracer.enabled` so a disabled tracer costs one bool check per
  sweep.
* **Thread-safe and reentrant** — the active-span stack is per-thread
  (``threading.local``), so concurrent queries on worker threads build
  independent, correctly-parented subtrees; the completed-span list is
  guarded by a lock.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

try:  # thread CPU clock: Linux/macOS; fall back to the process clock.
    time.thread_time()
    _cpu_clock = time.thread_time
except (AttributeError, OSError):  # pragma: no cover - exotic platforms
    _cpu_clock = time.process_time


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    Attributes:
        span_id: Unique id within the tracer (creation order).
        parent_id: Enclosing span's id, or ``None`` for roots.
        name: Span name, dotted (``gsp.propagate``).
        thread: Name of the thread the span ran on.
        thread_id: OS-level thread ident.
        start_unix: Wall-clock start (seconds since the epoch).
        wall_s: Wall-clock duration in seconds.
        cpu_s: CPU time consumed by the owning thread, in seconds.
        attrs: Static attributes set at creation or via ``set_attr``.
        events: Point-in-time events: ``{"name", "t_offset_s", "attrs"}``
            dicts, offset from the span start.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    thread: str
    thread_id: int
    start_unix: float
    wall_s: float
    cpu_s: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: Tuple[Dict[str, Any], ...] = ()


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def event(self, name: str, **attrs: Any) -> None:  # noqa: D102 - no-op
        pass

    def set_attr(self, key: str, value: Any) -> None:  # noqa: D102 - no-op
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """An active span; use as a context manager (via :meth:`Tracer.span`)."""

    __slots__ = (
        "tracer", "name", "attrs", "events",
        "span_id", "parent_id", "_t0", "_cpu0", "start_unix",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.events: List[Dict[str, Any]] = []
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self._t0 = 0.0
        self._cpu0 = 0.0
        self.start_unix = 0.0

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = self.tracer._next_id()
        stack.append(self)
        self.start_unix = time.time()
        self._cpu0 = _cpu_clock()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        wall = time.perf_counter() - self._t0
        cpu = _cpu_clock() - self._cpu0
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - misnested exit
            stack.remove(self)
        self.tracer._append(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                thread=threading.current_thread().name,
                thread_id=threading.get_ident(),
                start_unix=self.start_unix,
                wall_s=wall,
                cpu_s=cpu,
                attrs=self.attrs,
                events=tuple(self.events),
            )
        )
        return False

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point-in-time event to this span."""
        self.events.append(
            {
                "name": name,
                "t_offset_s": time.perf_counter() - self._t0,
                "attrs": attrs,
            }
        )

    def set_attr(self, key: str, value: Any) -> None:
        """Set a span attribute (visible in every export format)."""
        self.attrs[key] = value


class Tracer:
    """Produces nested spans; see the module docstring.

    Args:
        enabled: Initial state; disabled tracers are no-op cheap.
        max_spans: Cap on retained completed spans; further spans are
            dropped (counted in :attr:`dropped`) so a forgotten enabled
            tracer cannot grow memory without bound.
    """

    def __init__(self, enabled: bool = False, max_spans: int = 100_000) -> None:
        self._enabled = bool(enabled)
        self.max_spans = max_spans
        self.dropped = 0
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._local = threading.local()
        self._id_counter = 0

    # -- state ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether spans/events are recorded."""
        return self._enabled

    def enable(self) -> None:
        """Start recording."""
        self._enabled = True

    def disable(self) -> None:
        """Stop recording (``span()`` returns a shared null span)."""
        self._enabled = False

    def reset(self) -> None:
        """Drop all completed spans (active spans are unaffected)."""
        with self._lock:
            self._records.clear()
            self.dropped = 0

    # -- recording ------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._id_counter += 1
            return self._id_counter

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._records) >= self.max_spans:
                self.dropped += 1
                return
            self._records.append(record)

    def span(self, name: str, **attrs: Any) -> Union[Span, _NullSpan]:
        """Open a span; use as ``with tracer.span("gsp.propagate", ...):``.

        Returns the shared null span while disabled.
        """
        if not self._enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Attach an event to the innermost active span on this thread.

        Dropped silently when disabled or when no span is active (an
        event without a span has no position in the tree).
        """
        if not self._enabled:
            return
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].event(name, **attrs)

    def current_span(self) -> Optional[Span]:
        """The innermost active span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def records(self) -> Tuple[SpanRecord, ...]:
        """All completed spans, in completion order."""
        with self._lock:
            return tuple(self._records)

    # -- export ---------------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialize completed spans as JSON-lines (one span per line)."""
        lines: List[str] = []
        for record in self.records():
            lines.append(
                json.dumps(
                    {
                        "type": "span",
                        "span_id": record.span_id,
                        "parent_id": record.parent_id,
                        "name": record.name,
                        "thread": record.thread,
                        "thread_id": record.thread_id,
                        "start_unix": record.start_unix,
                        "wall_s": record.wall_s,
                        "cpu_s": record.cpu_s,
                        "attrs": record.attrs,
                        "events": list(record.events),
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Serialize as Chrome/Perfetto trace-event JSON.

        Spans become complete (``"ph": "X"``) events with microsecond
        timestamps; span events become thread-scoped instant
        (``"ph": "i"``) events.  Load the result in ``chrome://tracing``
        or https://ui.perfetto.dev.
        """
        records = self.records()
        # Small stable tids: order of first appearance.
        tid_of: Dict[int, int] = {}
        for record in records:
            tid_of.setdefault(record.thread_id, len(tid_of))
        events: List[Dict[str, Any]] = []
        for record in records:
            ts_us = record.start_unix * 1e6
            tid = tid_of[record.thread_id]
            events.append(
                {
                    "name": record.name,
                    "cat": record.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": ts_us,
                    "dur": record.wall_s * 1e6,
                    "pid": 0,
                    "tid": tid,
                    "args": {
                        **record.attrs,
                        "span_id": record.span_id,
                        "parent_id": record.parent_id,
                        "cpu_s": record.cpu_s,
                    },
                }
            )
            for event in record.events:
                events.append(
                    {
                        "name": event["name"],
                        "cat": event["name"].split(".", 1)[0],
                        "ph": "i",
                        "s": "t",
                        "ts": ts_us + event["t_offset_s"] * 1e6,
                        "pid": 0,
                        "tid": tid,
                        "args": dict(event.get("attrs", {})),
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_jsonl(self, path: str) -> None:
        """Write :meth:`to_jsonl` output to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def export_chrome_trace(self, path: str) -> None:
        """Write :meth:`to_chrome_trace` output to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, sort_keys=True)
