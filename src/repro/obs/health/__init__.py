"""Operational health layer: sampler, SLO engine, flight recorder, admin.

``repro.obs`` (PR 2) gave the process raw counters and spans; this
package turns them into an *active* control plane:

* :class:`MetricsTimeSeries` — ring buffer of registry snapshots with
  windowed deltas/rates/quantiles;
* :class:`SLOEngine` / :class:`SLO` — declarative objectives evaluated
  over fast + slow burn-rate windows into a typed
  :class:`HealthReport`;
* :class:`FlightRecorder` — a bounded black box dumped on demand and
  automatically on ``InternalError``/``StreamError``;
* :class:`AdminServer` — opt-in ``/metrics`` + ``/healthz`` +
  ``/flightrecorder`` HTTP endpoint;
* :func:`repro.obs.health.top.run_top` — the ``repro top`` dashboard.

:class:`HealthMonitor` is the conductor: a 1 Hz sampler thread
(``time.monotonic`` only — RA006) snapshots the registry, feeds the
flight recorder, re-evaluates every SLO, and publishes the resulting
:class:`HealthStatus` for :class:`repro.serve.QueryService` to consult
when deciding to pre-emptively shed load.  A process-wide monitor can
be :func:`install`-ed so error paths deep in serve/stream reach the
recorder via :func:`record_failure` without threading a handle through
every constructor.

Metrics emitted by the monitor itself (catalog:
``docs/OBSERVABILITY.md``): ``health.samples``,
``health.sampler_errors``, ``health.status``, ``slo.evaluations``,
``slo.violations{slo,window}``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Dict, Optional, Sequence

from repro.obs import get_metrics, get_tracer
from repro.obs.health.endpoint import AdminServer
from repro.obs.health.recorder import FlightRecorder
from repro.obs.health.slo import (
    SLO,
    Alert,
    HealthReport,
    HealthStatus,
    SLOEngine,
    SLOResult,
    SLOWindow,
    dashboard_stats,
    default_slos,
)
from repro.obs.health.timeseries import HistogramWindow, MetricSample, MetricsTimeSeries
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = [
    "SLO",
    "AdminServer",
    "Alert",
    "FlightRecorder",
    "HealthMonitor",
    "HealthReport",
    "HealthStatus",
    "HistogramWindow",
    "MetricSample",
    "MetricsTimeSeries",
    "SLOEngine",
    "SLOResult",
    "SLOWindow",
    "dashboard_stats",
    "default_slos",
    "get_monitor",
    "install",
    "record_failure",
    "uninstall",
]


class HealthMonitor:
    """Sampler thread + SLO engine + flight recorder, in one handle.

    ``start()`` (or entering the context manager) launches a daemon
    thread that ticks every ``interval_s``: snapshot the registry into
    the time-series, feed the flight recorder, evaluate every SLO, and
    publish the new :class:`HealthReport`.  All interval arithmetic is
    ``time.monotonic()``.  Without a running thread, :meth:`report`
    performs a tick inline, so single-threaded tests and CLI paths work
    unchanged.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slos: Optional[Sequence[SLO]] = None,
        interval_s: float = 1.0,
        series_capacity: int = 512,
        recorder: Optional[FlightRecorder] = None,
        dump_dir: Optional[str] = None,
        min_dump_interval_s: float = 5.0,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.registry = registry if registry is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.series = MetricsTimeSeries(self.registry, capacity=series_capacity)
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.engine = SLOEngine(
            tuple(slos) if slos is not None else default_slos(), self.series
        )
        self.interval_s = interval_s
        self.dump_dir = dump_dir
        self.min_dump_interval_s = min_dump_interval_s
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._report: Optional[HealthReport] = None
        self._status = HealthStatus.OK
        self._last_auto_dump: Optional[float] = None
        self._info_providers: Dict[str, Callable[[], object]] = {}

    # -- info providers -------------------------------------------------

    def set_info(self, key: str, provider: Callable[[], object]) -> None:
        """Attach a static-info callable (e.g. the store's version)."""
        with self._lock:
            self._info_providers[key] = provider

    def _collect_info(self) -> Dict[str, object]:
        with self._lock:
            providers = dict(self._info_providers)
        info: Dict[str, object] = {}
        for key, provider in providers.items():
            try:
                info[key] = provider()
            except Exception as exc:  # info is best-effort, never fatal
                info[key] = f"<error: {type(exc).__name__}>"
        return info

    # -- the tick -------------------------------------------------------

    def tick(self) -> HealthReport:
        """One sampler pass: sample → record → evaluate → publish."""
        sample = self.series.sample_now()
        self.recorder.record_sample(sample)
        report = self.engine.evaluate(info=self._collect_info())
        metrics = self.registry
        metrics.counter("health.samples").inc()
        metrics.counter("slo.evaluations").inc(len(report.results))
        metrics.gauge("health.status").set(report.status.severity)
        for result in report.results:
            for window in (result.fast, result.slow):
                if window.violated:
                    metrics.counter(
                        "slo.violations",
                        {"slo": result.slo.name, "window": window.window},
                    ).inc()
        with self._lock:
            self._report = report
            self._status = report.status
        return report

    def _run(self) -> None:
        while True:
            if self._wake.wait(self.interval_s):
                return
            try:
                self.tick()
            except Exception as exc:  # keep sampling through bugs
                self.registry.counter("health.sampler_errors").inc()
                self.recorder.note(
                    "error",
                    f"sampler tick failed: {exc}",
                    error=type(exc).__name__,
                )

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "HealthMonitor":
        """Launch the sampler thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return self
            self._wake.clear()
            thread = threading.Thread(
                target=self._run, name="repro-health-sampler", daemon=True
            )
            self._thread = thread
        thread.start()
        return self

    def close(self) -> None:
        """Stop the sampler thread (idempotent)."""
        with self._lock:
            thread = self._thread
            self._thread = None
        self._wake.set()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "HealthMonitor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reading --------------------------------------------------------

    def report(self) -> HealthReport:
        """The latest report; ticks inline before the first sample."""
        with self._lock:
            report = self._report
        if report is None:
            return self.tick()
        return report

    def status(self) -> HealthStatus:
        """The latest overall status (lock-free read path)."""
        return self._status

    def should_shed(self) -> bool:
        """True once burn-rate evaluation says the process is failing."""
        return self._status is HealthStatus.FAILING

    # -- failure hook ---------------------------------------------------

    def record_failure(self, stage: str, error: BaseException) -> None:
        """Note an ``InternalError``/``StreamError`` and auto-dump.

        Dumps are rate-limited to one per ``min_dump_interval_s`` so an
        error storm cannot turn the recorder into a hot loop; when
        ``dump_dir`` is set each dump also lands on disk as
        ``flightrecorder-<index>.json``.
        """
        self.recorder.note(
            "error",
            f"{stage}: {error}",
            stage=stage,
            error=type(error).__name__,
        )
        now = time.monotonic()
        with self._lock:
            last = self._last_auto_dump
            if last is not None and now - last < self.min_dump_interval_s:
                return
            self._last_auto_dump = now
        with self._lock:
            report = self._report
        document = self.recorder.dump(
            trigger=f"auto:{stage}", tracer=self.tracer, report=report
        )
        if self.dump_dir:
            index = document["dump_index"]
            path = os.path.join(self.dump_dir, f"flightrecorder-{index}.json")
            try:
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, indent=2, sort_keys=True)
                    handle.write("\n")
            except OSError:
                self.recorder.note("warn", f"flight-record write failed: {path}")

    def dump_flight_record(self, trigger: str = "manual") -> Dict[str, object]:
        """A fresh black-box dump with the latest report attached."""
        with self._lock:
            report = self._report
        return self.recorder.dump(trigger=trigger, tracer=self.tracer, report=report)


# ----------------------------------------------------------------------
# Process-wide monitor (the serve/stream failure-hook registry)
# ----------------------------------------------------------------------

_install_lock = threading.Lock()
_installed: Optional[HealthMonitor] = None


def install(monitor: HealthMonitor) -> HealthMonitor:
    """Make ``monitor`` the process-wide monitor; returns it."""
    global _installed
    with _install_lock:
        _installed = monitor
    return monitor


def uninstall() -> None:
    """Clear the process-wide monitor."""
    global _installed
    with _install_lock:
        _installed = None


def get_monitor() -> Optional[HealthMonitor]:
    """The installed process-wide monitor, or ``None``."""
    return _installed


def record_failure(stage: str, error: BaseException) -> None:
    """Route a failure to the installed monitor; no-op without one.

    Called from serve/stream error paths — it must *never* raise (a
    recorder bug must not mask the original :class:`ReproError`), and
    never while the caller holds a component lock (RA002).
    """
    monitor = _installed
    if monitor is None:
        return
    try:
        monitor.record_failure(stage, error)
    except Exception:  # never mask the original failure
        pass
