"""Flight recorder: a bounded black box of recent process activity.

Three ring buffers — warn/error events, metric samples, and (via the
tracer, at dump time) recent spans — capture "what was happening in the
30 seconds before the failure".  :meth:`FlightRecorder.dump` freezes
them into one JSON-able artifact, produced on demand (the admin
endpoint's ``/flightrecorder`` path), and automatically when
:meth:`repro.obs.health.HealthMonitor.record_failure` sees an
``InternalError`` or ``StreamError``.  The artifact schema is validated
by :func:`repro.obs.export.validate_flight_record` (and the
``--validate-flightrecorder`` CLI flag CI uses).

This module is on the RA006 wall-clock whitelist: ``dumped_at_unix``
deliberately uses ``time.time()`` so operators can line the black box
up against external logs.  Every *interval* in the buffers stays
``time.monotonic()``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.obs.export import FLIGHT_RECORDER_SCHEMA
from repro.obs.health.slo import HealthReport
from repro.obs.health.timeseries import MetricSample
from repro.obs.tracing import Tracer

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded ring buffers of recent events/samples, dumped as JSON."""

    def __init__(
        self,
        max_events: int = 256,
        max_samples: int = 120,
        max_spans: int = 128,
    ) -> None:
        self._lock = threading.Lock()
        self._events: Deque[Dict[str, Any]] = deque(maxlen=max_events)
        self._samples: Deque[MetricSample] = deque(maxlen=max_samples)
        self._max_spans = max_spans
        self._dump_index = 0
        self._last_dump: Optional[Dict[str, Any]] = None

    # -- recording ------------------------------------------------------

    def note(self, level: str, message: str, **attrs: object) -> None:
        """Append a warn/error event to the ring."""
        event = {
            "level": level,
            "message": message,
            "t_monotonic": time.monotonic(),
            "attrs": dict(attrs),
        }
        with self._lock:
            self._events.append(event)

    def record_sample(self, sample: MetricSample) -> None:
        """Retain a metrics sample (the sampler tick feeds these in)."""
        with self._lock:
            self._samples.append(sample)

    # -- reading --------------------------------------------------------

    @property
    def last_dump(self) -> Optional[Dict[str, Any]]:
        """The most recent dump, or ``None`` before the first."""
        with self._lock:
            return self._last_dump

    def event_count(self) -> int:
        """Number of retained events."""
        with self._lock:
            return len(self._events)

    def dump(
        self,
        trigger: str = "manual",
        tracer: Optional[Tracer] = None,
        report: Optional[HealthReport] = None,
    ) -> Dict[str, Any]:
        """Freeze the rings into one JSON-able black-box artifact."""
        spans: List[Dict[str, Any]] = []
        if tracer is not None:
            # Tracer records are read before taking the recorder lock so
            # the two locks are never nested (RA002).
            for record in tracer.records()[-self._max_spans :]:
                spans.append(
                    {
                        "type": "span",
                        "span_id": record.span_id,
                        "parent_id": record.parent_id,
                        "name": record.name,
                        "thread": record.thread,
                        "thread_id": record.thread_id,
                        "start_unix": record.start_unix,
                        "wall_s": record.wall_s,
                        "cpu_s": record.cpu_s,
                        "attrs": dict(record.attrs),
                        "events": [list(event) for event in record.events],
                    }
                )
        with self._lock:
            document: Dict[str, Any] = {
                "schema": FLIGHT_RECORDER_SCHEMA,
                "trigger": trigger,
                "dumped_at_unix": time.time(),
                "dump_index": self._dump_index,
                "events": [dict(event) for event in self._events],
                "samples": [sample.as_dict() for sample in self._samples],
                "spans": spans,
                "health": report.as_dict() if report is not None else None,
            }
            self._dump_index += 1
            self._last_dump = document
        return document

    def dump_json(
        self,
        path: str,
        trigger: str = "manual",
        tracer: Optional[Tracer] = None,
        report: Optional[HealthReport] = None,
    ) -> Dict[str, Any]:
        """:meth:`dump` and write the artifact to ``path``."""
        document = self.dump(trigger=trigger, tracer=tracer, report=report)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return document
