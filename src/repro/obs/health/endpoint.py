"""Opt-in admin HTTP endpoint: ``/metrics``, ``/healthz``, ``/flightrecorder``.

A tiny stdlib ``http.server`` surface for operators and the CI
health-smoke job — *not* the query path (queries go through
:class:`repro.serve.QueryService`).  Routes:

* ``GET /metrics`` — Prometheus exposition text of the live registry;
* ``GET /healthz`` — the latest :class:`~repro.obs.health.slo.HealthReport`
  as JSON; HTTP 200 while ok/degraded, 503 once the SLO engine reports
  ``failing`` (load balancers drain on the status code alone);
* ``GET /flightrecorder`` — a fresh black-box dump
  (:class:`~repro.obs.health.recorder.FlightRecorder`);
* ``GET /`` — a small JSON index of the above.

The server binds ``127.0.0.1`` by default and is entirely opt-in
(``repro serve --admin-port ...``); it serves each request from a
daemon thread and never holds any component lock across a response
write.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs import get_metrics
from repro.obs.export import to_prometheus_text
from repro.obs.health.slo import HealthStatus
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.health import HealthMonitor

__all__ = ["AdminServer"]

_ROUTES = ("/", "/metrics", "/healthz", "/flightrecorder")


class _AdminHandler(BaseHTTPRequestHandler):
    """Routes one GET; any handler bug becomes a 500 JSON body."""

    server: "_AdminHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            status, content_type, body = self._dispatch()
        except Exception as exc:  # last resort: report, never crash the server
            status = 500
            content_type = "application/json"
            body = json.dumps(
                {"error": type(exc).__name__, "detail": str(exc)}
            ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self) -> Tuple[int, str, bytes]:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        admin = self.server.admin
        if path == "/metrics":
            text = to_prometheus_text(admin.registry.snapshot())
            return (200, "text/plain; version=0.0.4", text.encode("utf-8"))
        if path == "/healthz":
            report = admin.monitor.report()
            status = 503 if report.status is HealthStatus.FAILING else 200
            return (status, "application/json", _json(report.as_dict()))
        if path == "/flightrecorder":
            document = admin.monitor.dump_flight_record(trigger="endpoint")
            return (200, "application/json", _json(document))
        if path == "/":
            index = {
                "service": "repro-admin",
                "routes": list(_ROUTES[1:]),
                "status": admin.monitor.status().value,
            }
            return (200, "application/json", _json(index))
        return (404, "application/json", _json({"error": "not found", "path": path}))

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence the default stderr access log."""


def _json(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class _AdminHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the owning :class:`AdminServer`."""

    daemon_threads = True
    admin: "AdminServer"


class AdminServer:
    """Owns the listener socket + serve thread; context-manager friendly."""

    def __init__(
        self,
        monitor: "HealthMonitor",
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.monitor = monitor
        self.registry = registry if registry is not None else get_metrics()
        self._host = host
        self._port = port
        self._server: Optional[_AdminHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        """Bind and serve in a daemon thread; returns the bound port."""
        if self._server is not None:
            raise ObservabilityError("admin server already started")
        try:
            server = _AdminHTTPServer((self._host, self._port), _AdminHandler)
        except OSError as exc:
            raise ObservabilityError(
                f"admin endpoint cannot bind {self._host}:{self._port}: {exc}"
            ) from exc
        server.admin = self
        self._server = server
        self._port = server.server_address[1]
        thread = threading.Thread(
            target=server.serve_forever,
            name="repro-admin",
            daemon=True,
        )
        self._thread = thread
        thread.start()
        return self._port

    @property
    def port(self) -> int:
        """The bound port (0 until :meth:`start` with ``port=0``)."""
        return self._port

    @property
    def url(self) -> str:
        """Base URL of the endpoint."""
        return f"http://{self._host}:{self._port}"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        server = self._server
        thread = self._thread
        self._server = None
        self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "AdminServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
