"""Declarative SLOs evaluated over fast + slow burn-rate windows.

The engine follows the SRE multi-window burn-rate pattern: each
:class:`SLO` is checked over a *fast* window (is the budget burning
right now?) and a *slow* window (has it been burning long enough to
matter?).  A violation in the fast window alone yields
``HealthStatus.DEGRADED`` — the process is under pressure but may
recover; violation in *both* windows yields ``HealthStatus.FAILING``
and is the signal :class:`repro.serve.QueryService` uses to
pre-emptively shed load.

Three SLO kinds cover the catalog in ``docs/OBSERVABILITY.md``:

* ``quantile`` — a histogram quantile over the window (e.g.
  ``serve.latency_seconds p99 < 0.25``);
* ``ratio`` — windowed counter delta over a denominator delta (e.g.
  error rate: ``serve.completed{outcome=error} / serve.completed``);
* ``gauge`` — the latest gauge value (e.g.
  ``stream.publish_lag_seconds < 2·slot``).

Evaluation is pure: :class:`SLOEngine` reads a
:class:`~repro.obs.health.timeseries.MetricsTimeSeries` and returns a
frozen, JSON-able :class:`HealthReport`; driving it on a schedule is
the :class:`repro.obs.health.HealthMonitor`'s job.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.health.timeseries import MetricsTimeSeries

__all__ = [
    "Alert",
    "HealthReport",
    "HealthStatus",
    "SLO",
    "SLOEngine",
    "SLOResult",
    "SLOWindow",
    "dashboard_stats",
    "default_slos",
]

_KINDS = ("quantile", "ratio", "gauge")
_COMPARISONS = ("<", "<=", ">", ">=")


class HealthStatus(enum.Enum):
    """Process health, ordered by severity."""

    OK = "ok"
    DEGRADED = "degraded"
    FAILING = "failing"

    @property
    def severity(self) -> int:
        """0 (ok) → 2 (failing); also the ``health.status`` gauge value."""
        return ("ok", "degraded", "failing").index(self.value)


@dataclass(frozen=True)
class SLO:
    """One service-level objective over a catalog metric.

    ``comparison`` is the *healthy* direction: ``serve.latency p99 <
    0.25`` is met while the measured value compares true against
    ``threshold``.  ``min_count`` suppresses evaluation until the
    window has seen that many events, so an idle process reports OK
    instead of flapping on single requests.
    """

    name: str
    kind: str
    metric: str
    threshold: float
    quantile: float = 0.99
    denominator: Optional[str] = None
    labels: Optional[Mapping[str, str]] = None
    denominator_labels: Optional[Mapping[str, str]] = None
    comparison: str = "<"
    fast_window_s: float = 30.0
    slow_window_s: float = 300.0
    min_count: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"SLO {self.name!r}: kind must be one of {_KINDS}")
        if self.comparison not in _COMPARISONS:
            raise ValueError(
                f"SLO {self.name!r}: comparison must be one of {_COMPARISONS}"
            )
        if self.kind == "ratio" and not self.denominator:
            raise ValueError(f"SLO {self.name!r}: ratio SLOs need a denominator")
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError(f"SLO {self.name!r}: quantile must be in (0, 1]")
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ValueError(
                f"SLO {self.name!r}: need 0 < fast_window_s <= slow_window_s"
            )

    def is_met(self, value: float) -> bool:
        """Does ``value`` satisfy the healthy comparison?"""
        if math.isnan(value):
            return True
        if self.comparison == "<":
            return value < self.threshold
        if self.comparison == "<=":
            return value <= self.threshold
        if self.comparison == ">":
            return value > self.threshold
        return value >= self.threshold


@dataclass(frozen=True)
class SLOWindow:
    """One window's measurement for one SLO."""

    window: str
    seconds: float
    value: Optional[float]
    count: float
    violated: bool
    burn_rate: float

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form."""
        return {
            "window": self.window,
            "seconds": self.seconds,
            "value": self.value,
            "count": self.count,
            "violated": self.violated,
            "burn_rate": self.burn_rate,
        }


@dataclass(frozen=True)
class SLOResult:
    """Fast + slow evaluation of one SLO."""

    slo: SLO
    status: HealthStatus
    fast: SLOWindow
    slow: SLOWindow

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form."""
        return {
            "name": self.slo.name,
            "metric": self.slo.metric,
            "kind": self.slo.kind,
            "comparison": self.slo.comparison,
            "threshold": self.slo.threshold,
            "status": self.status.value,
            "fast": self.fast.as_dict(),
            "slow": self.slow.as_dict(),
            "description": self.slo.description,
        }


@dataclass(frozen=True)
class Alert:
    """A currently-firing SLO violation."""

    slo: str
    severity: HealthStatus
    message: str
    value: Optional[float]
    threshold: float

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form."""
        return {
            "slo": self.slo,
            "severity": self.severity.value,
            "message": self.message,
            "value": self.value,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class HealthReport:
    """One evaluation pass over every SLO, plus dashboard stats."""

    status: HealthStatus
    results: Tuple[SLOResult, ...]
    alerts: Tuple[Alert, ...]
    sample_index: int
    history_seconds: float
    stats: Mapping[str, float] = field(default_factory=dict)
    info: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form (the ``/healthz`` response body)."""
        return {
            "status": self.status.value,
            "results": [result.as_dict() for result in self.results],
            "alerts": [alert.as_dict() for alert in self.alerts],
            "sample_index": self.sample_index,
            "history_seconds": self.history_seconds,
            "stats": dict(self.stats),
            "info": dict(self.info),
        }


class SLOEngine:
    """Evaluates a fixed set of SLOs against a metrics time-series."""

    def __init__(self, slos: Sequence[SLO], series: MetricsTimeSeries) -> None:
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        self._slos = tuple(slos)
        self._series = series

    @property
    def slos(self) -> Tuple[SLO, ...]:
        """The configured objectives."""
        return self._slos

    def evaluate(self, info: Optional[Mapping[str, object]] = None) -> HealthReport:
        """One pass: measure every SLO over both windows."""
        results: List[SLOResult] = []
        alerts: List[Alert] = []
        for slo in self._slos:
            fast = self._measure(slo, "fast", slo.fast_window_s)
            slow = self._measure(slo, "slow", slo.slow_window_s)
            if fast.violated and slow.violated:
                status = HealthStatus.FAILING
            elif fast.violated or slow.violated:
                status = HealthStatus.DEGRADED
            else:
                status = HealthStatus.OK
            results.append(SLOResult(slo, status, fast, slow))
            if status is not HealthStatus.OK:
                shown = fast.value if fast.violated else slow.value
                alerts.append(
                    Alert(
                        slo=slo.name,
                        severity=status,
                        message=(
                            f"{slo.name}: {slo.metric} = {_fmt(shown)} "
                            f"(objective {slo.comparison} {slo.threshold:g}, "
                            f"fast={'violated' if fast.violated else 'ok'}, "
                            f"slow={'violated' if slow.violated else 'ok'})"
                        ),
                        value=shown,
                        threshold=slo.threshold,
                    )
                )
        overall = HealthStatus.OK
        for result in results:
            if result.status.severity > overall.severity:
                overall = result.status
        latest = self._series.latest()
        samples = self._series.samples()
        history = (
            samples[-1].t_monotonic - samples[0].t_monotonic if len(samples) > 1 else 0.0
        )
        return HealthReport(
            status=overall,
            results=tuple(results),
            alerts=tuple(alerts),
            sample_index=latest.index if latest is not None else -1,
            history_seconds=history,
            stats=dashboard_stats(self._series),
            info=dict(info or {}),
        )

    def _measure(self, slo: SLO, window: str, seconds: float) -> SLOWindow:
        value: Optional[float]
        count: float
        if slo.kind == "quantile":
            hist = self._series.histogram_delta(slo.metric, seconds, slo.labels)
            if hist is None or hist.count < slo.min_count:
                return SLOWindow(window, seconds, None, 0.0, False, 0.0)
            value = hist.quantile(slo.quantile)
            count = hist.count
        elif slo.kind == "ratio":
            assert slo.denominator is not None
            denom = self._series.counter_delta(
                slo.denominator, seconds, slo.denominator_labels
            )
            if denom < slo.min_count:
                return SLOWindow(window, seconds, None, denom, False, 0.0)
            numer = self._series.counter_delta(slo.metric, seconds, slo.labels)
            value = numer / denom
            count = denom
        else:  # gauge
            gauge = self._series.gauge_value(slo.metric, slo.labels)
            if gauge is None:
                return SLOWindow(window, seconds, None, 0.0, False, 0.0)
            value = gauge
            count = 1.0
        if value is None or math.isnan(value):
            return SLOWindow(window, seconds, None, count, False, 0.0)
        violated = not slo.is_met(value)
        burn = abs(value / slo.threshold) if slo.threshold else float(violated)
        return SLOWindow(window, seconds, value, count, violated, burn)


def _fmt(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:g}"


def dashboard_stats(series: MetricsTimeSeries) -> Dict[str, float]:
    """The headline numbers ``repro top`` and ``/healthz`` display.

    Missing metrics come back as NaN gauges / zero rates so callers can
    render "n/a" without special-casing which subsystems are running.
    """
    window_s = 30.0
    stats: Dict[str, float] = {
        "throughput_qps": series.rate("serve.completed", window_s),
        "latency_p50_s": series.quantile("serve.latency_seconds", 0.50, window_s),
        "latency_p90_s": series.quantile("serve.latency_seconds", 0.90, window_s),
        "latency_p99_s": series.quantile("serve.latency_seconds", 0.99, window_s),
    }
    gauges: Dict[str, Callable[[], Optional[float]]] = {
        "publish_lag_s": lambda: series.gauge_value("stream.publish_lag_seconds"),
        "pending_refreshes": lambda: series.gauge_value("stream.pending_refreshes"),
        "queue_depth": lambda: series.gauge_value("serve.queue.depth"),
        "store_version": lambda: series.gauge_value("store.version"),
    }
    for key, read in gauges.items():
        value = read()
        stats[key] = float("nan") if value is None else value
    return stats


def default_slos(
    latency_p99_s: float = 0.25,
    error_ratio: float = 0.05,
    degraded_ratio: float = 0.25,
    publish_lag_factor: float = 2.0,
    drop_ratio: float = 0.10,
    slot_seconds: Optional[float] = None,
    fast_window_s: float = 30.0,
    slow_window_s: float = 300.0,
) -> Tuple[SLO, ...]:
    """The stock objectives for a serve/stream process.

    ``slot_seconds`` defaults to the stream layer's
    :data:`~repro.stream.messages.SLOT_SECONDS` so the freshness SLO
    (`publish lag < publish_lag_factor · slot`) tracks the paper's slot
    discretization.
    """
    if slot_seconds is None:
        from repro.stream.messages import SLOT_SECONDS

        slot_seconds = SLOT_SECONDS
    windows = {"fast_window_s": fast_window_s, "slow_window_s": slow_window_s}
    return (
        SLO(
            name="serve.latency.p99",
            kind="quantile",
            metric="serve.latency_seconds",
            quantile=0.99,
            threshold=latency_p99_s,
            min_count=5.0,
            description="end-to-end served query latency",
            **windows,
        ),
        SLO(
            name="serve.error.rate",
            kind="ratio",
            metric="serve.completed",
            labels={"outcome": "error"},
            denominator="serve.completed",
            threshold=error_ratio,
            min_count=5.0,
            description="fraction of requests failing with InternalError",
            **windows,
        ),
        SLO(
            name="serve.degraded.rate",
            kind="ratio",
            metric="serve.completed",
            labels={"outcome": "degraded"},
            denominator="serve.completed",
            threshold=degraded_ratio,
            min_count=5.0,
            description="fraction of requests served by the Per fallback",
            **windows,
        ),
        SLO(
            name="stream.publish.lag",
            kind="gauge",
            metric="stream.publish_lag_seconds",
            threshold=publish_lag_factor * slot_seconds,
            description="event-time lag between feed watermark and store",
            **windows,
        ),
        SLO(
            name="stream.drop.rate",
            kind="ratio",
            metric="stream.dropped",
            denominator="stream.messages",
            threshold=drop_ratio,
            min_count=20.0,
            description="fraction of feed messages dropped",
            **windows,
        ),
    )
