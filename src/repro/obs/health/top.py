"""``repro top`` — a live terminal dashboard over the admin endpoint.

Polls ``/healthz`` on a running ``repro serve``/``repro stream``
process and renders a plain-ANSI refresh (no curses dependency):
status line, throughput and latency percentiles, stream freshness, and
the per-SLO fast/slow burn table.  The renderer
(:func:`render_top`) is a pure function of the report dict so tests
exercise it without a terminal.
"""

from __future__ import annotations

import json
import math
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, TextIO

from repro.errors import ObservabilityError

__all__ = ["fetch_report", "render_top", "run_top"]

#: ANSI: clear screen + home cursor (the whole "live" mechanism).
_CLEAR = "\x1b[2J\x1b[H"


def fetch_report(base_url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """GET ``<base_url>/healthz`` and decode the report JSON.

    A 503 (process failing) still carries a full report body and is
    decoded normally — ``repro top`` must keep rendering *while* the
    process is unhealthy; that is its whole purpose.
    """
    url = base_url.rstrip("/") + "/healthz"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            body = response.read()
    except urllib.error.HTTPError as exc:
        if exc.code != 503:
            raise ObservabilityError(f"{url}: HTTP {exc.code}") from exc
        body = exc.read()
    except urllib.error.URLError as exc:
        raise ObservabilityError(f"{url}: {exc.reason}") from exc
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ObservabilityError(f"{url}: unparseable report: {exc}") from exc
    if not isinstance(document, dict):
        raise ObservabilityError(f"{url}: report is not a JSON object")
    return document


def _num(value: object) -> float:
    return float(value) if isinstance(value, (int, float)) else float("nan")


def _fmt(value: float, unit: str = "", precision: int = 1) -> str:
    if math.isnan(value):
        return "n/a"
    return f"{value:.{precision}f}{unit}"


def _fmt_ms(seconds: float) -> str:
    return "n/a" if math.isnan(seconds) else f"{seconds * 1e3:.1f}ms"


def render_top(report: Dict[str, Any]) -> str:
    """Render one dashboard frame from a ``/healthz`` report dict."""
    stats_raw = report.get("stats")
    stats: Dict[str, Any] = stats_raw if isinstance(stats_raw, dict) else {}
    info_raw = report.get("info")
    info: Dict[str, Any] = info_raw if isinstance(info_raw, dict) else {}
    status = str(report.get("status", "unknown")).upper()
    lines: List[str] = []
    uptime = _num(info.get("uptime_seconds"))
    version = info.get("store_version", info.get("version"))
    lines.append(
        f"repro top — status {status}"
        f" · store v{version if version is not None else '?'}"
        f" · up {_fmt(uptime, 's', 0)}"
        f" · history {_fmt(_num(report.get('history_seconds')), 's', 0)}"
    )
    lines.append(
        f"  serve   {_fmt(_num(stats.get('throughput_qps')), ' q/s')}"
        f" · p50 {_fmt_ms(_num(stats.get('latency_p50_s')))}"
        f" · p90 {_fmt_ms(_num(stats.get('latency_p90_s')))}"
        f" · p99 {_fmt_ms(_num(stats.get('latency_p99_s')))}"
        f" · queue {_fmt(_num(stats.get('queue_depth')), '', 0)}"
    )
    lines.append(
        f"  stream  lag {_fmt(_num(stats.get('publish_lag_s')), 's', 0)}"
        f" · pending {_fmt(_num(stats.get('pending_refreshes')), '', 0)}"
    )
    results = report.get("results")
    if isinstance(results, list) and results:
        lines.append("  SLO                        value      objective      fast  slow")
        for result in results:
            if not isinstance(result, dict):
                continue
            fast = result.get("fast") if isinstance(result.get("fast"), dict) else {}
            slow = result.get("slow") if isinstance(result.get("slow"), dict) else {}
            value = fast.get("value") if fast.get("value") is not None else slow.get("value")
            lines.append(
                f"  {str(result.get('name', '?')):<25}"
                f"{_fmt(_num(value), '', 4):>10} "
                f"{str(result.get('comparison', '<')):>3}"
                f"{_num(result.get('threshold')):>10.4g} "
                f"{'BURN' if fast.get('violated') else 'ok':>6}"
                f"{'BURN' if slow.get('violated') else 'ok':>6}"
                f"  [{str(result.get('status', '?'))}]"
            )
    alerts = report.get("alerts")
    if isinstance(alerts, list) and alerts:
        lines.append("  alerts:")
        for alert in alerts:
            if isinstance(alert, dict):
                lines.append(f"    ! {alert.get('message', alert)}")
    return "\n".join(lines) + "\n"


def run_top(
    url: str,
    interval_s: float = 1.0,
    iterations: Optional[int] = None,
    clear: bool = True,
    out: Optional[TextIO] = None,
) -> int:
    """Poll-and-render loop; returns a CLI exit code.

    ``iterations=None`` runs until interrupted (Ctrl-C exits cleanly
    with code 0); tests and the CI smoke job pass a small count.
    """
    stream = out if out is not None else sys.stdout
    remaining = iterations
    try:
        while remaining is None or remaining > 0:
            frame = render_top(fetch_report(url))
            if clear:
                stream.write(_CLEAR)
            stream.write(frame)
            stream.flush()
            if remaining is not None:
                remaining -= 1
                if remaining == 0:
                    break
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0
    return 0
