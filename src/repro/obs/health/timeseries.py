"""Ring buffer of registry snapshots with windowed deltas and rates.

The cumulative counters and histograms in
:class:`repro.obs.metrics.MetricsRegistry` answer "how much since
process start"; operators need "how much in the last 30 seconds".
:class:`MetricsTimeSeries` bridges the two: a sampler (the
:class:`repro.obs.health.HealthMonitor` thread, or a test calling
:meth:`MetricsTimeSeries.sample_now` directly) appends periodic
snapshots into a bounded deque, and the windowed accessors
(:meth:`counter_delta`, :meth:`rate`, :meth:`histogram_delta`,
:meth:`quantile`) subtract the oldest sample inside the window from the
newest to recover per-window activity.

Timestamps are ``time.monotonic()`` — the series is for interval
arithmetic, never for wall-clock display (RA006).  Snapshotting the
registry happens *outside* the series lock so the two locks are never
held together (RA002).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, bucket_quantile

__all__ = [
    "HistogramWindow",
    "MetricSample",
    "MetricsTimeSeries",
]


@dataclass(frozen=True)
class MetricSample:
    """One registry snapshot: monotonically-indexed, monotonic-clocked."""

    index: int
    t_monotonic: float
    snapshot: Dict[str, List[Dict[str, object]]]

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form (the flight recorder embeds these)."""
        return {
            "index": self.index,
            "t_monotonic": self.t_monotonic,
            "snapshot": self.snapshot,
        }


@dataclass(frozen=True)
class HistogramWindow:
    """Non-cumulative histogram activity between two samples."""

    edges: Tuple[float, ...]
    counts: Tuple[float, ...]
    count: float
    sum: float

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of the window (NaN when empty)."""
        return bucket_quantile(self.edges, self.counts, q)


def _labels_match(
    entry_labels: Mapping[str, object], want: Optional[Mapping[str, str]]
) -> bool:
    """``want=None`` matches every series; else subset equality."""
    if want is None:
        return True
    return all(str(entry_labels.get(key)) == value for key, value in want.items())


class MetricsTimeSeries:
    """Bounded ring of registry snapshots with windowed accessors.

    ``capacity`` bounds memory: at the default 1 Hz sampler interval,
    512 samples cover ~8.5 minutes — comfortably wider than the default
    slow SLO window (300 s).
    """

    def __init__(self, registry: MetricsRegistry, capacity: int = 512) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self._registry = registry
        self._capacity = capacity
        self._lock = threading.Lock()
        self._samples: List[MetricSample] = []
        self._next_index = 0

    @property
    def capacity(self) -> int:
        """Maximum retained samples."""
        return self._capacity

    # -- writing --------------------------------------------------------

    def sample_now(self) -> MetricSample:
        """Snapshot the registry and append (the sampler tick)."""
        # Registry snapshot happens before taking the series lock so the
        # registry lock and series lock are never nested (RA002).
        snapshot = self._registry.snapshot()
        t = time.monotonic()
        with self._lock:
            sample = MetricSample(self._next_index, t, snapshot)
            self._next_index += 1
            self._samples.append(sample)
            if len(self._samples) > self._capacity:
                del self._samples[: len(self._samples) - self._capacity]
        return sample

    # -- reading --------------------------------------------------------

    def samples(self) -> Tuple[MetricSample, ...]:
        """All retained samples, oldest first."""
        with self._lock:
            return tuple(self._samples)

    def latest(self) -> Optional[MetricSample]:
        """The newest sample, or ``None`` before the first tick."""
        with self._lock:
            return self._samples[-1] if self._samples else None

    def window(self, seconds: float) -> Optional[Tuple[MetricSample, MetricSample]]:
        """The ``(start, end)`` samples spanning the last ``seconds``.

        ``end`` is the newest sample; ``start`` is the newest sample at
        least ``seconds`` older than ``end``.  When history is shorter
        than the requested window the oldest sample is used — callers
        get a *shorter* window rather than ``None``, so SLOs start
        evaluating as soon as two samples exist.  Returns ``None`` with
        fewer than two samples.
        """
        with self._lock:
            if len(self._samples) < 2:
                return None
            end = self._samples[-1]
            start = self._samples[0]
            cutoff = end.t_monotonic - float(seconds)
            for sample in reversed(self._samples[:-1]):
                if sample.t_monotonic <= cutoff:
                    start = sample
                    break
            return (start, end)

    # -- per-sample extraction (static: pure functions of a snapshot) ---

    @staticmethod
    def counter_total(
        sample: MetricSample,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
    ) -> float:
        """Sum of all counter series matching ``name``/``labels``."""
        total = 0.0
        for entry in sample.snapshot.get("counters", []):
            if entry.get("name") != name:
                continue
            entry_labels = entry.get("labels")
            if not isinstance(entry_labels, dict):
                continue
            if not _labels_match(entry_labels, labels):
                continue
            value = entry.get("value")
            if isinstance(value, (int, float)):
                total += float(value)
        return total

    # -- windowed accessors ---------------------------------------------

    def counter_delta(
        self,
        name: str,
        window_s: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> float:
        """Counter increase over the window (clamped at zero on reset)."""
        pair = self.window(window_s)
        if pair is None:
            return 0.0
        start, end = pair
        delta = self.counter_total(end, name, labels) - self.counter_total(
            start, name, labels
        )
        return max(0.0, delta)

    def rate(
        self,
        name: str,
        window_s: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> float:
        """Counter increase per second over the window."""
        pair = self.window(window_s)
        if pair is None:
            return 0.0
        start, end = pair
        dt = end.t_monotonic - start.t_monotonic
        if dt <= 0:
            return 0.0
        return self.counter_delta(name, window_s, labels) / dt

    def gauge_value(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Optional[float]:
        """Latest value of a gauge (max across matching series)."""
        sample = self.latest()
        if sample is None:
            return None
        best: Optional[float] = None
        for entry in sample.snapshot.get("gauges", []):
            if entry.get("name") != name:
                continue
            entry_labels = entry.get("labels")
            if not isinstance(entry_labels, dict):
                continue
            if not _labels_match(entry_labels, labels):
                continue
            value = entry.get("value")
            if isinstance(value, (int, float)):
                value_f = float(value)
                best = value_f if best is None else max(best, value_f)
        return best

    def histogram_delta(
        self,
        name: str,
        window_s: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Optional[HistogramWindow]:
        """Histogram activity (bucket counts, count, sum) in the window.

        Matching series are summed element-wise; the start sample's
        cumulative counts are subtracted from the end sample's, clamped
        at zero so a registry reset degrades to an empty window instead
        of negative counts.  Returns ``None`` when the metric is absent
        from the end sample or fewer than two samples exist.
        """
        pair = self.window(window_s)
        if pair is None:
            return None
        start, end = pair
        end_agg = _sum_histograms(end, name, labels)
        if end_agg is None:
            return None
        start_agg = _sum_histograms(start, name, labels)
        edges, end_counts, end_count, end_sum = end_agg
        if start_agg is None or start_agg[0] != edges:
            counts = tuple(end_counts)
            return HistogramWindow(edges, counts, end_count, end_sum)
        _, start_counts, start_count, start_sum = start_agg
        counts = tuple(
            max(0.0, e - s) for e, s in zip(end_counts, start_counts)
        )
        return HistogramWindow(
            edges,
            counts,
            max(0.0, end_count - start_count),
            max(0.0, end_sum - start_sum),
        )

    def quantile(
        self,
        name: str,
        q: float,
        window_s: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> float:
        """Estimated ``q``-quantile of a histogram over the window.

        NaN when the metric is absent or the window saw no
        observations (callers treat NaN as "no data", not a violation).
        """
        window = self.histogram_delta(name, window_s, labels)
        if window is None:
            return float("nan")
        return window.quantile(q)


def _sum_histograms(
    sample: MetricSample,
    name: str,
    labels: Optional[Mapping[str, str]],
) -> Optional[Tuple[Tuple[float, ...], List[float], float, float]]:
    """Element-wise sum of matching histogram series in one sample."""
    edges: Optional[Tuple[float, ...]] = None
    counts: List[float] = []
    count = 0.0
    total = 0.0
    for entry in sample.snapshot.get("histograms", []):
        if entry.get("name") != name:
            continue
        entry_labels = entry.get("labels")
        if not isinstance(entry_labels, dict):
            continue
        if not _labels_match(entry_labels, labels):
            continue
        buckets = entry.get("buckets")
        entry_counts = entry.get("counts")
        if not isinstance(buckets, list) or not isinstance(entry_counts, list):
            continue
        entry_edges = tuple(float(edge) for edge in buckets)
        if edges is None:
            edges = entry_edges
            counts = [0.0] * len(entry_counts)
        elif edges != entry_edges or len(entry_counts) != len(counts):
            continue
        for i, bucket_count in enumerate(entry_counts):
            if isinstance(bucket_count, (int, float)):
                counts[i] += float(bucket_count)
        entry_count = entry.get("count")
        entry_sum = entry.get("sum")
        if isinstance(entry_count, (int, float)):
            count += float(entry_count)
        if isinstance(entry_sum, (int, float)):
            total += float(entry_sum)
    if edges is None:
        return None
    return (edges, counts, count, total)
