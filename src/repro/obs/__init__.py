"""Observability for the CrowdRTSE pipeline (zero hard dependencies).

Three pieces:

* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry`
  of labeled counters, gauges, and fixed-bucket histograms;
* :mod:`repro.obs.tracing` — a :class:`Tracer` producing nested spans
  (``pipeline.answer_query`` → ``ocs.select`` → ``crowd.execute`` →
  ``gsp.propagate`` → per-sweep events) with wall/CPU time, exportable
  as JSON-lines and Chrome trace-event JSON;
* :mod:`repro.obs.export` — Prometheus-text / JSON exporters plus the
  schema validators behind ``python -m repro.obs.export``.

:mod:`repro.obs.health` builds the *active* layer on top — sampler,
SLO burn-rate engine, flight recorder, admin endpoint, ``repro top`` —
and is imported explicitly (never from here, so this module stays
import-cycle-free for the instrumented packages).

Both the default registry and the default tracer are **disabled** at
import: every instrumentation site in the hot paths degrades to a
branch-and-return, enforced by ``benchmarks/test_perf_obs_overhead.py``.
Turn them on with :func:`configure` (or ``REPRO_OBS=metrics,trace`` in
the environment), e.g.::

    from repro import obs

    obs.configure(metrics=True, tracing=True)
    ...  # run queries
    print(obs.prometheus_text())
    obs.get_tracer().export_jsonl("trace.jsonl")

The metric name catalog and trace schema live in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.metrics import (
    Counter,
    DEFAULT_ITERATION_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
)
from repro.obs.tracing import Span, SpanRecord, Tracer
from repro.obs.export import (
    FLIGHT_RECORDER_SCHEMA,
    METRICS_SCHEMA,
    escape_label_value,
    metrics_from_jsonl,
    metrics_to_jsonl,
    parse_prometheus_series,
    parse_prometheus_text,
    read_metrics_json,
    to_prometheus_text,
    unescape_label_value,
    validate_chrome_trace,
    validate_flight_record,
    validate_metrics_snapshot,
    validate_trace_jsonl,
    write_metrics_json,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecord",
    "Tracer",
    "FLIGHT_RECORDER_SCHEMA",
    "METRICS_SCHEMA",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_ITERATION_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "bucket_quantile",
    "configure",
    "disable_all",
    "escape_label_value",
    "get_metrics",
    "get_tracer",
    "metrics_from_jsonl",
    "metrics_to_jsonl",
    "parse_prometheus_series",
    "parse_prometheus_text",
    "prometheus_text",
    "read_metrics_json",
    "reset",
    "to_prometheus_text",
    "unescape_label_value",
    "validate_chrome_trace",
    "validate_flight_record",
    "validate_metrics_snapshot",
    "validate_trace_jsonl",
    "write_metrics_json",
]

#: The process-wide registry/tracer the instrumented code paths use.
_metrics = MetricsRegistry(enabled=False)
_tracer = Tracer(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry (disabled by default)."""
    return _metrics


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled by default)."""
    return _tracer


def configure(
    metrics: Optional[bool] = None, tracing: Optional[bool] = None
) -> None:
    """Enable/disable the process-wide registry and tracer.

    Args:
        metrics: When given, enable (True) or disable (False) metrics.
        tracing: When given, enable (True) or disable (False) tracing.
    """
    if metrics is not None:
        (_metrics.enable if metrics else _metrics.disable)()
    if tracing is not None:
        (_tracer.enable if tracing else _tracer.disable)()


def disable_all() -> None:
    """Disable both the registry and the tracer."""
    configure(metrics=False, tracing=False)


def reset() -> None:
    """Zero the registry and drop completed spans (state kept enabled/disabled)."""
    _metrics.reset()
    _tracer.reset()


def prometheus_text() -> str:
    """The current registry snapshot in Prometheus text format."""
    return to_prometheus_text(_metrics.snapshot())


def _configure_from_env() -> None:
    """Honour ``REPRO_OBS`` (``1``/``all``, ``metrics``, ``trace``)."""
    raw = os.environ.get("REPRO_OBS", "").strip().lower()
    if not raw:
        return
    parts = {part.strip() for part in raw.split(",") if part.strip()}
    if parts & {"1", "all", "true", "on"}:
        configure(metrics=True, tracing=True)
        return
    configure(
        metrics=True if "metrics" in parts else None,
        tracing=True if {"trace", "tracing"} & parts else None,
    )


_configure_from_env()
